"""Ablation — rigid vs. moldable vs. malleable scheduling.

Paper, Challenge 3: "the RJMS must support multiple levels of
elasticity ... e.g., rigid vs. moldable vs. malleable scheduling
against different workload and resource types."

Workload: a mix of long parallel jobs and bursts of small short jobs
on a 256-core instance.  We run the identical work three ways — the
long jobs rigid, moldable (scheduler picks the start size), and
malleable (resized while running) — and regenerate a makespan /
mean-wait / utilization table.  Elasticity should monotonically improve
the schedule.
"""

import random

import pytest

from conftest import write_table
from repro.core import FluxInstance, JobSpec
from repro.resource import ResourcePool, build_cluster_graph
from repro.sched import EasyBackfillPolicy
from repro.sim import Simulation

TOTAL_CORES = 256
N_LONG = 8
N_BURST = 48

#: Elasticity shape of the long jobs per scenario.
SHAPES = ("rigid", "moldable", "malleable")


def long_job(shape: str, i: int) -> JobSpec:
    base = dict(ncores=64, duration=20.0, name=f"long{i}",
                serial_fraction=0.05)
    if shape == "rigid":
        return JobSpec(**base)
    if shape == "moldable":
        return JobSpec(**base, min_cores=16, max_cores=128)
    return JobSpec(**base, min_cores=16, max_cores=128, malleable=True)


def burst_jobs(seed: int) -> list[tuple[float, JobSpec]]:
    """(arrival time, spec) pairs: three waves of short small jobs."""
    rng = random.Random(seed)
    out = []
    for wave in range(3):
        t = 5.0 + wave * 15.0
        for j in range(N_BURST // 3):
            out.append((t + rng.uniform(0, 1.0),
                        JobSpec(ncores=4, duration=rng.uniform(0.5, 2.0),
                                name=f"b{wave}.{j}")))
    return out


def run_scenario(shape: str) -> dict:
    sim = Simulation(seed=0)
    graph = build_cluster_graph("el", n_racks=2,
                                nodes_per_rack=TOTAL_CORES // 32)
    inst = FluxInstance(sim, ResourcePool(graph),
                        policy=EasyBackfillPolicy())
    for i in range(N_LONG):
        inst.submit(long_job(shape, i))

    def arrivals():
        last = 0.0
        for t, spec in sorted(burst_jobs(seed=2), key=lambda x: x[0]):
            if t > last:
                yield sim.timeout(t - last)
                last = t
            inst.submit(spec)

    sim.spawn(arrivals())
    sim.run()
    waits = [j.wait_time for j in inst.jobs.values()
             if j.wait_time is not None and j.spec.name.startswith("b")]
    long_waits = [j.wait_time for j in inst.jobs.values()
                  if j.wait_time is not None
                  and j.spec.name.startswith("long")]
    return {
        "makespan": inst.makespan(),
        "burst_wait": sum(waits) / len(waits) if waits else 0.0,
        "long_wait": (sum(long_waits) / len(long_waits)
                      if long_waits else 0.0),
        "util": inst.utilization(),
    }


@pytest.fixture(scope="module")
def shape_results():
    results = {shape: run_scenario(shape) for shape in SHAPES}
    lines = [f"Ablation: elasticity shapes — {N_LONG} x 64-core long "
             f"jobs + {N_BURST} short-burst jobs on {TOTAL_CORES} cores",
             f"{'shape':>10} {'makespan(s)':>12} {'burst wait(s)':>14} "
             f"{'long wait(s)':>13} {'utilization':>12}"]
    for shape, r in results.items():
        lines.append(f"{shape:>10} {r['makespan']:>12.2f} "
                     f"{r['burst_wait']:>14.2f} "
                     f"{r['long_wait']:>13.2f} {r['util']:>12.2%}")
    write_table("ablation_elasticity", "\n".join(lines), data=results)
    return results


def test_elasticity_table_regenerated(shape_results):
    assert set(shape_results) == set(SHAPES)


def test_moldable_starts_immediately(shape_results):
    """Moldable long jobs squeeze into whatever is free now instead of
    queueing for their preferred size; with imperfect scaling (Amdahl)
    this trades a slightly longer makespan for zero queue wait."""
    assert shape_results["moldable"]["long_wait"] == pytest.approx(0.0)
    assert shape_results["rigid"]["long_wait"] > 5.0
    assert (shape_results["moldable"]["makespan"]
            < shape_results["rigid"]["makespan"] * 1.15)


def test_malleable_cuts_burst_waits(shape_results):
    """Malleable long jobs give cores back when bursts arrive, so the
    short jobs wait far less than behind rigid 64-core blocks."""
    assert (shape_results["malleable"]["burst_wait"]
            <= shape_results["rigid"]["burst_wait"] / 2)


def test_malleable_keeps_machine_busy(shape_results):
    """Resizing costs almost nothing in utilization or makespan while
    eliminating the burst waits entirely."""
    assert shape_results["malleable"]["util"] > 0.90
    assert (shape_results["malleable"]["makespan"]
            < shape_results["rigid"]["makespan"] * 1.1)


def test_elasticity_benchmark_representative(benchmark, shape_results):
    benchmark.pedantic(lambda: run_scenario("malleable"), rounds=2,
                       iterations=1)
