"""Ablation — scheduler parallelism (paper Sections II-III).

The hierarchical job model's scalability claim: a monolithic scheduler
serializes placement decisions for the whole center, while sibling
Flux instances decide concurrently over parent-granted subsets.  This
bench runs a high-throughput ensemble through 1, 2, 4, 8 and 16-way
instance hierarchies with a realistic decision-cost model and
regenerates a makespan/throughput table.
"""

import random

import pytest

from conftest import write_table
from repro.core import FluxInstance, JobSpec, partitioned_specs
from repro.resource import ResourcePool, build_cluster_graph
from repro.sched import AffineCostModel, EasyBackfillPolicy
from repro.sim import Simulation

TOTAL_CORES = 512
N_MEMBERS = 1024
FANOUTS = (1, 2, 4, 8, 16)


def make_members(seed=1):
    rng = random.Random(seed)
    return [JobSpec(ncores=8, duration=rng.uniform(0.2, 0.6),
                    name=f"m{i}") for i in range(N_MEMBERS)]


def run_with_fanout(nchildren: int) -> dict:
    sim = Simulation(seed=0)
    graph = build_cluster_graph("abl", n_racks=4,
                                nodes_per_rack=TOTAL_CORES // 64)
    cost = AffineCostModel(base=2e-3, per_job=1e-3)
    root = FluxInstance(sim, ResourcePool(graph),
                        policy=EasyBackfillPolicy(), cost_model=cost,
                        name="root")
    members = make_members()
    if nchildren == 1:
        for spec in members:
            root.submit(spec)
    else:
        for part in partitioned_specs(TOTAL_CORES, nchildren, members,
                                      child_policy=EasyBackfillPolicy):
            root.submit(part)
    sim.run()
    makespan = root.makespan()
    return {
        "makespan": makespan,
        "throughput": N_MEMBERS / makespan,
        "util": root.utilization(),
    }


@pytest.fixture(scope="module")
def fanout_results():
    results = {k: run_with_fanout(k) for k in FANOUTS}
    lines = [f"Ablation: scheduler parallelism, {N_MEMBERS} x 8-core "
             f"members on {TOTAL_CORES} cores",
             f"{'children':>9} {'makespan(s)':>12} {'jobs/s':>8} "
             f"{'utilization':>12}"]
    for k, r in results.items():
        lines.append(f"{k:>9} {r['makespan']:>12.2f} "
                     f"{r['throughput']:>8.1f} {r['util']:>12.2%}")
    write_table("ablation_hierarchy", "\n".join(lines), data=results)
    return results


def test_ablation_hierarchy_table_regenerated(fanout_results):
    assert set(fanout_results) == set(FANOUTS)


def test_hierarchy_beats_monolithic(fanout_results):
    assert fanout_results[8]["makespan"] < \
        fanout_results[1]["makespan"] / 1.5


def test_throughput_improves_then_saturates(fanout_results):
    """More children help until per-child pools get too small to hold
    a wave of members; the curve should be monotone-ish then flatten
    (not keep doubling)."""
    tp = [fanout_results[k]["throughput"] for k in FANOUTS]
    assert tp[2] > tp[0]               # 4-way beats monolithic
    gain_late = tp[-1] / tp[-2]
    gain_early = tp[2] / tp[0]
    assert gain_late < gain_early      # diminishing returns

def test_ablation_benchmark_8way(benchmark, fanout_results):
    benchmark.pedantic(lambda: run_with_fanout(8), rounds=2, iterations=1)
