"""Ablation — distributing the KVS master (paper Section VII).

"We must also continue to push the scalability envelope of our
infrastructure, in particular in the KVS.  We plan to address the
latter by distributing the KVS master itself."

Workload: every process owns a private namespace and repeatedly writes
keys and commits — the multi-job/multi-service pattern that serializes
at a single root master.  The master service-time model is enabled
(50 us per commit + 5 us per op — hashing, dedup, hash-tree rebuild),
since the serialization being relieved is the master's processing; with
a cost-free master the workload is communication-bound and sharding
merely lengthens paths.

Two distribution strategies are compared on the same workload:

- **sharded namespaces** — the key space is statically split over
  independent ``kvs0..kvsN-1`` module instances (hash of the top-level
  component);
- **multi-master delegation** — one ``kvs`` namespace whose directory
  subtrees are delegated at runtime to interior-broker owners, each
  running its own subtree master (per-owner commit counts come from
  the ``kvs_owner_commits_total`` metric).

A failover probe additionally kills the root master with standby
replicas configured and reports the ring-election latency from the
``kvs_election_seconds`` histogram.

Standalone smoke mode for CI (from ``benchmarks/``)::

    PYTHONPATH=../src python bench_ablation_sharding.py --smoke
"""

import argparse
import sys

import pytest

from conftest import write_table
from repro import make_cluster, standard_session
from repro.cmb.session import CommsSession, ModuleSpec
from repro.cmb.topology import TreeTopology
from repro.kvs import KvsClient, KvsModule
from repro.kvs.sharding import ShardedKvsClient, sharded_kvs_specs
from repro.sim import FaultPlan

SHARD_COUNTS = (1, 2, 4, 8)
#: Delegated-owner counts for the multi-master rows (0 = classic
#: single master, the delegation-disabled baseline).
OWNER_COUNTS = (0, 2, 4, 8)
N_NODES = 16
CLIENTS = 32
ROUNDS = 4
VALUE = "x" * 2048
MASTER_COMMIT_COST = 5e-5
MASTER_OP_COST = 5e-6


def run_workload(nshards: int, clients: int = CLIENTS,
                 rounds: int = ROUNDS) -> dict:
    cluster = make_cluster(N_NODES, seed=55)
    session = CommsSession(
        cluster, topology=TreeTopology(N_NODES),
        modules=sharded_kvs_specs(nshards, N_NODES,
                                  master_commit_cost=MASTER_COMMIT_COST,
                                  master_op_cost=MASTER_OP_COST)).start()
    sim = cluster.sim

    def client(i):
        kvs = ShardedKvsClient(session.connect(i % N_NODES), nshards)
        for r in range(rounds):
            yield kvs.put(f"job{i}.round{r}", VALUE)
            yield kvs.commit_shard(kvs.shard_of(f"job{i}.round{r}"))
        value = yield kvs.get(f"job{i}.round{rounds - 1}")
        assert value == VALUE

    procs = [sim.spawn(client(i)) for i in range(clients)]
    sim.run()
    assert all(p.ok for p in procs)
    return {
        "time": sim.now,
        "commits_per_s": clients * rounds / sim.now,
        "bytes": cluster.network.total_bytes_sent(),
    }


def run_multimaster_workload(nowners: int, clients: int = CLIENTS,
                             rounds: int = ROUNDS) -> dict:
    """Same workload over ONE ``kvs`` namespace whose per-client
    subtrees are delegated round-robin to ``nowners`` interior-broker
    owners (0 = no delegation: the classic single-master baseline)."""
    cluster = make_cluster(N_NODES, seed=55)
    session = CommsSession(
        cluster, topology=TreeTopology(N_NODES),
        modules=[ModuleSpec(KvsModule,
                            master_commit_cost=MASTER_COMMIT_COST,
                            master_op_cost=MASTER_OP_COST)]).start()
    sim = cluster.sim
    owner_ranks = [(i + 1) * N_NODES // (nowners + 1)
                   for i in range(nowners)]

    if nowners:
        def admin():
            kvs = KvsClient(session.connect(0, collective=False))
            for i in range(clients):
                yield kvs.delegate(f"job{i}",
                                   owner_ranks[i % nowners])

        aproc = sim.spawn(admin())
        sim.run()
        assert aproc.ok
    t0 = sim.now
    setup_bytes = cluster.network.total_bytes_sent()

    def client(i):
        kvs = KvsClient(session.connect(i % N_NODES))
        for r in range(rounds):
            yield kvs.put(f"job{i}.round{r}", VALUE)
            yield kvs.commit()
        value = yield kvs.get(f"job{i}.round{rounds - 1}")
        assert value == VALUE

    procs = [sim.spawn(client(i)) for i in range(clients)]
    sim.run()
    assert all(p.ok for p in procs)
    elapsed = sim.now - t0

    agg = session.metrics_aggregate()
    owner_commits = {m["labels"]["owner"]: m["value"]
                     for m in agg["metrics"]
                     if m["name"] == "kvs_owner_commits_total"}
    return {
        "time": elapsed,
        "commits_per_s": clients * rounds / elapsed,
        "bytes": cluster.network.total_bytes_sent() - setup_bytes,
        "owner_commits": owner_commits,
    }


def run_failover_probe() -> dict:
    """Kill the root master with standbys configured; report the ring
    election's latency (``kvs_election_seconds``) and that the
    namespace keeps serving afterwards."""
    cluster = make_cluster(8, seed=10)
    # A (zero-rate) fault plan arms the pulse-starvation watchdog that
    # detects the root's death (the root is the heartbeat source).
    cluster.network.fault_plan = FaultPlan(seed=1)
    session = standard_session(cluster, kvs_replicas=(1, 2),
                               with_heartbeat=True, hb_period=0.05,
                               hb_max_epochs=100000).start()
    sim = cluster.sim

    def before():
        kvs = KvsClient(session.connect(5), timeout=5.0, retries=8)
        yield kvs.put("pre.k", 1)
        yield kvs.commit()

    bproc = sim.spawn(before())
    sim.run(until=sim.now + 2.0)
    assert bproc.ok
    t_kill = sim.now
    session.fail_rank(0)
    sim.run(until=sim.now + 3.0)

    def after():
        kvs = KvsClient(session.connect(6), timeout=2.0, retries=10)
        assert (yield kvs.get("pre.k")) == 1
        yield kvs.put("post.k", 2)
        yield kvs.commit()

    aproc = sim.spawn(after())
    sim.run(until=sim.now + 10.0)
    assert aproc.triggered and aproc.ok

    agg = session.metrics_aggregate()
    elections = sum(m["value"] for m in agg["metrics"]
                    if m["name"] == "kvs_elections_total")
    hists = [m for m in agg["metrics"]
             if m["name"] == "kvs_election_seconds"]
    latency = (hists[0]["sum"] / hists[0]["count"]
               if hists and hists[0]["count"] else 0.0)
    new_master = next(r for r in (1, 2)
                      if session.module_at(r, "kvs").master is not None)
    session.stop()
    return {"elections": elections, "election_latency": latency,
            "kill_time": t_kill, "promoted_rank": new_master}


def _owner_commit_cell(r: dict) -> str:
    counts = sorted(r["owner_commits"].values())
    if not counts:
        return "—"
    if counts[0] == counts[-1]:
        return f"{len(counts)}x{counts[0]}"
    return f"{len(counts)} owners, {counts[0]}..{counts[-1]}"


@pytest.fixture(scope="module")
def shard_results():
    return {k: run_workload(k) for k in SHARD_COUNTS}


@pytest.fixture(scope="module")
def mm_results():
    return {k: run_multimaster_workload(k) for k in OWNER_COUNTS}


@pytest.fixture(scope="module")
def failover_result():
    return run_failover_probe()


@pytest.fixture(scope="module")
def ablation_table(shard_results, mm_results, failover_result):
    lines = [f"Ablation: distributed KVS master — {CLIENTS} clients x "
             f"{ROUNDS} commits of 2 KiB, private namespaces",
             f"{'masters':>8} {'time(ms)':>10} {'commits/s':>11} "
             f"{'MB moved':>9}"]
    for k, r in shard_results.items():
        lines.append(f"{k:>8} {r['time'] * 1e3:>10.3f} "
                     f"{r['commits_per_s']:>11.0f} "
                     f"{r['bytes'] / 1e6:>9.2f}")
    lines.append("")
    lines.append("multi-master (runtime subtree delegation, one namespace"
                 " module; owners=0 is the classic single master)")
    lines.append(f"{'owners':>8} {'time(ms)':>10} {'commits/s':>11} "
                 f"{'MB moved':>9}  commits/owner")
    for k, r in mm_results.items():
        lines.append(f"{k:>8} {r['time'] * 1e3:>10.3f} "
                     f"{r['commits_per_s']:>11.0f} "
                     f"{r['bytes'] / 1e6:>9.2f}  "
                     f"{_owner_commit_cell(r)}")
    f = failover_result
    lines.append("")
    lines.append(f"failover: root killed with 2 standbys -> "
                 f"{f['elections']} election(s), rank "
                 f"{f['promoted_rank']} promoted, election latency "
                 f"{f['election_latency'] * 1e3:.3f} ms")
    write_table("ablation_sharding", "\n".join(lines),
                data={"shards": shard_results,
                      "multimaster": mm_results,
                      "failover": failover_result})
    return lines


def test_sharding_table_regenerated(shard_results, ablation_table):
    assert set(shard_results) == set(SHARD_COUNTS)


def test_distributed_master_beats_single(shard_results):
    """The future-work hypothesis: sharding the master improves commit
    throughput on namespace-disjoint workloads."""
    assert shard_results[4]["time"] < shard_results[1]["time"]


def test_returns_diminish(shard_results):
    gain_2 = shard_results[1]["time"] / shard_results[2]["time"]
    gain_8 = shard_results[4]["time"] / shard_results[8]["time"]
    assert gain_8 < gain_2


def test_multimaster_delegation_beats_single(mm_results):
    """Runtime delegation relieves the same serialization the static
    sharding does."""
    assert mm_results[4]["time"] < mm_results[0]["time"]


def test_multimaster_owner_commit_accounting(mm_results):
    """Every delegated commit is attributed to exactly one owner: the
    per-owner counters sum to the workload's commit count."""
    for k in OWNER_COUNTS:
        counts = mm_results[k]["owner_commits"]
        if k == 0:
            assert counts == {}
        else:
            assert len(counts) == k
            assert sum(counts.values()) == CLIENTS * ROUNDS


def test_failover_probe_promotes_once(failover_result):
    assert failover_result["elections"] == 1
    assert failover_result["election_latency"] > 0.0


def test_sharding_benchmark_representative(benchmark, shard_results):
    benchmark.pedantic(lambda: run_workload(4), rounds=2, iterations=1)


# ----------------------------------------------------------------------
# standalone smoke mode (CI)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="reduced scale, no table rewrite")
    args = ap.parse_args(argv)
    clients, rounds = (8, 2) if args.smoke else (CLIENTS, ROUNDS)

    sharded = run_workload(2, clients=clients, rounds=rounds)
    print(f"sharded(2 masters): {sharded['time'] * 1e3:.3f} ms, "
          f"{sharded['commits_per_s']:.0f} commits/s")
    mm = run_multimaster_workload(2, clients=clients, rounds=rounds)
    print(f"multi-master(2 owners): {mm['time'] * 1e3:.3f} ms, "
          f"{mm['commits_per_s']:.0f} commits/s, "
          f"owner commits {sorted(mm['owner_commits'].values())}")
    if sum(mm["owner_commits"].values()) != clients * rounds:
        print("FAIL: owner commit accounting off")
        return 1
    fo = run_failover_probe()
    print(f"failover: {fo['elections']} election(s), rank "
          f"{fo['promoted_rank']} promoted in "
          f"{fo['election_latency'] * 1e3:.3f} ms")
    if fo["elections"] != 1:
        print("FAIL: expected exactly one election")
        return 1
    print("ablation_sharding OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
