"""Ablation — distributing the KVS master (paper Section VII).

"We must also continue to push the scalability envelope of our
infrastructure, in particular in the KVS.  We plan to address the
latter by distributing the KVS master itself."

Workload: every process owns a private namespace and repeatedly writes
keys and commits — the multi-job/multi-service pattern that serializes
at a single root master.  The master service-time model is enabled
(50 us per commit + 5 us per op — hashing, dedup, hash-tree rebuild),
since the serialization being relieved is the master's processing; with
a cost-free master the workload is communication-bound and sharding
merely lengthens paths.  We sweep the shard-master count and regenerate
a throughput table.
"""

import pytest

from conftest import write_table
from repro.cmb.session import CommsSession
from repro.cmb.topology import TreeTopology
from repro.kvs.sharding import ShardedKvsClient, sharded_kvs_specs
from repro.sim.cluster import make_cluster

SHARD_COUNTS = (1, 2, 4, 8)
N_NODES = 16
CLIENTS = 32
ROUNDS = 4
VALUE = "x" * 2048


def run_workload(nshards: int) -> dict:
    cluster = make_cluster(N_NODES, seed=55)
    session = CommsSession(
        cluster, topology=TreeTopology(N_NODES),
        modules=sharded_kvs_specs(nshards, N_NODES,
                                  master_commit_cost=5e-5,
                                  master_op_cost=5e-6)).start()
    sim = cluster.sim

    def client(i):
        kvs = ShardedKvsClient(session.connect(i % N_NODES), nshards)
        for r in range(ROUNDS):
            yield kvs.put(f"job{i}.round{r}", VALUE)
            yield kvs.commit_shard(kvs.shard_of(f"job{i}.round{r}"))
        value = yield kvs.get(f"job{i}.round{ROUNDS - 1}")
        assert value == VALUE

    procs = [sim.spawn(client(i)) for i in range(CLIENTS)]
    sim.run()
    assert all(p.ok for p in procs)
    return {
        "time": sim.now,
        "commits_per_s": CLIENTS * ROUNDS / sim.now,
        "bytes": cluster.network.total_bytes_sent(),
    }


@pytest.fixture(scope="module")
def shard_results():
    results = {k: run_workload(k) for k in SHARD_COUNTS}
    lines = [f"Ablation: distributed KVS master — {CLIENTS} clients x "
             f"{ROUNDS} commits of 2 KiB, private namespaces",
             f"{'masters':>8} {'time(ms)':>10} {'commits/s':>11} "
             f"{'MB moved':>9}"]
    for k, r in results.items():
        lines.append(f"{k:>8} {r['time'] * 1e3:>10.3f} "
                     f"{r['commits_per_s']:>11.0f} "
                     f"{r['bytes'] / 1e6:>9.2f}")
    write_table("ablation_sharding", "\n".join(lines), data=results)
    return results


def test_sharding_table_regenerated(shard_results):
    assert set(shard_results) == set(SHARD_COUNTS)


def test_distributed_master_beats_single(shard_results):
    """The future-work hypothesis: sharding the master improves commit
    throughput on namespace-disjoint workloads."""
    assert shard_results[4]["time"] < shard_results[1]["time"]


def test_returns_diminish(shard_results):
    gain_2 = shard_results[1]["time"] / shard_results[2]["time"]
    gain_8 = shard_results[4]["time"] / shard_results[8]["time"]
    assert gain_8 < gain_2


def test_sharding_benchmark_representative(benchmark, shard_results):
    benchmark.pedantic(lambda: run_workload(4), rounds=2, iterations=1)
