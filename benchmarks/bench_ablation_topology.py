"""Ablation — comms-tree fan-out (the paper: "although a binary
RPC/reduction tree is pictured, the tree shape is configurable").

Sweeps the tree arity from binary to a flat star and regenerates
fence/consumer latency per shape.  Expected: deep trees amortize
reduction bandwidth but add hops; the flat star centralizes all fence
traffic on the root (the traditional single-daemon layout Flux
replaces) and loses at scale.
"""

import pytest

from conftest import write_table
from repro.kap import KapConfig, format_series_table, run_kap

ARITIES = (2, 4, 8, 0)  # 0 = flat star (arity = nnodes - 1)


def config_for(nnodes, ppn, arity, **kw):
    return KapConfig(nnodes=nnodes, procs_per_node=ppn,
                     tree_arity=arity if arity else nnodes - 1, **kw)


@pytest.fixture(scope="module")
def arity_series(scale):
    fence_cols, get_cols = {}, {}
    for arity in ARITIES:
        label = f"arity-{arity}" if arity else "flat"
        fence, get = {}, {}
        for nn in scale["nodes"]:
            cfg = config_for(nn, scale["ppn"], arity, value_size=2048,
                             naccess=0, nconsumers=0)
            fence[cfg.nprocs] = run_kap(cfg).max_sync_latency
            cfg2 = config_for(nn, scale["ppn"], arity, value_size=8,
                              naccess=4, nputs=1 if scale["paper"] else 16)
            get[cfg2.nprocs] = run_kap(cfg2).max_consumer_latency
        fence_cols[label] = fence
        get_cols[label] = get
    write_table("ablation_topology_fence", format_series_table(
        "Ablation: fence latency vs tree arity", "producers", fence_cols),
        data=fence_cols)
    write_table("ablation_topology_get", format_series_table(
        "Ablation: consumer latency vs tree arity", "consumers", get_cols),
        data=get_cols)
    return fence_cols, get_cols


def test_ablation_topology_tables_regenerated(arity_series):
    fence_cols, get_cols = arity_series
    assert len(fence_cols) == len(ARITIES) == len(get_cols)


def test_flat_star_loses_on_consumer_phase(arity_series, scale):
    """A star means every consumer faults straight off the root: the
    root NIC serializes everything, while a tree spreads the load
    across interior caches."""
    _fence_cols, get_cols = arity_series
    procs = max(scale["nodes"]) * scale["ppn"]
    assert get_cols["arity-2"][procs] < get_cols["flat"][procs]


def test_tree_shapes_all_correct(scale):
    """Sanity: every shape computes the same KVS contents (latency
    differs, results do not)."""
    roots = set()
    for arity in ARITIES:
        cfg = config_for(min(scale["nodes"]), scale["ppn"], arity,
                         value_size=64, naccess=1, seed=77)
        res = run_kap(cfg)
        roots.add(len(res.consumer))
    assert len(roots) == 1


def test_ablation_benchmark_binary_vs_flat(benchmark, scale,
                                            arity_series):
    cfg = config_for(scale["nodes"][1], scale["ppn"], 2,
                     value_size=2048, naccess=0, nconsumers=0)
    benchmark.pedantic(lambda: run_kap(cfg), rounds=3, iterations=1)
