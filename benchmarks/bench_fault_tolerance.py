"""Fault-tolerance characterization — detection and self-healing.

Paper, System Challenges: "it must be tolerant of hardware and
software faults and failures and have no single point of failure";
Section IV-A: "each message plane ... can self-heal when interior
nodes fail", with liveness driven by heartbeat-synchronized hellos
(``missed_max`` consecutive misses declare a child dead).

This bench sweeps the heartbeat period and the miss threshold,
measures time-to-detection and verifies post-heal service, and checks
multi-failure tolerance.  (Root failure is explicitly future work in
the paper and out of scope here too.)
"""

import os
import pathlib
import sys

import pytest

from conftest import write_table
from repro import make_cluster, standard_session
from repro.kvs import KvsClient

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tests"))
from chaos import run_chaos_workload, run_job_chaos_workload  # noqa: E402

N_NODES = 31  # depth-4 binary tree
PERIODS = (0.02, 0.05, 0.1, 0.2)
MISS_MAXES = (2, 3, 5)

#: Per-link message loss rates swept by the chaos recovery bench.
LOSS_RATES = (0.0, 0.001, 0.01, 0.05)
#: ``CHAOS_SMOKE=1`` shrinks the chaos sweep for CI smoke runs.
CHAOS_SMOKE = bool(os.environ.get("CHAOS_SMOKE"))


def detection_time(period: float, missed_max: int,
                   victim: int = 1) -> dict:
    """Kill an interior broker; measure detection and verify service."""
    cluster = make_cluster(N_NODES, seed=71)
    session = standard_session(cluster, with_heartbeat=True,
                               hb_period=period, hb_max_epochs=100000)
    # Patch the live module threshold everywhere.
    for rank in range(N_NODES):
        session.module_at(rank, "live").missed_max = missed_max
    session.start()
    sim = cluster.sim
    sim.run(until=10 * period)  # settle
    t_fail = sim.now
    session.fail_rank(victim)
    live0 = session.module_at(0, "live")
    deadline = t_fail + 100 * period
    while victim not in live0.announced and sim.now < deadline:
        sim.run(until=sim.now + period / 2)
    detected = victim in live0.announced
    t_detect = sim.now - t_fail

    # Service check: a client below the dead node commits and reads.
    ok = False
    if detected:
        sim.run(until=sim.now + 2 * period)  # let the heal settle

        def client():
            kvs = KvsClient(session.connect(victim * 2 + 1,
                                            collective=False))
            yield kvs.put("post.heal", 42)
            yield kvs.commit()
            return (yield kvs.get("post.heal"))

        proc = sim.spawn(client())
        sim.run(until=sim.now + 1.0)
        ok = proc.triggered and proc.ok and proc.value == 42
    session.stop()
    return {"detected": detected, "t_detect": t_detect, "healed": ok}


@pytest.fixture(scope="module")
def detection_grid():
    grid = {(p, m): detection_time(p, m)
            for p in PERIODS for m in MISS_MAXES}
    lines = [f"Fault tolerance: interior-broker failure on a "
             f"{N_NODES}-node binary tree",
             f"{'hb period(s)':>13} {'missed_max':>11} "
             f"{'detect(s)':>10} {'healed':>7}"]
    for (p, m), r in grid.items():
        lines.append(f"{p:>13.2f} {m:>11} {r['t_detect']:>10.3f} "
                     f"{str(r['healed']):>7}")
    write_table("fault_tolerance", "\n".join(lines),
                data={f"p{p}-m{m}": r for (p, m), r in grid.items()})
    return grid


def test_fault_table_regenerated(detection_grid):
    assert len(detection_grid) == len(PERIODS) * len(MISS_MAXES)


def test_all_failures_detected_and_healed(detection_grid):
    for key, r in detection_grid.items():
        assert r["detected"], f"undetected at {key}"
        assert r["healed"], f"service not restored at {key}"


def test_detection_time_tracks_parameters(detection_grid):
    """Detection latency ~ period x missed_max (plus one pulse of
    propagation slack)."""
    for (p, m), r in detection_grid.items():
        assert r["t_detect"] <= p * (m + 3), (p, m, r)
        assert r["t_detect"] >= p * (m - 1)


def test_multiple_simultaneous_failures():
    """Two disjoint interior failures heal independently."""
    cluster = make_cluster(N_NODES, seed=72)
    session = standard_session(cluster, with_heartbeat=True,
                               hb_period=0.05, hb_max_epochs=100000)
    session.start()
    sim = cluster.sim
    sim.run(until=0.5)
    session.fail_rank(1)
    session.fail_rank(2)
    sim.run(until=2.0)
    live0 = session.module_at(0, "live")
    assert {1, 2} <= live0.announced
    # Orphans of both re-attach to the root.
    for orphan in (3, 4, 5, 6):
        assert session.brokers[orphan].parent == 0

    def client(rank):
        kvs = KvsClient(session.connect(rank, collective=False))
        yield kvs.put(f"multi.{rank}", rank)
        yield kvs.commit()
        return (yield kvs.get(f"multi.{rank}"))

    procs = [sim.spawn(client(r)) for r in (7, 11, 30)]
    sim.run(until=3.0)
    assert all(p.ok and p.value == r for p, r in zip(procs, (7, 11, 30)))
    session.stop()


def test_fault_benchmark_representative(benchmark, detection_grid):
    benchmark.pedantic(lambda: detection_time(0.05, 3), rounds=2,
                       iterations=1)


# ----------------------------------------------------------------------
# Chaos recovery sweep: seeded loss + one interior kill
# ----------------------------------------------------------------------
def chaos_run(loss_rate: float):
    """One chaos workload at ``loss_rate`` with an interior broker
    killed mid-run (see ``tests/chaos.run_chaos_workload``)."""
    kwargs = dict(n_nodes=N_NODES, n_clients=16, drop_rate=loss_rate,
                  kill_ranks=(5,), kill_at=0.25,
                  n_iters=2, iter_gap=0.2, run_until=40.0)
    if CHAOS_SMOKE:
        kwargs.update(n_nodes=15, n_clients=8, n_iters=1,
                      iter_gap=0.1, run_until=25.0)
    return run_chaos_workload(**kwargs)


@pytest.fixture(scope="module")
def chaos_grid():
    grid = {loss: chaos_run(loss) for loss in LOSS_RATES}
    nodes = 15 if CHAOS_SMOKE else N_NODES
    lines = [f"Chaos recovery: {nodes}-node tree, one interior kill, "
             f"seeded per-link loss",
             f"{'loss':>6} {'converged':>9} {'detect(s)':>10} "
             f"{'makespan(s)':>11} {'cli retries':>11} "
             f"{'retransmits':>11} {'reroutes':>8} {'replays':>7} "
             f"{'amplification':>13}"]
    for loss, r in grid.items():
        bs = r.broker_stats
        lines.append(
            f"{loss * 100:>5.1f}% {str(r.converged):>9} "
            f"{r.detect_latency:>10.3f} {r.makespan:>11.3f} "
            f"{r.client_retries:>11} {bs.get('retransmits', 0):>11} "
            f"{bs.get('reroutes', 0):>8} {bs.get('replay_hits', 0):>7} "
            f"{r.retry_amplification:>13.3f}")
    write_table("chaos_recovery", "\n".join(lines),
                data={str(loss): {
                    "converged": r.converged,
                    "detect_latency": r.detect_latency,
                    "makespan": r.makespan,
                    "client_retries": r.client_retries,
                    "broker_stats": r.broker_stats,
                    "retry_amplification": r.retry_amplification,
                } for loss, r in grid.items()})
    return grid


def test_chaos_sweep_converges(chaos_grid):
    """Every loss rate converges: all acked writes durable, fences
    released, zero hung waiters."""
    for loss, r in chaos_grid.items():
        assert r.converged, (loss, r.errors)
        assert r.hung_waiters == 0
        assert r.reads_failed == 0


def test_chaos_amplification_bounded(chaos_grid):
    """Retry amplification stays far from a retry storm even at 5%
    loss (each logical RPC re-sent only a handful of times)."""
    for loss, r in chaos_grid.items():
        assert r.retry_amplification < 3.0, (loss, r.retry_amplification)


def test_chaos_loss_costs_work(chaos_grid):
    """Higher loss means more recovery traffic, never silent loss:
    the 5% run does strictly more retries/retransmits than 0%."""
    lo, hi = chaos_grid[0.0], chaos_grid[0.05]
    extra = (lambda r: r.client_retries
             + r.broker_stats.get("retransmits", 0))
    assert extra(hi) > extra(lo)


# ----------------------------------------------------------------------
# Job-plane recovery: task respawn after broker kills
# ----------------------------------------------------------------------
#: (label, ranks to kill mid-job) — root kill exercises jobmgr takeover
#: and "leaf" is resolved against the tree size (first leaf + 2).
JOB_SCENARIOS = (
    ("no-fault", ()),
    ("interior-kill", (3,)),
    ("leaf-kill", ("leaf",)),
    ("root-kill", (0,)),
)


def job_chaos_run(kill_ranks):
    """One parallel job under 1% loss with ``kill_ranks`` failing
    mid-run (see ``tests/chaos.run_job_chaos_workload``)."""
    n_nodes, nprocs = (15, 12) if CHAOS_SMOKE else (N_NODES, 24)
    kills = tuple(n_nodes // 2 + 2 if r == "leaf" else r
                  for r in kill_ranks)
    return run_job_chaos_workload(
        n_nodes=n_nodes, nprocs=nprocs, drop_rate=0.01,
        kill_ranks=kills, kill_at=0.3,
        kvs_replicas=(1, 2) if 0 in kills else ())


@pytest.fixture(scope="module")
def job_chaos_grid():
    grid = {label: job_chaos_run(kills)
            for label, kills in JOB_SCENARIOS}
    nodes = 15 if CHAOS_SMOKE else N_NODES
    lines = [f"Job-plane recovery: {nodes}-node tree, 1% loss, "
             f"broker kills mid-job",
             f"{'scenario':>13} {'converged':>9} {'1x':>5} "
             f"{'respawns':>8} {'detect(s)':>10} {'recover(s)':>10} "
             f"{'makespan(s)':>11} {'amplification':>13}"]
    for label, r in grid.items():
        lines.append(
            f"{label:>13} {str(r.converged):>9} "
            f"{str(r.exactly_once):>5} {r.respawns:>8} "
            f"{r.detect_latency:>10.3f} {r.recovery_latency:>10.3f} "
            f"{r.makespan:>11.3f} {r.retry_amplification:>13.3f}")
    write_table("job_plane_recovery", "\n".join(lines),
                data={label: {
                    "converged": r.converged,
                    "exactly_once": r.exactly_once,
                    "respawns": r.respawns,
                    "detect_latency": r.detect_latency,
                    "recovery_latency": r.recovery_latency,
                    "makespan": r.makespan,
                    "client_retries": r.client_retries,
                    "retry_amplification": r.retry_amplification,
                } for label, r in grid.items()})
    return grid


def test_job_chaos_all_converge_exactly_once(job_chaos_grid):
    """Every scenario — including root kill — completes the job with
    the full rc/stdout set exactly once and no hung waiters."""
    for label, r in job_chaos_grid.items():
        assert r.converged, (label, r.errors)
        assert r.exactly_once, (label, r.errors)
        assert r.hung_waiters == 0, label


def test_job_chaos_kills_cost_respawns(job_chaos_grid):
    """A kill forces at least one respawn epoch; a fault-free run
    forces none."""
    assert job_chaos_grid["no-fault"].respawns == 0
    for label in ("interior-kill", "leaf-kill", "root-kill"):
        assert job_chaos_grid[label].respawns >= 1, label


def test_job_chaos_amplification_bounded(job_chaos_grid):
    """Respawn + retry traffic stays far from a storm at 1% loss."""
    for label, r in job_chaos_grid.items():
        assert r.retry_amplification < 3.0, (label, r.retry_amplification)
