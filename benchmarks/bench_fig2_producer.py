"""Figure 2 — max producer-phase (kvs_put) latency vs producer count.

Paper claim: "kvs_put simply performs and scales well ... because
objects are cached in write-back mode at kvs_put time and flushed to
the master at the next consistency event" — i.e. the latency curve is
flat in the producer count for every value size.
"""

import pytest

from conftest import write_table
from repro.kap import KapConfig, format_series_table, run_kap


def producer_config(nnodes, ppn, vsize):
    return KapConfig(nnodes=nnodes, procs_per_node=ppn, value_size=vsize,
                     nconsumers=0, naccess=0)


@pytest.fixture(scope="module")
def fig2_series(scale):
    """Sweep value size x node count; return {label: {procs: latency}}."""
    cols = {}
    for vsize in scale["vsizes"]:
        series = {}
        for nn in scale["nodes"]:
            cfg = producer_config(nn, scale["ppn"], vsize)
            series[cfg.nprocs] = run_kap(cfg).max_producer_latency
        cols[f"vsize-{vsize}"] = series
    write_table("fig2_producer", format_series_table(
        "Figure 2: max producer (kvs_put) latency vs producer count",
        "producers", cols), data=cols)
    return cols


def test_fig2_table_regenerated(fig2_series):
    assert (len(fig2_series) >= 3
            and all(len(s) >= 4 for s in fig2_series.values()))


def test_fig2_flat_in_producer_count(fig2_series):
    """The paper's headline: put latency does not grow with scale."""
    for label, series in fig2_series.items():
        lats = [series[k] for k in sorted(series)]
        assert max(lats) < 2.0 * min(lats), \
            f"{label}: producer latency not flat: {lats}"


def test_fig2_latency_grows_with_value_size(fig2_series):
    ordered = [series for _label, series in sorted(
        fig2_series.items(), key=lambda kv: int(kv[0].split("-")[1]))]
    smallest = ordered[0]
    largest = ordered[-1]
    procs = max(smallest)
    assert largest[procs] >= smallest[procs]


def test_fig2_benchmark_representative(benchmark, scale, fig2_series):
    """Wall-clock cost of simulating one mid-sweep producer phase."""
    cfg = producer_config(scale["nodes"][1], scale["ppn"], 512)
    result = benchmark.pedantic(lambda: run_kap(cfg), rounds=3,
                                iterations=1)
    benchmark.extra_info["max_producer_latency_s"] = \
        result.max_producer_latency
    benchmark.extra_info["sim_events"] = result.events
