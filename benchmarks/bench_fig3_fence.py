"""Figure 3 — max sync-phase (kvs_fence) latency, unique vs redundant.

Paper claims: (1) with unique values the fence "would perform linearly
with respect to the number of producers because these values are simply
being concatenated while being sent up the tree"; (2) redundant values
improve markedly because they are reduced (deduplicated by SHA1) at
every level; (3) yet "the redundant-value case fails short of
logarithmic scaling ... because while values are reduced, the
(key, SHA1) tuples referring to them are still concatenated".
"""

import pytest

from conftest import write_table
from repro.kap import KapConfig, format_series_table, run_kap


def fence_config(nnodes, ppn, vsize, redundant):
    return KapConfig(nnodes=nnodes, procs_per_node=ppn, value_size=vsize,
                     redundant_values=redundant, nconsumers=0, naccess=0)


@pytest.fixture(scope="module")
def fig3_series(scale):
    cols = {}
    for vsize in scale["vsizes"]:
        for redundant in (False, True):
            label = f"{'red-' if redundant else ''}vsize-{vsize}"
            series = {}
            for nn in scale["nodes"]:
                cfg = fence_config(nn, scale["ppn"], vsize, redundant)
                series[cfg.nprocs] = run_kap(cfg).max_sync_latency
            cols[label] = series
    write_table("fig3_fence", format_series_table(
        "Figure 3: max sync (kvs_fence) latency, unique vs redundant",
        "producers", cols), data=cols)
    return cols


def test_fig3_table_regenerated(fig3_series):
    assert len(fig3_series) >= 6


def test_fig3_unique_values_scale_linearly(fig3_series, scale):
    """Largest value size, unique values: ~linear in producer count."""
    vsize = max(scale["vsizes"])
    series = fig3_series[f"vsize-{vsize}"]
    procs = sorted(series)
    span = procs[-1] / procs[0]           # e.g. 8x more producers
    growth = series[procs[-1]] / series[procs[0]]
    assert growth > span / 4, \
        f"unique fence growth {growth:.2f}x over {span}x producers"


def test_fig3_redundant_beats_unique_at_scale(fig3_series, scale):
    vsize = max(scale["vsizes"])
    procs = max(scale["nodes"]) * scale["ppn"]
    unique = fig3_series[f"vsize-{vsize}"][procs]
    red = fig3_series[f"red-vsize-{vsize}"][procs]
    assert red < unique / 1.5

    # ... and the gap widens with scale (the reduction wins more the
    # more producers contribute the same value).
    procs0 = min(scale["nodes"]) * scale["ppn"]
    gap_small = fig3_series[f"vsize-{vsize}"][procs0] / \
        fig3_series[f"red-vsize-{vsize}"][procs0]
    gap_large = unique / red
    assert gap_large > gap_small


def test_fig3_redundant_short_of_logarithmic(fig3_series, scale):
    """Tuple concatenation keeps redundant fences superlogarithmic:
    latency grows by more than a constant per producer doubling."""
    vsize = max(scale["vsizes"])
    series = fig3_series[f"red-vsize-{vsize}"]
    procs = sorted(series)
    increments = [series[b] - series[a]
                  for a, b in zip(procs, procs[1:])]
    # Logarithmic scaling would give (roughly) equal increments per
    # doubling; the concatenated tuples make later increments larger.
    assert increments[-1] > increments[0]


def test_fig3_benchmark_representative(benchmark, scale, fig3_series):
    cfg = fence_config(scale["nodes"][1], scale["ppn"],
                       max(scale["vsizes"]), False)
    result = benchmark.pedantic(lambda: run_kap(cfg), rounds=3,
                                iterations=1)
    benchmark.extra_info["max_sync_latency_s"] = result.max_sync_latency
