"""Figure 4 — max consumer-phase (kvs_get) latency.

Paper claims: (a) with all keys in a single KVS directory, "the latency
is quite high and also increases linearly as we increase the number of
consumers", because slave caches store only full objects, so reading a
small value faults in the entire directory object through the chain of
caches; (b) splitting keys into directories of at most 128 objects
improves latency substantially; and the access-count plots (access-1,
access-4, ...) order consistently.

``nputs`` is chosen so the directory object size G matches the paper's
(G = producers at paper scale; 16 puts/producer at reduced scale).
"""

import pytest

from conftest import write_table
from repro.kap import KapConfig, format_series_table, run_kap

ACCESS_COUNTS = (1, 4, 16)


def consumer_config(nnodes, ppn, naccess, dir_width, paper):
    return KapConfig(nnodes=nnodes, procs_per_node=ppn, value_size=8,
                     naccess=naccess, nputs=1 if paper else 16,
                     dir_width=dir_width)


@pytest.fixture(scope="module")
def fig4_series(scale):
    out = {}
    for dir_width in (None, 128):
        cols = {}
        for naccess in ACCESS_COUNTS:
            series = {}
            for nn in scale["nodes"]:
                cfg = consumer_config(nn, scale["ppn"], naccess,
                                      dir_width, scale["paper"])
                series[cfg.nprocs] = run_kap(cfg).max_consumer_latency
            cols[f"access-{naccess}"] = series
        out[dir_width] = cols
    write_table("fig4a_consumer_single_dir", format_series_table(
        "Figure 4(a): max consumer (kvs_get) latency, single directory",
        "consumers", out[None]), data=out[None])
    write_table("fig4b_consumer_multi_dir", format_series_table(
        "Figure 4(b): max consumer (kvs_get) latency, <=128-entry dirs",
        "consumers", out[128]), data=out[128])
    return out


def test_fig4_tables_regenerated(fig4_series):
    assert set(fig4_series) == {None, 128}


def test_fig4a_latency_grows_linearly_with_consumers(fig4_series):
    """G grows with C here (producers = consumers), so the paper's
    geometric-series argument predicts ~linear latency growth."""
    for label, series in fig4_series[None].items():
        procs = sorted(series)
        span = procs[-1] / procs[0]
        growth = series[procs[-1]] / series[procs[0]]
        assert growth > span / 4, f"{label}: {growth:.2f}x over {span}x"


def test_fig4b_beats_fig4a(fig4_series, scale):
    """The multi-directory layout wins, and wins more at scale."""
    procs_max = max(scale["nodes"]) * scale["ppn"]
    procs_min = min(scale["nodes"]) * scale["ppn"]
    for naccess in ACCESS_COUNTS:
        single = fig4_series[None][f"access-{naccess}"]
        multi = fig4_series[128][f"access-{naccess}"]
        assert multi[procs_max] < single[procs_max]
    ratio_small = (fig4_series[None]["access-1"][procs_min]
                   / fig4_series[128]["access-1"][procs_min])
    ratio_large = (fig4_series[None]["access-1"][procs_max]
                   / fig4_series[128]["access-1"][procs_max])
    assert ratio_large > ratio_small


def test_fig4_more_accesses_cost_more(fig4_series, scale):
    procs = max(scale["nodes"]) * scale["ppn"]
    for cols in fig4_series.values():
        lats = [cols[f"access-{a}"][procs] for a in ACCESS_COUNTS]
        assert lats == sorted(lats)


def test_fig4_benchmark_representative(benchmark, scale, fig4_series):
    cfg = consumer_config(scale["nodes"][1], scale["ppn"], 4, None,
                          scale["paper"])
    result = benchmark.pedantic(lambda: run_kap(cfg), rounds=3,
                                iterations=1)
    benchmark.extra_info["max_consumer_latency_s"] = \
        result.max_consumer_latency
