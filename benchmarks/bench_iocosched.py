"""Ablation — co-scheduling compute with the shared file system.

Paper, Section I: the traditional paradigm "cannot effectively
schedule applications that utilize site-wide shared resources such as
file systems.  Without scheduling file I/O-intensive jobs to both
compute resources and file systems, overlapping I/O bursts coming from
only a handful of unrelated jobs can disrupt the entire center."

Scenario: a batch of checkpoint-heavy jobs plus one interactive
"victim" job doing small periodic flushes, over a 10 GB/s parallel
file system (demand-proportional under contention, as real parallel
file systems behave during checkpoint storms):

- **traditional** — the scheduler sees only cores; every job
  checkpoints whenever it likes and the bursts overlap;
- **co-scheduled** — jobs also reserve file-system bandwidth (the
  generalized resource model's extra consumable charge), so admission
  staggers the I/O-heavy jobs and caps concurrent demand.

The regenerated table reports the victim's flush stretch (the
"disrupting the entire center" number), the batch checkpoint stretch,
and the makespan cost of the reservation.
"""

import pytest

from conftest import write_table
from repro.core import FluxInstance, JobSpec
from repro.resource import AllocationRequest, ResourcePool, build_cluster_graph
from repro.resource import types as rt
from repro.sched import EasyBackfillPolicy
from repro.sim import SharedResource, Simulation

FS_CAPACITY = 10.0      # GB/s
N_BATCH = 16
CKPT_GB = 20.0
BATCH_DEMAND = 5.0      # GB/s a checkpointing job can drive
BATCH_RESERVE = 2.5     # GB/s admission reservation when co-scheduling
VICTIM_FLUSH_GB = 0.1
VICTIM_DEMAND = 1.0


def run_scenario(cosched: bool) -> dict:
    sim = Simulation(seed=0)
    graph = build_cluster_graph("io", n_racks=2, nodes_per_rack=8)
    fs_res = graph.add(rt.FILESYSTEM, "lustre", parent=graph.root_id)
    bw = graph.add(rt.BANDWIDTH, "lustre-bw", parent=fs_res.rid,
                   capacity=FS_CAPACITY)
    # Proportional sharing: checkpoint storms squeeze small unrelated
    # I/O, as on a real parallel file system.
    fs = SharedResource(sim, capacity=FS_CAPACITY, name="lustre",
                        policy="proportional")
    inst = FluxInstance(sim, ResourcePool(graph),
                        policy=EasyBackfillPolicy())

    ckpt_times: list[float] = []
    flush_times: list[float] = []

    def batch_body(job, instance):
        yield instance.sim.timeout(5.0)              # compute
        t = yield from fs.transfer(CKPT_GB, BATCH_DEMAND,
                                   label=job.spec.name)
        ckpt_times.append(t)
        yield instance.sim.timeout(2.0)              # compute

    def victim_body(job, instance):
        for _ in range(30):
            yield instance.sim.timeout(1.0)
            t = yield from fs.transfer(VICTIM_FLUSH_GB, VICTIM_DEMAND,
                                       label="victim")
            flush_times.append(t)

    reserve = ((bw.rid, BATCH_RESERVE),) if cosched else ()
    victim_reserve = ((bw.rid, VICTIM_DEMAND),) if cosched else ()
    inst.submit(JobSpec(ncores=1, body=victim_body, name="victim",
                        walltime=40.0, extra_charges=victim_reserve))
    for i in range(N_BATCH):
        inst.submit(JobSpec(ncores=8, body=batch_body, name=f"io{i}",
                            walltime=20.0, extra_charges=reserve))
    sim.run()

    ideal_ckpt = CKPT_GB / BATCH_DEMAND
    ideal_flush = VICTIM_FLUSH_GB / VICTIM_DEMAND
    return {
        "makespan": inst.makespan(),
        "ckpt_stretch": max(ckpt_times) / ideal_ckpt,
        "victim_stretch": max(flush_times) / ideal_flush,
        "victim_mean_stretch": (sum(flush_times) / len(flush_times)
                                / ideal_flush),
    }


@pytest.fixture(scope="module")
def io_results():
    results = {"traditional": run_scenario(False),
               "co-scheduled": run_scenario(True)}
    lines = [f"Ablation: I/O co-scheduling — {N_BATCH} x {CKPT_GB:.0f} GB "
             f"checkpoints + interactive victim on a "
             f"{FS_CAPACITY:.0f} GB/s file system",
             f"{'scheduler':>13} {'makespan(s)':>12} {'ckpt stretch':>13} "
             f"{'victim max':>11} {'victim mean':>12}"]
    for label, r in results.items():
        lines.append(f"{label:>13} {r['makespan']:>12.1f} "
                     f"{r['ckpt_stretch']:>12.1f}x "
                     f"{r['victim_stretch']:>10.1f}x "
                     f"{r['victim_mean_stretch']:>11.1f}x")
    write_table("iocosched", "\n".join(lines), data=results)
    return results


def test_io_table_regenerated(io_results):
    assert set(io_results) == {"traditional", "co-scheduled"}


def test_traditional_bursts_disrupt_the_victim(io_results):
    """The paper's claim: overlapping bursts from a handful of jobs
    wreck unrelated I/O — the victim's flushes stretch many-fold."""
    assert io_results["traditional"]["victim_stretch"] > 5.0


def test_cosched_protects_the_victim(io_results):
    cos = io_results["co-scheduled"]
    assert cos["victim_stretch"] < 2.0
    assert (cos["victim_stretch"]
            < io_results["traditional"]["victim_stretch"] / 3)


def test_cosched_bounds_checkpoint_stretch(io_results):
    assert (io_results["co-scheduled"]["ckpt_stretch"]
            < io_results["traditional"]["ckpt_stretch"])


def test_makespan_cost_is_modest(io_results):
    """Reserving bandwidth serializes admissions, but the file system
    stays the real bottleneck either way: the makespan penalty for
    protecting the center is bounded."""
    assert (io_results["co-scheduled"]["makespan"]
            < io_results["traditional"]["makespan"] * 2.0)


def test_io_benchmark_representative(benchmark, io_results):
    benchmark.pedantic(lambda: run_scenario(True), rounds=2, iterations=1)
