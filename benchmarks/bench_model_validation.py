"""Section V-B analytic models vs simulation.

The paper derives ``max consumer latency = log2(C) x T(G)`` and argues
via a geometric series that latency doubles when G doubles with C.
These benches regenerate a model-vs-measured table and assert the
model tracks the simulator within a small factor.
"""

import pytest

from conftest import write_table
from repro.kap import (KapConfig, predict_consumer_latency,
                       predict_fence_latency, predict_producer_latency,
                       run_kap)
from repro.sim.cluster import zin_like_params


@pytest.fixture(scope="module")
def model_rows(scale):
    params = zin_like_params()
    rows = []
    for nn in scale["nodes"]:
        cfg = KapConfig(nnodes=nn, procs_per_node=scale["ppn"],
                        value_size=8, naccess=4,
                        nputs=1 if scale["paper"] else 16)
        res = run_kap(cfg)
        rows.append({
            "consumers": cfg.nprocs,
            "model": predict_consumer_latency(cfg, params),
            "measured": res.max_consumer_latency,
            "producer_model": predict_producer_latency(cfg, params),
            "producer_measured": res.max_producer_latency,
            "fence_model": predict_fence_latency(cfg, params),
            "fence_measured": res.max_sync_latency,
        })
    lines = ["Consumer model log2(C) x T(G) vs simulation",
             f"{'consumers':>10} {'model(ms)':>10} {'meas(ms)':>10} "
             f"{'ratio':>6}"]
    for row in rows:
        ratio = row["measured"] / row["model"]
        lines.append(f"{row['consumers']:>10} {row['model']*1e3:>10.3f} "
                     f"{row['measured']*1e3:>10.3f} {ratio:>6.2f}")
    write_table("model_validation", "\n".join(lines), data=rows)
    return rows


def test_model_table_regenerated(model_rows):
    assert len(model_rows) >= 4


def test_consumer_model_within_factor(model_rows):
    """Model and simulation agree within ~3x across the sweep (the
    paper's model omits per-access constants; shapes must match)."""
    for row in model_rows:
        ratio = row["measured"] / row["model"]
        assert 1 / 3 < ratio < 3, f"model off by {ratio:.2f}x: {row}"

    # Consistency of *growth*: model and measurement scale similarly.
    first, last = model_rows[0], model_rows[-1]
    model_growth = last["model"] / first["model"]
    measured_growth = last["measured"] / first["measured"]
    assert measured_growth == pytest.approx(model_growth, rel=0.6)


def test_geometric_series_doubling(model_rows):
    """G doubles with C here, so each doubling of consumers should
    roughly double the measured latency (the 2T(2G)/T(G) argument)."""
    for a, b in zip(model_rows, model_rows[1:]):
        growth = b["measured"] / a["measured"]
        assert 1.3 < growth < 3.0, f"doubling growth {growth:.2f}"


def test_producer_model_tracks_measurement(model_rows):
    for row in model_rows:
        ratio = row["producer_measured"] / row["producer_model"]
        assert 1 / 4 < ratio < 4


def test_model_evaluation_is_fast(benchmark, scale, model_rows):
    """Model evaluation itself is trivially cheap (pure arithmetic)."""
    params = zin_like_params()
    cfg = KapConfig(nnodes=max(scale["nodes"]), procs_per_node=scale["ppn"])
    benchmark(lambda: predict_consumer_latency(cfg, params))
