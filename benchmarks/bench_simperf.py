"""Simulator throughput — events/sec and wall-clock at paper scale.

The reproduction's usefulness at the paper's Section V scales (64-512
nodes x 16 brokers = 1024-8192 producers) is bounded by simulator
throughput, not by anything the paper measures.  This bench records
the perf trajectory in two modes:

- ``legacy`` — the classic protocol (whole objects on every hop,
  single-heap kernel): the baseline whose tree-plane bytes explode
  super-linearly with producer count.
- ``optimized`` — per-link payload dedup (``dedup=True``: object
  bodies cross each tree edge once, sha references afterward; misses
  walk to the master instead of faulting whole directories) on the
  sharded kernel (``shards=16``: per-subtree sub-kernels under the
  conservative lookahead barrier).

Each row records the *real* row dimensions (producers, nnodes,
procs_per_node, value_size), the per-tree-level ``bytes_sent``
breakdown, and ``interned_bytes_saved`` from the KVS dedup counters.
``--paper-scale`` extends the optimized sweep to 16384 and 65536
producers (1024/4096 nodes; the 65k row must finish inside
``PAPER_65K_BUDGET_S``).

Timing numbers are machine-dependent, so — unlike the figure tables —
``out/simperf.txt``/``out/BENCH_simperf.json`` are gitignored and the
assertions here are *determinism* gates, not speed gates: same-seed
runs must reproduce the golden SAN105 replay fingerprints (the
optimization contract: interning, dedup-off defaults, the merged
sharded kernel and the inlined run loop must be invisible to the
default event stream), plus a *flat-scaling* gate in smoke mode
(optimized events/sec at 4096 producers >= 0.7x the 256-producer
rate) and wall-clock ceilings.

Standalone smoke mode for CI (from ``benchmarks/``)::

    PYTHONPATH=../src python bench_simperf.py --smoke
"""

import argparse
import json
import pathlib
import sys
import time

import pytest

from conftest import OUT_DIR, write_table
from repro.kap import KapConfig, run_kap

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tests"))
from chaos import run_chaos_workload  # noqa: E402

#: Node counts swept at 16 procs/node: 64 -> 8192 producers.  The
#: smoke sweep includes 16 and 256 nodes (256 / 4096 producers)
#: because the flat-scaling gate compares exactly those two rows.
SWEEP_NODES = (4, 16, 64, 256, 512)
SMOKE_NODES = (4, 16, 64, 256, 512)
PAPER_SCALE_NODES = (1024, 4096)

#: Shard count for optimized rows (per-subtree sub-kernels).
OPT_SHARDS = 16

#: CI ceiling for the 8192-producer (512 x 16) run.  Measured ~4 s
#: legacy / ~6 s optimized on a development box; the ceiling leaves
#: >10x headroom for slow runners.
PAPER_SCALE_BUDGET_S = 100.0

#: Ceiling for the 65536-producer (4096 x 16) --paper-scale run
#: (measured ~100 s on a development box; "single-digit minutes").
PAPER_65K_BUDGET_S = 600.0

#: Smoke-mode flat-scaling gate: optimized events/sec at 4096
#: producers must stay within this fraction of the 256-producer rate.
FLAT_SCALING_MIN_RATIO = 0.7

#: Golden SAN105 replay fingerprints for the default (single-shard,
#: dedup-off) mode.  Any change to these is an event-stream change and
#: must be deliberate.
GOLDEN_KAP_256 = "52654cf1c7ec6e222120c2123f5d6763dbdc9834"
GOLDEN_CHAOS_15 = "aab95fab6805f380726e1e083f4889f731cb2654"

#: Pre-optimization reference on the development box (commit 82f684f,
#: 1024-producer config below): 51.9k events/s.  Recorded in the JSON
#: document so the trajectory is visible; never asserted (machine-
#: dependent).
REFERENCE_EPS_1024 = 51_853


def paper_config(nnodes: int, seed: int = 1, **kw) -> KapConfig:
    """Paper-default KAP at ``nnodes`` x 16 (Section V defaults)."""
    return KapConfig(nnodes=nnodes, procs_per_node=16, value_size=64,
                     seed=seed, **kw)


def time_kap(nnodes: int, mode: str = "legacy") -> dict:
    """One timed paper-default run; returns the table row."""
    if mode == "optimized":
        cfg = paper_config(nnodes, dedup=True, shards=OPT_SHARDS)
    else:
        cfg = paper_config(nnodes)
    # Wall-clock on purpose: this benchmark measures the *host's*
    # simulator throughput (events/sec of real time), not simulated
    # time — the one place wall time is the measurand.
    t0 = time.perf_counter()  # repro: noqa[DET001]
    res = run_kap(cfg)
    dt = time.perf_counter() - t0  # repro: noqa[DET001]
    return {
        "mode": mode,
        "producers": cfg.nprocs,
        "nnodes": nnodes,
        "procs_per_node": cfg.procs_per_node,
        "value_size": cfg.value_size,
        "wall_s": round(dt, 3),
        "events": res.events,
        "events_per_sec": round(res.events / dt, 1),
        "bytes_sent": res.bytes_sent,
        "plane_bytes": dict(sorted(res.plane_bytes.items())),
        "level_bytes": {str(k): v for k, v
                        in sorted(res.level_bytes.items())},
        "interned_bytes_saved": res.interned_bytes_saved,
        "flight_peak": res.flight_peak,
    }


def time_chaos() -> dict:
    """Timed chaos scenario: lossy fabric, retries, sanitizers on."""
    # Wall-clock on purpose (see time_kap): throughput measurand.
    t0 = time.perf_counter()  # repro: noqa[DET001]
    rep = run_chaos_workload(n_nodes=31, n_clients=16, drop_rate=0.01,
                             n_iters=2, sanitize=True)
    dt = time.perf_counter() - t0  # repro: noqa[DET001]
    return {
        "wall_s": round(dt, 3),
        "converged": rep.converged,
        "makespan": rep.makespan,
        "fingerprint": rep.event_fingerprint,
    }


def fingerprint_gate() -> dict:
    """Replay-fingerprint (SAN105) identity gates.

    These license every optimization in this bench: the default mode
    must reproduce the *golden* fingerprints exactly (interning and
    the dedup/shard machinery are invisible when off), the sharded
    kernel in merged mode must produce the identical event stream,
    and dedup mode must be same-seed deterministic.
    """
    cfg = dict(nnodes=16, procs_per_node=16, value_size=64, seed=1)
    a = run_kap(KapConfig(**cfg), sanitize=True)
    b = run_kap(KapConfig(**cfg), sanitize=True)
    assert a.event_fingerprint == b.event_fingerprint, \
        "same-seed KAP replay fingerprint diverged"
    assert a.event_fingerprint == GOLDEN_KAP_256, \
        f"default-mode fingerprint {a.event_fingerprint} != golden"
    assert a.max_producer_latency == b.max_producer_latency
    assert a.events == b.events
    # Sharded kernel, merged mode (the fingerprint hook forces it):
    # provably the same total order, so the same fingerprint.
    sh = run_kap(KapConfig(**cfg, shards=4), sanitize=True)
    assert sh.event_fingerprint == GOLDEN_KAP_256, \
        "sharded (merged) fingerprint diverged from single-shard"
    # Dedup mode changes the wire protocol (different stream, by
    # design) but must be same-seed deterministic.
    da = run_kap(KapConfig(**cfg, dedup=True), sanitize=True)
    db = run_kap(KapConfig(**cfg, dedup=True), sanitize=True)
    assert da.event_fingerprint == db.event_fingerprint, \
        "same-seed dedup replay fingerprint diverged"
    assert not da.sanitizer_findings
    ca = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.01,
                            n_iters=1, sanitize=True)
    cb = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.01,
                            n_iters=1, sanitize=True)
    assert ca.event_fingerprint == cb.event_fingerprint, \
        "same-seed chaos replay fingerprint diverged"
    assert ca.event_fingerprint == GOLDEN_CHAOS_15, \
        f"default-mode chaos fingerprint {ca.event_fingerprint} != golden"
    return {"kap_256": a.event_fingerprint,
            "kap_256_dedup": da.event_fingerprint,
            "chaos_15": ca.event_fingerprint}


def collect(nodes=SWEEP_NODES, paper_scale=False) -> dict:
    """Run the sweeps + chaos + fingerprint gate; return the document."""
    # Warm the interpreter/allocator so the smallest row isn't timing
    # first-touch effects.
    run_kap(paper_config(4))
    rows = [time_kap(nn, "legacy") for nn in nodes]
    rows += [time_kap(nn, "optimized") for nn in nodes]
    if paper_scale:
        rows += [time_kap(nn, "optimized") for nn in PAPER_SCALE_NODES]
    return {
        "kap": rows,
        "chaos": time_chaos(),
        "fingerprints": fingerprint_gate(),
        "reference_eps_1024": REFERENCE_EPS_1024,
    }


def simperf_meta(nodes, paper_scale=False) -> dict:
    """The real sweep dimensions of *this* bench (meta override)."""
    node_counts = list(nodes) + (
        list(PAPER_SCALE_NODES) if paper_scale else [])
    return {"node_counts": node_counts, "procs_per_node": 16,
            "value_sizes": [64], "paper_scale": bool(paper_scale)}


def _rows(doc, mode):
    return [r for r in doc["kap"] if r["mode"] == mode]


def render(doc: dict) -> str:
    lines = ["Simulator throughput: paper-default KAP (value_size=64, "
             "16 procs/node)", ""]
    lines.append(f"{'mode':>9} {'producers':>10} {'events':>10} "
                 f"{'wall_s':>8} {'events/s':>10} {'bytes_sent':>13} "
                 f"{'interned_saved':>14}")
    for r in doc["kap"]:
        lines.append(f"{r['mode']:>9} {r['producers']:>10} "
                     f"{r['events']:>10} {r['wall_s']:>8.3f} "
                     f"{r['events_per_sec']:>10.0f} "
                     f"{r['bytes_sent']:>13} "
                     f"{r['interned_bytes_saved']:>14}")
    for mode in ("legacy", "optimized"):
        rows = _rows(doc, mode)
        if not rows:
            continue
        big = max(rows, key=lambda r: r["producers"])
        levels = big.get("level_bytes", {})
        if levels:
            total = sum(levels.values()) or 1
            lines.append("")
            lines.append(f"per-tree-level bytes_sent ({mode}, "
                         f"{big['producers']} producers):")
            for lvl, nbytes in sorted(levels.items(),
                                      key=lambda kv: int(kv[0])):
                lines.append(f"  level {lvl:<3} {nbytes:>12} "
                             f"({100.0 * nbytes / total:5.1f}%)")
    ch = doc["chaos"]
    lines.append("")
    lines.append(f"chaos (31 nodes, drop 1%, sanitizers on): "
                 f"wall={ch['wall_s']:.3f}s makespan={ch['makespan']:.3f} "
                 f"converged={ch['converged']}")
    lines.append(f"replay fingerprints: kap={doc['fingerprints']['kap_256']} "
                 f"chaos={doc['fingerprints']['chaos_15']}")
    return "\n".join(lines)


def write_level_breakdown(doc: dict) -> pathlib.Path:
    """Write the per-tree-level bytes breakdown (CI artifact)."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "simperf_levels.json"
    payload = {
        "rows": [{"mode": r["mode"], "producers": r["producers"],
                  "nnodes": r["nnodes"],
                  "bytes_sent": r["bytes_sent"],
                  "level_bytes": r["level_bytes"],
                  "interned_bytes_saved": r["interned_bytes_saved"]}
                 for r in doc["kap"]],
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


# -- pytest interface ---------------------------------------------------

@pytest.fixture(scope="module")
def simperf_doc():
    doc = collect()
    write_table("simperf", render(doc), data=doc,
                meta=simperf_meta(SWEEP_NODES))
    write_level_breakdown(doc)
    return doc


def test_simperf_table_regenerated(simperf_doc):
    legacy, opt = (_rows(simperf_doc, m) for m in ("legacy", "optimized"))
    assert len(legacy) == len(SWEEP_NODES)
    assert len(opt) == len(SWEEP_NODES)
    assert legacy[0]["producers"] == 64
    assert legacy[-1]["producers"] == 8192
    for row in simperf_doc["kap"]:
        # Meta-drift guard: every row records its real dimensions.
        assert row["procs_per_node"] == 16
        assert row["value_size"] == 64
        assert row["producers"] == row["nnodes"] * 16


def test_simperf_paper_scale_within_budget(simperf_doc):
    """The 8192-producer (512 x 16) runs fit the CI smoke budget."""
    for mode in ("legacy", "optimized"):
        big = max(_rows(simperf_doc, mode), key=lambda r: r["producers"])
        assert big["wall_s"] < PAPER_SCALE_BUDGET_S, \
            f"8192-producer {mode} run took {big['wall_s']}s"


def test_simperf_dedup_byte_reduction(simperf_doc):
    """Dedup cuts tree-plane bytes >= 5x at 8192 producers."""
    legacy = max(_rows(simperf_doc, "legacy"),
                 key=lambda r: r["producers"])
    opt = max(_rows(simperf_doc, "optimized"),
              key=lambda r: r["producers"])
    assert opt["bytes_sent"] * 5 <= legacy["bytes_sent"], \
        (opt["bytes_sent"], legacy["bytes_sent"])
    # The dedup counters account for (far) more avoided bytes than the
    # optimized run actually sent.
    assert opt["interned_bytes_saved"] > opt["bytes_sent"]


def test_simperf_chaos_converged(simperf_doc):
    assert simperf_doc["chaos"]["converged"]


def test_simperf_deterministic_events(simperf_doc):
    """Event counts (unlike wall-clock) are seed-determined; a second
    run of one sweep point must reproduce them exactly."""
    for mode in ("legacy", "optimized"):
        again = time_kap(16, mode)
        row = next(r for r in _rows(simperf_doc, mode)
                   if r["nnodes"] == 16)
        assert again["events"] == row["events"]
        assert again["bytes_sent"] == row["bytes_sent"]


# -- standalone smoke mode (CI perf-smoke job) --------------------------

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI sweep with the flat-scaling gate")
    ap.add_argument("--paper-scale", action="store_true",
                    help="extend the optimized sweep to 16384 and "
                         "65536 producers (1024/4096 nodes)")
    args = ap.parse_args(argv)
    nodes = SMOKE_NODES if args.smoke else SWEEP_NODES
    doc = collect(nodes, paper_scale=args.paper_scale)
    write_table("simperf", render(doc), data=doc,
                meta=simperf_meta(nodes, args.paper_scale))
    write_level_breakdown(doc)
    failures = []
    legacy_big = max(_rows(doc, "legacy"), key=lambda r: r["producers"])
    if (legacy_big["producers"] >= 8192
            and legacy_big["wall_s"] >= PAPER_SCALE_BUDGET_S):
        failures.append(f"8192-producer legacy run took "
                        f"{legacy_big['wall_s']}s "
                        f"(budget {PAPER_SCALE_BUDGET_S}s)")
    opt = {r["producers"]: r for r in _rows(doc, "optimized")}
    if 256 in opt and 4096 in opt:
        # Flat-scaling gate: optimized events/sec must not collapse
        # as producer count grows 16x.
        lo = opt[256]["events_per_sec"]
        hi = opt[4096]["events_per_sec"]
        if hi < FLAT_SCALING_MIN_RATIO * lo:
            failures.append(
                f"flat-scaling gate: {hi:.0f} events/s at 4096 "
                f"producers < {FLAT_SCALING_MIN_RATIO} x {lo:.0f} "
                f"at 256 producers")
    if args.paper_scale:
        big = opt.get(65536)
        if big is not None and big["wall_s"] >= PAPER_65K_BUDGET_S:
            failures.append(f"65536-producer run took {big['wall_s']}s "
                            f"(budget {PAPER_65K_BUDGET_S}s)")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("simperf OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
