"""Simulator throughput — events/sec and wall-clock at paper scale.

The reproduction's usefulness at the paper's Section V scales (64-512
nodes x 16 brokers = 1024-8192 producers) is bounded by simulator
throughput, not by anything the paper measures.  This bench records
the perf trajectory: kernel events processed per wall-clock second for
the paper-default KAP configuration at each producer count, plus one
chaos scenario (faulty fabric + sanitizers, the worst-case per-event
overhead), and writes ``out/BENCH_simperf.json`` so successive
commits have comparable numbers.

Timing numbers are machine-dependent, so — unlike the figure tables —
``out/simperf.txt``/``out/BENCH_simperf.json`` are gitignored and the
assertions here are *determinism* gates, not speed gates: same-seed
runs must produce identical SAN105 replay fingerprints (the
optimization contract: caching and lazy rendering must be invisible
to the event stream), and the 8192-producer run must finish within a
generous CI wall-clock ceiling.

Standalone smoke mode for CI (from ``benchmarks/``)::

    PYTHONPATH=../src python bench_simperf.py --smoke
"""

import argparse
import pathlib
import sys
import time

import pytest

from conftest import write_table
from repro.kap import KapConfig, run_kap

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tests"))
from chaos import run_chaos_workload  # noqa: E402

#: Node counts swept at 16 procs/node: 64 -> 8192 producers.
SWEEP_NODES = (4, 16, 64, 256, 512)
SMOKE_NODES = (4, 64, 512)

#: CI ceiling for the 8192-producer (512 x 16) run.  Measured ~2.5 s on
#: a development box; the ceiling leaves ~40x headroom for slow runners.
PAPER_SCALE_BUDGET_S = 100.0

#: Pre-optimization reference on the development box (commit 82f684f,
#: 1024-producer config below): 51.9k events/s.  Recorded in the JSON
#: document so the trajectory is visible; never asserted (machine-
#: dependent).
REFERENCE_EPS_1024 = 51_853


def paper_config(nnodes: int, seed: int = 1) -> KapConfig:
    """Paper-default KAP at ``nnodes`` x 16 (Section V defaults)."""
    return KapConfig(nnodes=nnodes, procs_per_node=16, value_size=64,
                     seed=seed)


def time_kap(nnodes: int) -> dict:
    """One timed paper-default run; returns the table row."""
    cfg = paper_config(nnodes)
    # Wall-clock on purpose: this benchmark measures the *host's*
    # simulator throughput (events/sec of real time), not simulated
    # time — the one place wall time is the measurand.
    t0 = time.perf_counter()  # repro: noqa[DET001]
    res = run_kap(cfg)
    dt = time.perf_counter() - t0  # repro: noqa[DET001]
    return {
        "producers": cfg.nprocs,
        "nnodes": nnodes,
        "wall_s": round(dt, 3),
        "events": res.events,
        "events_per_sec": round(res.events / dt, 1),
        "bytes_sent": res.bytes_sent,
        "plane_bytes": dict(sorted(res.plane_bytes.items())),
        "flight_peak": res.flight_peak,
    }


def time_chaos() -> dict:
    """Timed chaos scenario: lossy fabric, retries, sanitizers on."""
    # Wall-clock on purpose (see time_kap): throughput measurand.
    t0 = time.perf_counter()  # repro: noqa[DET001]
    rep = run_chaos_workload(n_nodes=31, n_clients=16, drop_rate=0.01,
                             n_iters=2, sanitize=True)
    dt = time.perf_counter() - t0  # repro: noqa[DET001]
    return {
        "wall_s": round(dt, 3),
        "converged": rep.converged,
        "makespan": rep.makespan,
        "fingerprint": rep.event_fingerprint,
    }


def fingerprint_gate() -> dict:
    """Same-seed replay fingerprints (SAN105) — run twice, must match.

    This is the gate that licenses every hot-path optimization in this
    PR: if memoized sizes, lazy event names or the inlined run loop
    perturbed the event stream in any way, the two fingerprints (or
    the two latency sets) would differ.
    """
    cfg = dict(nnodes=16, procs_per_node=16, value_size=64, seed=1)
    a = run_kap(KapConfig(**cfg), sanitize=True)
    b = run_kap(KapConfig(**cfg), sanitize=True)
    assert a.event_fingerprint == b.event_fingerprint, \
        "same-seed KAP replay fingerprint diverged"
    assert a.max_producer_latency == b.max_producer_latency
    assert a.events == b.events
    ca = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.01,
                            n_iters=1, sanitize=True)
    cb = run_chaos_workload(n_nodes=15, n_clients=8, drop_rate=0.01,
                            n_iters=1, sanitize=True)
    assert ca.event_fingerprint == cb.event_fingerprint, \
        "same-seed chaos replay fingerprint diverged"
    return {"kap_256": a.event_fingerprint,
            "chaos_15": ca.event_fingerprint}


def collect(nodes=SWEEP_NODES) -> dict:
    """Run the sweep + chaos + fingerprint gate; return the document."""
    rows = [time_kap(nn) for nn in nodes]
    return {
        "kap": rows,
        "chaos": time_chaos(),
        "fingerprints": fingerprint_gate(),
        "reference_eps_1024": REFERENCE_EPS_1024,
    }


def render(doc: dict) -> str:
    lines = ["Simulator throughput: paper-default KAP (value_size=64, "
             "16 procs/node)", ""]
    lines.append(f"{'producers':>10} {'events':>10} {'wall_s':>8} "
                 f"{'events/s':>10} {'ring_peak':>9}")
    for r in doc["kap"]:
        lines.append(f"{r['producers']:>10} {r['events']:>10} "
                     f"{r['wall_s']:>8.3f} {r['events_per_sec']:>10.0f} "
                     f"{r.get('flight_peak', 0):>9}")
    planes = (doc["kap"][-1] or {}).get("plane_bytes", {})
    if planes:
        total = sum(planes.values()) or 1
        lines.append("")
        lines.append("per-plane bytes (largest sweep point):")
        for plane, nbytes in sorted(planes.items(),
                                    key=lambda kv: -kv[1]):
            lines.append(f"  {plane:<12} {nbytes:>12} "
                         f"({100.0 * nbytes / total:5.1f}%)")
    ch = doc["chaos"]
    lines.append("")
    lines.append(f"chaos (31 nodes, drop 1%, sanitizers on): "
                 f"wall={ch['wall_s']:.3f}s makespan={ch['makespan']:.3f} "
                 f"converged={ch['converged']}")
    lines.append(f"replay fingerprints: kap={doc['fingerprints']['kap_256']} "
                 f"chaos={doc['fingerprints']['chaos_15']}")
    return "\n".join(lines)


# -- pytest interface ---------------------------------------------------

@pytest.fixture(scope="module")
def simperf_doc():
    doc = collect()
    write_table("simperf", render(doc), data=doc)
    return doc


def test_simperf_table_regenerated(simperf_doc):
    assert len(simperf_doc["kap"]) == len(SWEEP_NODES)
    assert simperf_doc["kap"][0]["producers"] == 64
    assert simperf_doc["kap"][-1]["producers"] == 8192


def test_simperf_paper_scale_within_budget(simperf_doc):
    """The 8192-producer (512 x 16) run fits the CI smoke budget."""
    big = simperf_doc["kap"][-1]
    assert big["wall_s"] < PAPER_SCALE_BUDGET_S, \
        f"8192-producer run took {big['wall_s']}s"


def test_simperf_chaos_converged(simperf_doc):
    assert simperf_doc["chaos"]["converged"]


def test_simperf_deterministic_events(simperf_doc):
    """Event counts (unlike wall-clock) are seed-determined; a second
    run of one sweep point must reproduce them exactly."""
    again = time_kap(16)
    row = next(r for r in simperf_doc["kap"] if r["nnodes"] == 16)
    assert again["events"] == row["events"]
    assert again["bytes_sent"] == row["bytes_sent"]


# -- standalone smoke mode (CI perf-smoke job) --------------------------

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="shrink the sweep to 64/1024/8192 producers")
    args = ap.parse_args(argv)
    nodes = SMOKE_NODES if args.smoke else SWEEP_NODES
    doc = collect(nodes)
    write_table("simperf", render(doc), data=doc)
    big = max(doc["kap"], key=lambda r: r["producers"])
    if big["producers"] >= 8192 and big["wall_s"] >= PAPER_SCALE_BUDGET_S:
        print(f"FAIL: 8192-producer run took {big['wall_s']}s "
              f"(budget {PAPER_SCALE_BUDGET_S}s)")
        return 1
    print("simperf OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
