"""Table I — functional micro-benchmarks of every prototyped comms
module (hb, live, log, mon, group, barrier, kvs, wexec, resvc).

The paper's Table I is an inventory, not a measurement; these benches
document that all nine modules exist and are functional, and time a
representative operation of each so regressions in any service are
caught.  A summary table is written to ``benchmarks/out/``.
"""

import pytest

from conftest import write_table
from repro import ModuleSpec, make_cluster, standard_session
from repro.cmb.modules import HeartbeatModule, LiveModule
from repro.kvs import KvsClient

N_NODES = 16


def fresh_session(task_registry=None, heartbeat=False):
    cluster = make_cluster(N_NODES, seed=13)
    session = standard_session(
        cluster, with_heartbeat=heartbeat, hb_period=0.05,
        hb_max_epochs=40, task_registry=task_registry or {}).start()
    return cluster, session


def drive(cluster, gen):
    proc = cluster.sim.spawn(gen)
    return cluster.sim.run_until_complete(proc)


# Collected (module, simulated latency) rows for the summary table.
_rows = []


def _record(module, op, simulated_s):
    _rows.append((module, op, simulated_s))


def test_hb_heartbeat(benchmark):
    def run():
        cluster, session = fresh_session(heartbeat=True)
        cluster.sim.run()
        assert session.module_at(N_NODES - 1, "hb").epoch == 40
        return cluster.sim.now / 40

    per_pulse = benchmark.pedantic(run, rounds=2, iterations=1)
    _record("hb", "pulse propagation", per_pulse)


def test_live_failure_detection(benchmark):
    def run():
        cluster, session = fresh_session(heartbeat=True)
        cluster.sim.run(until=0.3)
        t0 = cluster.sim.now
        session.fail_rank(1)
        live0 = session.module_at(0, "live")
        while 1 not in live0.announced and cluster.sim.now < 2.0:
            cluster.sim.run(until=cluster.sim.now + 0.05)
        assert 1 in live0.announced
        return cluster.sim.now - t0

    detect = benchmark.pedantic(run, rounds=2, iterations=1)
    _record("live", "failure detection", detect)


def test_log_reduction(benchmark):
    def run():
        cluster, session = fresh_session()
        t0 = cluster.sim.now
        for i in range(100):
            session.brokers[N_NODES - 1].log("info", f"line{i}")
        cluster.sim.run()
        sink = session.module_at(0, "log").sink
        assert len(sink) == 100
        return cluster.sim.now - t0

    latency = benchmark.pedantic(run, rounds=2, iterations=1)
    _record("log", "100 records to root", latency)


def test_mon_sampled_reduction(benchmark):
    def run():
        cluster = make_cluster(N_NODES, seed=13)
        from repro.cmb.session import CommsSession
        from repro.cmb.modules import MonModule
        from repro.kvs import KvsModule
        session = CommsSession(cluster, modules=[
            ModuleSpec(KvsModule),
            ModuleSpec(MonModule,
                       samplers={"load": lambda b: float(b.rank)}),
            ModuleSpec(HeartbeatModule, period=0.05, max_epochs=10),
        ]).start()

        def client():
            h = session.connect(0, collective=False)
            yield h.rpc("mon.activate", {"name": "load", "op": "sum"})
            yield cluster.sim.timeout(0.45)
            res = yield h.rpc("mon.results", {"name": "load"})
            assert set(res["results"].values()) == \
                {sum(range(N_NODES)) * 1.0}
            return res

        drive(cluster, client())
        return 0.05  # one epoch per reduction

    latency = benchmark.pedantic(run, rounds=2, iterations=1)
    _record("mon", "epoch reduction", latency)


def test_group_membership(benchmark):
    def run():
        cluster, session = fresh_session()

        def client():
            h = session.connect(5, collective=False)
            t0 = cluster.sim.now
            for i in range(10):
                yield h.rpc("group.join",
                            {"name": "g", "rank": 5, "client": i})
            size = yield h.rpc("group.size", {"name": "g"})
            assert size["size"] == 10
            return (cluster.sim.now - t0) / 10

        return drive(cluster, client())

    latency = benchmark.pedantic(run, rounds=2, iterations=1)
    _record("group", "join rpc", latency)


def test_barrier_collective(benchmark):
    def run():
        cluster, session = fresh_session()
        sim = cluster.sim
        N = N_NODES * 2
        t0 = sim.now

        def member(i):
            h = session.connect(i % N_NODES)
            yield h.barrier("bench", N)

        procs = [sim.spawn(member(i)) for i in range(N)]
        sim.run()
        assert all(p.ok for p in procs)
        return sim.now - t0

    latency = benchmark.pedantic(run, rounds=2, iterations=1)
    _record("barrier", f"{N_NODES * 2}-way barrier", latency)


def test_kvs_put_fence_get(benchmark):
    def run():
        cluster, session = fresh_session()
        sim = cluster.sim
        N = N_NODES
        t0 = sim.now

        def member(i):
            kvs = KvsClient(session.connect(i))
            yield kvs.put(f"bench.k{i}", "v" * 64)
            yield kvs.fence("bench", N)
            yield kvs.get(f"bench.k{(i + 1) % N}")

        procs = [sim.spawn(member(i)) for i in range(N)]
        sim.run()
        assert all(p.ok for p in procs)
        return sim.now - t0

    latency = benchmark.pedantic(run, rounds=2, iterations=1)
    _record("kvs", "put+fence+get x16", latency)


def test_wexec_bulk_launch(benchmark):
    def task(ctx):
        ctx.print("ran")
        yield ctx.sim.timeout(1e-4)

    def run():
        cluster, session = fresh_session(task_registry={"t": task})

        def client():
            h = session.connect(0, collective=False)
            done = h.wait_event("wexec.done")
            t0 = cluster.sim.now
            yield h.rpc("wexec.run",
                        {"jobid": "b", "task": "t",
                         "nprocs": N_NODES * 4})
            msg = yield done
            assert msg.payload["status"] == 0
            return cluster.sim.now - t0

        return drive(cluster, client())

    latency = benchmark.pedantic(run, rounds=2, iterations=1)
    _record("wexec", f"launch {N_NODES * 4} tasks", latency)


def test_resvc_alloc_cycle(benchmark):
    def run():
        cluster, session = fresh_session()

        def client():
            h = session.connect(3, collective=False)
            t0 = cluster.sim.now
            for i in range(10):
                yield h.rpc("resvc.alloc", {"jobid": f"j{i}", "cores": 8})
            for i in range(10):
                yield h.rpc("resvc.free", {"jobid": f"j{i}"})
            return (cluster.sim.now - t0) / 20

        return drive(cluster, client())

    latency = benchmark.pedantic(run, rounds=2, iterations=1)
    _record("resvc", "alloc/free rpc", latency)


def test_zz_write_table1_summary(benchmark):
    """Runs last (file order): dump the Table I inventory.

    Uses the benchmark fixture so the summary is also produced under
    ``--benchmark-only`` (it times the table formatting, trivially)."""
    def render():
        lines = [f"Table I: prototyped comms modules on a {N_NODES}-node "
                 "session (simulated latencies)",
                 f"{'module':>8}  {'operation':<26} "
                 f"{'sim latency (us)':>18}"]
        for module, op, latency in _rows:
            lines.append(f"{module:>8}  {op:<26} {latency * 1e6:>18.1f}")
        return "\n".join(lines)

    write_table("table1_modules", benchmark(render),
                data=[{"module": m, "operation": op, "latency_s": lat}
                      for m, op, lat in _rows])
    assert len(_rows) == 9  # every Table I module measured
