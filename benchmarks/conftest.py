"""Shared infrastructure for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables/figures:
it sweeps the relevant KAP parameters on the simulator, prints the
same series the paper plots, persists them under ``benchmarks/out/``,
and asserts the qualitative shape (who wins, how it grows).
pytest-benchmark additionally times a representative configuration so
simulator performance regressions are visible.

Scale: defaults are laptop-sized (8-64 nodes x 4 procs).  Set
``KAP_PAPER_SCALE=1`` to sweep the paper's 64-512 nodes x 16 procs
(minutes of wall time and several GB of RAM at the largest points).
"""

import json
import os
import pathlib
import platform

import pytest

import repro

#: Paper scale toggle.
PAPER_SCALE = os.environ.get("KAP_PAPER_SCALE") == "1"

#: Node counts swept (x PROCS_PER_NODE processes).
NODE_COUNTS = (64, 128, 256, 512) if PAPER_SCALE else (8, 16, 32, 64)
PROCS_PER_NODE = 16 if PAPER_SCALE else 4

#: Value sizes for Figures 2-3 (paper sweeps 8..32768).
VALUE_SIZES = (8, 512, 8192, 32768) if PAPER_SCALE else (8, 512, 2048)

OUT_DIR = pathlib.Path(__file__).parent / "out"


def run_metadata() -> dict:
    """Sweep dimensions + environment for benchmark JSON documents.

    Deliberately excludes wall-clock timestamps so regenerating an
    unchanged benchmark yields a byte-identical document.
    """
    return {
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "paper_scale": PAPER_SCALE,
        "node_counts": list(NODE_COUNTS),
        "procs_per_node": PROCS_PER_NODE,
        "value_sizes": list(VALUE_SIZES),
    }


def write_table(name: str, text: str, data=None, meta=None) -> None:
    """Persist a regenerated figure table and echo it to stdout.

    Alongside the human-readable ``out/<name>.txt``, always writes
    machine-readable ``out/BENCH_<name>.json``: run metadata, the
    table's lines, and — when the bench passes ``data`` — its raw
    series/rows (JSON-serializable; int dict keys become strings).

    ``meta`` overrides/extends :func:`run_metadata` keys — benches
    whose sweep dimensions differ from the shared figure sweeps (e.g.
    simperf's fixed 16 procs/node) must pass their real dimensions so
    the document's meta block describes *this* bench, not the default
    figure configuration.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    doc = {"name": name, "meta": {**run_metadata(), **(meta or {})},
           "table": text.splitlines()}
    if data is not None:
        doc["data"] = data
    jpath = OUT_DIR / f"BENCH_{name}.json"
    jpath.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"\n{text}\n[written to {path} and {jpath}]")


@pytest.fixture(scope="session")
def scale():
    """The active sweep dimensions, as a dict for bench modules."""
    return {
        "nodes": NODE_COUNTS,
        "ppn": PROCS_PER_NODE,
        "vsizes": VALUE_SIZES,
        "paper": PAPER_SCALE,
    }
