#!/usr/bin/env python3
"""A (compressed) day at a Flux-managed center.

Ties the whole reproduction together on one 512-core simulated cluster:

- a mixed workload from the generators in ``repro.sched.workload`` —
  a batch stream, a UQ ensemble submitted as ONE nested-instance job
  (the unified job model), and waves of short interactive jobs;
- the long batch jobs are malleable, so the bursts squeeze in without
  queueing (Challenge 3 elasticity);
- a midday *power budget* tightens the center to 60% draw and is
  lifted again later (Challenge 1 dynamic constraints);
- per-class schedule metrics reported at the end of day.

Run:  python examples/center_day.py
"""

from repro.core import FluxInstance, JobSpec
from repro.resource import (PowerBudget, ResourcePool,
                            build_cluster_graph)
from repro.resource import types as rt
from repro.sched import (EasyBackfillPolicy, ScheduleReport, batch_mix,
                         burst_waves, ensemble_burst, merge, replay,
                         report, utilization_sparkline)
from repro.sim import Simulation

WATTS_PER_CORE = 10.0


def make_workload():
    batch = []
    for t, spec in batch_mix(40, seed=1, mean_interarrival=2.0,
                             sizes=(8, 16, 32, 64), min_duration=10.0,
                             max_duration=60.0):
        batch.append((t, JobSpec(
            ncores=spec.ncores, duration=spec.duration,
            walltime=spec.walltime, name=spec.name,
            watts_per_core=WATTS_PER_CORE,
            malleable=True, min_cores=max(4, spec.ncores // 4),
            max_cores=spec.ncores, serial_fraction=0.05)))
    ensemble = ensemble_burst(24, at=30.0, member_cores=8,
                              as_instance=96, seed=2)
    bursts = burst_waves(4, 12, seed=3, first_at=20.0, spacing=40.0,
                         ncores=4, min_duration=0.5, max_duration=2.0)
    return merge(batch, ensemble, bursts)


def main() -> None:
    sim = Simulation(seed=0)
    graph = build_cluster_graph("center", n_racks=4, nodes_per_rack=8,
                                rack_power_cap=1800.0)
    power_rid = [r for r in graph.find(rt.POWER)
                 if r.name == "center-power"][0].rid
    pool = ResourcePool(graph)
    inst = FluxInstance(sim, pool, policy=EasyBackfillPolicy(),
                        name="center")

    replay(sim, inst, make_workload())

    def power_operator():
        """Tighten the center power budget at 'midday', lift it later."""
        yield sim.timeout(60.0)
        budget = PowerBudget(power_rid, 0.6 * 512 * WATTS_PER_CORE)
        inst.pool.constraints.append(budget)
        draw = graph.by_id[power_rid].used
        print(f"[t={sim.now:6.1f}s] power budget ON: "
              f"{budget.budget_watts:.0f} W (draw now {draw:.0f} W)")
        yield sim.timeout(60.0)
        inst.pool.constraints.remove(budget)
        inst._kick()
        print(f"[t={sim.now:6.1f}s] power budget lifted")

    sim.spawn(power_operator())
    sim.run()

    print(f"\nend of day at t={inst.makespan():.1f}s — "
          f"{len(inst.completed_jobs())} jobs finished, "
          f"utilization {inst.utilization():.1%}\n")
    print(f"{'class':>10} " + ScheduleReport.header())
    for label, prefix in (("batch", "batch"), ("ensemble", "uq"),
                          ("bursts", "wave"), ("all", None)):
        rep = report(inst, name_prefix=prefix)
        print(f"{label:>10} " + rep.row())
    print("\ncore utilization over the day:")
    print("  " + utilization_sparkline(inst, width=70))
    ens = [j for j in inst.jobs.values()
           if j.spec.name == "uq-ensemble"][0]
    print(f"\nThe ensemble ran as one nested instance "
          f"({len(ens.child.jobs)} members scheduled by its own "
          f"EASY queue inside a 96-core grant).")
    print("Burst jobs skipped the queue because the malleable batch")
    print("jobs donated cores on arrival and reabsorbed them after.")


if __name__ == "__main__":
    main()
