#!/usr/bin/env python3
"""A STAT-like debugging tool attached to a running job.

Challenge 4 (Productivity): Flux "must provide basic, scalable
monitoring and communication primitives at the job level that can be
leveraged by tools", and the CMB's rank-addressed overlay exists for
"tools for debugging the system, where the high latency of a ring is
manageable".

This example launches a simulated MPI-ish job in which one rank hangs
(never reaches the barrier), then attaches a tool that — without
touching the application —

1. sweeps every broker with rank-addressed ``wexec.query`` RPCs to
   collect per-task status (the stack-trace-aggregation pattern of
   STAT),
2. pulls the hung rank's circular debug log (``log.dump``),
3. delivers a signal to terminate the stuck job.

Run:  python examples/debug_tool.py
"""

from collections import Counter

from repro import make_cluster, standard_session
from repro.cmb import RpcError
from repro.kvs import KvsClient

N_NODES = 8
NPROCS = 16
HUNG_RANK = 11


def stencil_task(ctx):
    """A compute task; task rank 11 deadlocks before the barrier."""
    handle = ctx.connect()
    kvs = KvsClient(handle)
    ctx.status = "exchanging halos"
    yield kvs.put(f"halo.{ctx.taskrank}", [0.0] * 8)
    ctx.module.broker.log("debug",
                          f"task {ctx.taskrank} wrote halo")
    if ctx.taskrank == HUNG_RANK:
        ctx.status = "DEADLOCK: waiting on a message that never comes"
        ctx.module.broker.log("err",
                              f"task {ctx.taskrank} stuck in recv")
        yield ctx.sim.timeout(1e9)  # hangs forever
    ctx.status = "in barrier"
    yield kvs.fence("halo-exchange", ctx.nprocs)
    ctx.status = "computing"
    yield ctx.sim.timeout(0.01)


def main() -> None:
    cluster = make_cluster(N_NODES, seed=29)
    session = standard_session(
        cluster, task_registry={"stencil": stencil_task}).start()
    sim = cluster.sim

    def launcher():
        handle = session.connect(0, collective=False)
        yield handle.rpc("wexec.run", {"jobid": "app", "task": "stencil",
                                       "nprocs": NPROCS})

    sim.spawn(launcher())
    sim.run(until=0.5)  # job is now wedged in the fence

    def tool():
        """The attached debugger: a plain CMB client."""
        handle = session.connect(3, collective=False)

        # 1. Job-wide status sweep over the rank-addressed overlay.
        # Errors are structured (errnum code + failing rank), so a
        # broker that can't answer is reported, not silently skipped.
        snapshot = []
        for rank in range(N_NODES):
            try:
                resp = yield handle.rpc_rank(rank, "wexec.query",
                                             {"jobid": "app"})
            except RpcError as exc:
                print(f"tool: broker {rank} query failed "
                      f"[{exc.code} @ rank {exc.rank}]: {exc.error}")
                continue
            snapshot.extend(resp["tasks"])
        by_status = Counter(t["status"] for t in snapshot)
        print("tool: job-wide task states "
              f"({len(snapshot)} tasks on {N_NODES} brokers):")
        for status, count in by_status.most_common():
            print(f"   {count:3d} x {status}")
        stuck = [t for t in snapshot if "DEADLOCK" in t["status"]]
        print(f"tool: outlier task(s): "
              f"{[t['taskrank'] for t in stuck]}")

        # 2. Pull the hung broker's circular debug buffer for context.
        hung_broker = HUNG_RANK % N_NODES
        try:
            dump = yield handle.rpc_rank(hung_broker, "log.dump", {})
        except RpcError as exc:
            raise SystemExit(
                f"tool: log.dump failed [{exc.code} @ rank {exc.rank}]: "
                f"{exc.error}")
        err_lines = [r["text"] for r in dump["records"]
                     if r["level"] == "err"]
        print(f"tool: debug buffer on broker {hung_broker}: {err_lines}")

        # 3. Put the job out of its misery.
        done = handle.wait_event("wexec.done")
        yield handle.rpc("wexec.signal", {"jobid": "app", "signum": 9})
        msg = yield done
        print(f"tool: job terminated, status {msg.payload['status']} "
              f"(128+9 = SIGKILL)")

    proc = sim.spawn(tool())
    sim.run()
    assert proc.ok
    print("\nEverything above used only generic CMB services — no")
    print("application cooperation, no extra daemons: the tool-support")
    print("story Challenge 4 asks the RJMS to provide.")


if __name__ == "__main__":
    main()
