#!/usr/bin/env python3
"""Regenerate the paper's Figures 2-4 series with the KAP driver.

Prints the same table shapes the paper plots: max phase latency versus
producer/consumer count, one column per value size (Figs 2-3) or per
access count (Fig 4).  Scale defaults to a laptop-friendly sweep; set
KAP_PAPER_SCALE=1 for the paper's 64-512 nodes x 16 procs (slow!).

Run:  python examples/kap_figures.py
"""

import os

from repro.kap import (KapConfig, format_series_table, run_kap,
                       predict_consumer_latency)
from repro.sim.cluster import zin_like_params

PAPER = os.environ.get("KAP_PAPER_SCALE") == "1"
NODES = (64, 128, 256, 512) if PAPER else (8, 16, 32, 64)
PPN = 16 if PAPER else 4
VSIZES = (8, 512, 8192) if PAPER else (8, 512, 2048)


def fig2_producer() -> None:
    cols = {}
    for vsize in VSIZES:
        series = {}
        for nn in NODES:
            cfg = KapConfig(nnodes=nn, procs_per_node=PPN,
                            value_size=vsize, nconsumers=0, naccess=0)
            series[cfg.nprocs] = run_kap(cfg).max_producer_latency
        cols[f"vsize-{vsize}"] = series
    print(format_series_table(
        "Figure 2: max producer (kvs_put) latency", "producers", cols))
    print()


def fig3_fence() -> None:
    cols = {}
    for vsize in VSIZES:
        for red in (False, True):
            label = f"{'red-' if red else ''}vsize-{vsize}"
            series = {}
            for nn in NODES:
                cfg = KapConfig(nnodes=nn, procs_per_node=PPN,
                                value_size=vsize, redundant_values=red,
                                nconsumers=0, naccess=0)
                series[cfg.nprocs] = run_kap(cfg).max_sync_latency
            cols[label] = series
    print(format_series_table(
        "Figure 3: max sync (kvs_fence) latency, unique vs redundant",
        "producers", cols))
    print()


def fig4_consumer() -> None:
    nputs = 16 if not PAPER else 1  # match the paper's G at small scale
    for dir_width, sub in ((None, "(a) single directory"),
                           (128, "(b) directories of <=128")):
        cols = {}
        for naccess in (1, 4, 16):
            series = {}
            for nn in NODES:
                cfg = KapConfig(nnodes=nn, procs_per_node=PPN,
                                value_size=8, naccess=naccess,
                                nputs=nputs, dir_width=dir_width)
                series[cfg.nprocs] = run_kap(cfg).max_consumer_latency
            cols[f"access-{naccess}"] = series
        print(format_series_table(
            f"Figure 4{sub}: max consumer (kvs_get) latency",
            "consumers", cols))
        print()

    # The paper's analytic model for the single-directory case.
    params = zin_like_params()
    print("Consumer model check (single dir, access-4): "
          "log2(C) x T(G) vs simulation")
    print(f"{'consumers':>10} {'model (ms)':>12} {'simulated (ms)':>15}")
    for nn in NODES:
        cfg = KapConfig(nnodes=nn, procs_per_node=PPN, value_size=8,
                        naccess=4, nputs=nputs)
        model = predict_consumer_latency(cfg, params)
        sim = run_kap(cfg).max_consumer_latency
        print(f"{cfg.nprocs:>10} {model * 1e3:>12.3f} {sim * 1e3:>15.3f}")


def main() -> None:
    scale = "paper" if PAPER else "reduced"
    print(f"KAP figure regeneration at {scale} scale "
          f"(nodes={NODES}, procs/node={PPN})\n")
    fig2_producer()
    fig3_fence()
    fig4_consumer()


if __name__ == "__main__":
    main()
