#!/usr/bin/env python3
"""MPI bootstrap over Flux PMI — the workload KAP generalizes.

The paper motivates the KVS with process-management services: "a custom
PMI library allows MPI run-times to access the Flux KVS and collective
barrier modules".  This example launches a simulated MPI job whose
ranks exchange "business cards" (connection endpoints) through
put -> fence -> get, then reports how bootstrap latency scales with job
size — a miniature Figure 2/3/4 rolled into one realistic flow.

Run:  python examples/mpi_bootstrap.py
"""

from repro import make_cluster, standard_session
from repro.cmb.pmi import PmiClient


def bootstrap_job(nnodes: int, procs_per_node: int, seed: int = 0) -> float:
    """Wire up one MPI job; returns the max per-rank bootstrap latency
    in simulated seconds."""
    cluster = make_cluster(nnodes, seed=seed)
    session = standard_session(cluster).start()
    sim = cluster.sim
    size = nnodes * procs_per_node
    latencies = []

    def mpi_rank(rank: int):
        handle = session.connect(rank % nnodes)
        pmi = PmiClient(handle, "mpijob", rank, size)
        t0 = sim.now
        # The canonical wire-up: publish my endpoint, fence, read the
        # endpoints of the ranks I will talk to (here: ring neighbours).
        yield pmi.put(f"card.{rank}", f"verbs://node{rank % nnodes}/{rank}")
        yield pmi.fence()
        left = yield pmi.get(f"card.{(rank - 1) % size}")
        right = yield pmi.get(f"card.{(rank + 1) % size}")
        latencies.append(sim.now - t0)
        assert left and right

    procs = [sim.spawn(mpi_rank(r)) for r in range(size)]
    sim.run()
    assert all(p.ok for p in procs)
    return max(latencies)


def main() -> None:
    print("MPI bootstrap latency vs job size (simulated)")
    print(f"{'nodes':>6} {'ranks':>6} {'max bootstrap (ms)':>20}")
    for nnodes in (4, 8, 16, 32):
        latency = bootstrap_job(nnodes, procs_per_node=4)
        print(f"{nnodes:>6} {nnodes * 4:>6} {latency * 1e3:>20.3f}")
    print()
    print("Each rank pays one put (local write-back), one fence")
    print("(tree-reduced collective commit), and two gets (neighbour")
    print("cards, faulted through the slave-cache chain).")


if __name__ == "__main__":
    main()
