#!/usr/bin/env python3
"""Site-wide power capping through the generalized resource model.

Section II's Challenge 1: "dynamic power capping at the level of
systems, compute racks, and/or nodes".  This example builds a center
graph with two clusters, imposes (a) hardware rack power caps and (b) a
tighter *policy* budget on one cluster, and shows how allocations are
shaped and rejected by the hierarchy of bounds — then relaxes the
budget at "night" and watches throughput recover.

Run:  python examples/power_capped_center.py
"""

from repro.core import FluxInstance, JobSpec
from repro.resource import (AllocationRequest, PowerBudget, ResourceGraph,
                            ResourcePool, build_cluster_graph)
from repro.resource import types as rt
from repro.sim import Simulation


def build_center() -> ResourceGraph:
    center = ResourceGraph()
    c = center.add(rt.CENTER, "llnl")
    # zin: big cluster, generous rack caps.
    build_cluster_graph("zin", n_racks=4, nodes_per_rack=4,
                        rack_power_cap=1500.0,
                        parent_graph=center, parent_id=c.rid)
    # cab: smaller cluster with tight rack caps (150 W per rack of
    # 2 nodes: at 10 W/core only 15 of 32 cores may draw power).
    build_cluster_graph("cab", n_racks=2, nodes_per_rack=2,
                        rack_power_cap=150.0,
                        parent_graph=center, parent_id=c.rid)
    return center


def main() -> None:
    center = build_center()
    zin = [r for r in center.find(rt.CLUSTER) if r.name == "zin"][0]
    cab = [r for r in center.find(rt.CLUSTER) if r.name == "cab"][0]

    # --- hardware caps shape placement -------------------------------
    cab_pool = ResourcePool(center, within=cab.rid)
    alloc = cab_pool.allocate("spread-me", AllocationRequest(
        ncores=24, watts_per_core=10.0))
    racks = {center.parent(nrid).name for nrid in alloc.cores}
    print(f"cab: 24 cores @10 W forced across racks {sorted(racks)} "
          f"(150 W cap = 15 cores per rack)")
    try:
        cab_pool.allocate("too-hot", AllocationRequest(
            ncores=8, watts_per_core=10.0))
        print("cab: ERROR - second job should not fit")
    except Exception as exc:
        print(f"cab: second hot job rejected: {exc}")
    cab_pool.release("spread-me")

    # --- policy budget on top of hardware caps -----------------------
    zin_power = [r for r in center.find(rt.POWER)
                 if r.name == "zin-power"][0]
    day_budget = PowerBudget(zin_power.rid, 800.0)  # daytime: 800 W
    sim = Simulation(seed=0)
    inst = FluxInstance(sim, ResourcePool(center, within=zin.rid,
                                          constraints=[day_budget]),
                        name="zin")
    # 10 W/core, 800 W budget -> at most 80 cores concurrently even
    # though zin has 256.
    jobs = [inst.submit(JobSpec(ncores=40, duration=10.0,
                                watts_per_core=10.0, name=f"j{i}"))
            for i in range(6)]
    sim.run(until=5.0)
    running = sum(1 for j in jobs if j.state.value == "running")
    print(f"zin daytime (800 W budget): {running} of 6 jobs running "
          f"({running * 40} cores, {running * 400} W)")

    # "Night": lift the budget and let the backlog through.
    inst.pool.constraints.clear()
    inst._kick()
    sim.run()
    print(f"zin after budget lift: all jobs done at t={inst.makespan():.1f} s, "
          f"mean wait {inst.mean_wait():.1f} s")
    print()
    print("The same mechanism nests: a child instance's projected power")
    print("capacity is itself a bound, so center -> cluster -> rack ->")
    print("job caps compose exactly as the paper's hierarchy requires.")


if __name__ == "__main__":
    main()
