#!/usr/bin/env python3
"""Quickstart: bring up a Flux comms session on a simulated cluster and
use the KVS, barriers, and remote execution — the paper's core run-time
services — from a handful of client processes.

Run:  python examples/quickstart.py
"""

from repro import make_cluster, standard_session
from repro.kvs import KvsClient


def hello_task(ctx):
    """A tiny 'remote program' launched in bulk via the wexec module."""
    ctx.print(f"hello from task {ctx.taskrank} on broker {ctx.broker_rank}")
    yield ctx.sim.timeout(0.001)


def main() -> None:
    # A 16-node simulated cluster (Zin/Cab-like: 16 cores, QDR fabric),
    # with a comms session — CMB brokers wired as a binary tree, all
    # Table I modules loaded — spanning every node.
    cluster = make_cluster(16, seed=7)
    session = standard_session(
        cluster, task_registry={"hello": hello_task}).start()
    sim = cluster.sim

    nprocs = 32  # two client processes per node

    def worker(i: int):
        """One simulated application process doing a KVS exchange."""
        rank = i % 16
        handle = session.connect(rank)
        kvs = KvsClient(handle)

        # Synchronize the start, paper-style.
        yield handle.barrier("quickstart.start", nprocs)

        # Write-back put, then collective fence: after the fence, every
        # process is guaranteed to see every other process's key.
        yield kvs.put(f"exchange.rank{i}", {"endpoint": f"ib://{rank}:{i}"})
        yield kvs.fence("quickstart.fence", nprocs)

        peer = (i + 1) % nprocs
        card = yield kvs.get(f"exchange.rank{peer}")
        return card["endpoint"]

    procs = [sim.spawn(worker(i)) for i in range(nprocs)]
    sim.run()
    endpoints = [p.value for p in procs]
    print(f"{nprocs} processes exchanged endpoints in "
          f"{sim.now * 1e3:.3f} simulated ms")
    print("first three:", endpoints[:3])

    # Bulk-launch a program across the session and read its captured
    # stdout back out of the KVS.
    def driver():
        handle = session.connect(0, collective=False)
        done = handle.wait_event("wexec.done")
        yield handle.rpc("wexec.run",
                         {"jobid": "demo", "task": "hello", "nprocs": 8})
        msg = yield done
        kvs = KvsClient(handle)
        out = yield kvs.get("lwj.demo.3.stdout")
        return msg.payload["status"], out

    proc = sim.spawn(driver())
    status, out = sim.run_until_complete(proc)
    print(f"wexec job finished with status {status}; task 3 printed: {out}")


if __name__ == "__main__":
    main()
