#!/usr/bin/env python3
"""Distributed KVS master — running the paper's future work.

Section VII: "we must also continue to push the scalability envelope of
our infrastructure, in particular in the KVS.  We plan to address the
latter by distributing the KVS master itself."

This example runs a center-style workload — many independent jobs, each
committing bootstrap data into its own KVS namespace — against 1, 2, 4
and 8 shard masters spread across the session ranks, with a realistic
master service-time model (the serialization sharding relieves), and
prints the throughput recovery.

Run:  python examples/sharded_namespaces.py
"""

from repro.cmb.session import CommsSession
from repro.cmb.topology import TreeTopology
from repro.kvs.sharding import (ShardedKvsClient, shard_of_key,
                                sharded_kvs_specs, spread_master_ranks)
from repro.sim.cluster import make_cluster

N_NODES = 16
N_JOBS = 48
COMMITS_PER_JOB = 4


def run(nshards: int) -> tuple[float, float]:
    cluster = make_cluster(N_NODES, seed=17)
    session = CommsSession(
        cluster, topology=TreeTopology(N_NODES),
        modules=sharded_kvs_specs(
            nshards, N_NODES,
            master_commit_cost=5e-5,   # hash-tree rebuild, dedup, fsync-ish
            master_op_cost=5e-6)).start()
    sim = cluster.sim

    def job(i):
        kvs = ShardedKvsClient(session.connect(i % N_NODES), nshards)
        ns = f"lwj{i}"
        for r in range(COMMITS_PER_JOB):
            yield kvs.put(f"{ns}.stage{r}", {"rank": i, "round": r,
                                             "payload": "x" * 1024})
            yield kvs.commit_shard(kvs.shard_of(ns + ".x"))
        check = yield kvs.get(f"{ns}.stage{COMMITS_PER_JOB - 1}")
        assert check["round"] == COMMITS_PER_JOB - 1

    procs = [sim.spawn(job(i)) for i in range(N_JOBS)]
    sim.run()
    assert all(p.ok for p in procs)
    return sim.now, N_JOBS * COMMITS_PER_JOB / sim.now


def main() -> None:
    print(f"{N_JOBS} jobs x {COMMITS_PER_JOB} commits into private "
          f"namespaces on {N_NODES} nodes")
    print(f"{'masters':>8} {'placement':<22} {'time (ms)':>10} "
          f"{'commits/s':>10}")
    base = None
    for nshards in (1, 2, 4, 8):
        t, tput = run(nshards)
        base = base or t
        ranks = spread_master_ranks(nshards, N_NODES)
        print(f"{nshards:>8} {str(ranks):<22} {t * 1e3:>10.3f} "
              f"{tput:>10.0f}   ({base / t:.2f}x)")
    print()
    shard_demo = {f"lwj{i}": shard_of_key(f"lwj{i}.x", 4)
                  for i in range(6)}
    print("namespace -> shard routing (SHA1 of top-level component):",
          shard_demo)
    print("Consistency is per namespace: each shard keeps its own root")
    print("reference and version sequence, so causal waits and watches")
    print("work unchanged within a namespace.")


if __name__ == "__main__":
    main()
