#!/usr/bin/env python3
"""Hierarchical scheduling of an Uncertainty Quantification ensemble.

Section II calls out "ensembles of jobs, e.g., for Uncertainty
Quantification" as the workload breaking the traditional one-job-one-
allocation paradigm.  Under Flux's unified job model, the ensemble is
submitted as ONE nested-instance job; the child instance then schedules
the ensemble members within its grant using its own policy — scheduler
parallelism in action.

This example runs the same 1024-member UQ campaign (many short
members — the high-throughput regime the paper's ensembles live in)
two ways on a 512-core simulated cluster and compares makespans:

  1. flat      — every member queued at one monolithic scheduler;
  2. hierarchy — eight child Flux instances, each granted an eighth of
                 the machine and an eighth of the members.

Scheduling passes charge simulated decision time (AffineCostModel), so
the monolithic queue's serialization shows up as real slowdown.

Run:  python examples/uq_ensemble.py
"""

from repro.core import FluxInstance, JobSpec, partitioned_specs
from repro.resource import ResourcePool, build_cluster_graph
from repro.sched import AffineCostModel, EasyBackfillPolicy
from repro.sim import Simulation


def make_members(n: int, seed: int = 1) -> list[JobSpec]:
    """UQ members: same code, varying runtimes (parameter-dependent)."""
    import random
    rng = random.Random(seed)
    return [JobSpec(ncores=8, duration=rng.uniform(0.2, 0.6),
                    name=f"uq{i:04d}")
            for i in range(n)]


def run_flat(members: list[JobSpec]) -> tuple[float, float]:
    sim = Simulation(seed=0)
    graph = build_cluster_graph("uq", n_racks=4, nodes_per_rack=8)
    inst = FluxInstance(sim, ResourcePool(graph),
                        policy=EasyBackfillPolicy(),
                        cost_model=AffineCostModel(base=2e-3, per_job=1e-3))
    for spec in members:
        inst.submit(spec)
    sim.run()
    return inst.makespan(), inst.sched_time


def run_hierarchical(members: list[JobSpec],
                     nchildren: int = 8) -> tuple[float, float]:
    sim = Simulation(seed=0)
    graph = build_cluster_graph("uq", n_racks=4, nodes_per_rack=8)
    root = FluxInstance(sim, ResourcePool(graph),
                        policy=EasyBackfillPolicy(),
                        cost_model=AffineCostModel(base=2e-3, per_job=1e-3),
                        name="root")
    jobs = [root.submit(p) for p in partitioned_specs(
        512, nchildren, members, child_policy=EasyBackfillPolicy)]
    sim.run()
    child_sched = sum(j.child.sched_time for j in jobs if j.child)
    return root.makespan(), child_sched


def main() -> None:
    members = make_members(1024)
    total_work = sum(m.duration for m in members) * 8  # core-seconds

    flat_make, flat_sched = run_flat(members)
    hier_make, hier_sched = run_hierarchical(members)

    print("1024-member UQ ensemble on 512 cores (8 cores/member)")
    print(f"  ideal lower bound : {total_work / 512:8.1f} s")
    print(f"  flat (1 scheduler): {flat_make:8.1f} s "
          f"(scheduler busy {flat_sched:.1f} s)")
    print(f"  hierarchy (8 kids): {hier_make:8.1f} s "
          f"(children busy {hier_sched:.1f} s, overlapped)")
    print(f"  speedup           : {flat_make / hier_make:8.2f}x")
    print()
    print("The children's scheduling work overlaps (scheduler")
    print("parallelism), while the monolithic queue serializes every")
    print("decision — the gap grows with member count and pool size.")


if __name__ == "__main__":
    main()
