"""repro — reproduction of *Flux: A Next-Generation Resource Management
Framework for Large HPC Centers* (Ahn et al., ICPP 2014).

The package implements the paper's prototyped run-time — the Comms
Message Broker (:mod:`repro.cmb`) and distributed KVS
(:mod:`repro.kvs`) — plus the Section III conceptual design
(:mod:`repro.core`, :mod:`repro.resource`, :mod:`repro.sched`) and the
KAP evaluation driver (:mod:`repro.kap`), all running on a
deterministic discrete-event cluster simulator (:mod:`repro.sim`).

Quickstart::

    from repro import make_cluster, standard_session
    from repro.kvs import KvsClient

    cluster = make_cluster(8)
    session = standard_session(cluster).start()

    def program(sim):
        kvs = KvsClient(session.connect(rank=3))
        yield kvs.put("a.b.c", 42)
        yield kvs.commit()
        value = yield kvs.get("a.b.c")
        return value

    proc = cluster.sim.spawn(program(cluster.sim))
    assert cluster.sim.run_until_complete(proc) == 42
"""

from typing import Optional

from .sim import Cluster, Simulation, make_cluster
from .cmb import CommsSession, Handle, ModuleSpec, TreeTopology
from .cmb.modules import (BarrierModule, GroupModule, HealthModule,
                          HeartbeatModule, LiveModule, LogModule,
                          MonModule, ResvcModule, StatsModule,
                          WexecModule, registry_samplers)
from .kvs import KvsClient, KvsModule

__version__ = "1.0.0"

__all__ = [
    "Cluster", "Simulation", "make_cluster", "CommsSession", "Handle",
    "ModuleSpec", "TreeTopology", "KvsClient", "KvsModule",
    "standard_session", "__version__",
]


def standard_session(cluster: Cluster,
                     node_ids: Optional[list[int]] = None,
                     topology: Optional[TreeTopology] = None,
                     *,
                     with_heartbeat: bool = False,
                     hb_period: float = 0.1,
                     hb_max_epochs: Optional[int] = None,
                     task_registry: Optional[dict] = None,
                     kvs_expiry: Optional[float] = None,
                     kvs_replicas: tuple = (),
                     kvs_dedup: bool = False,
                     wexec_config: Optional[dict] = None) -> CommsSession:
    """Build a comms session loaded with the full Table I module set.

    The heartbeat is off by default so bounded simulations drain
    naturally; enable it (with ``hb_max_epochs`` in tests) for the
    ``live``/``mon``/cache-expiry machinery.

    ``kvs_replicas`` names the ranks holding standby replicas of the
    KVS root master (multi-master failover); empty keeps the classic
    single-master protocol.  ``kvs_dedup`` turns on the per-link
    payload-dedup wire protocol (object references instead of repeat
    object bodies).  ``wexec_config`` passes extra keyword
    options (``max_restarts``, ``respawn_backoff``) to the bulk
    launcher's node-loss recovery.
    """
    modules = [
        ModuleSpec(KvsModule, expiry=kvs_expiry,
                   replicas=tuple(kvs_replicas), dedup=kvs_dedup),
        ModuleSpec(BarrierModule),
        ModuleSpec(LogModule),
        ModuleSpec(GroupModule),
        ModuleSpec(ResvcModule),
        ModuleSpec(WexecModule, registry=task_registry or {},
                   **(wexec_config or {})),
        # Registry-backed samplers are registered but inactive: they
        # generate no traffic until a client activates them.
        ModuleSpec(MonModule, samplers=registry_samplers()),
        ModuleSpec(StatsModule),
        # Passive until a client RPCs ``health.activate``; then each
        # hb.pulse tree-reduces a cluster health view at the root.
        ModuleSpec(HealthModule),
    ]
    if with_heartbeat:
        modules.append(ModuleSpec(HeartbeatModule, period=hb_period,
                                  max_epochs=hb_max_epochs))
        modules.append(ModuleSpec(LiveModule))
    return CommsSession(cluster, node_ids=node_ids, topology=topology,
                        modules=modules)
