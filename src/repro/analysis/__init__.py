"""Static and runtime analysis for the reproduction.

Two halves sharing one :class:`~repro.analysis.findings.Finding`
model:

- :mod:`repro.analysis.lint` — an AST linter enforcing determinism
  and protocol hygiene over ``src/repro`` (``python -m repro.analysis
  lint --strict`` is the CI gate);
- :mod:`repro.analysis.sanitizers` — pure-observer runtime checkers
  (FIFO link order, KVS read consistency, span-forest shape, replay
  divergence) hooked into the sim kernel and network.
"""

from .findings import Finding, render_json, render_text, worst_severity
from .lint import RULES, lint_paths, lint_source
from .sanitizers import (FifoLinkSanitizer, KvsConsistencySanitizer,
                         SanitizerSet, SpanForestSanitizer,
                         replay_fingerprint_hook)

__all__ = [
    "Finding", "render_json", "render_text", "worst_severity",
    "RULES", "lint_paths", "lint_source",
    "SanitizerSet", "FifoLinkSanitizer", "KvsConsistencySanitizer",
    "SpanForestSanitizer", "replay_fingerprint_hook",
]
