"""Static and runtime analysis for the reproduction.

Two halves sharing one :class:`~repro.analysis.findings.Finding`
model:

- :mod:`repro.analysis.lint` — an AST linter enforcing determinism
  and protocol hygiene over ``src/repro`` (``python -m repro.analysis
  lint --strict`` is the CI gate);
- :mod:`repro.analysis.effects` / :mod:`repro.analysis.flowgraph` —
  the whole-program protocol-flow analyzer: per-handler effect
  summaries (reply-on-all-paths, retry-duplicated side effects,
  unbounded waits) stitched into a global message-flow graph with
  static wait-cycle detection (``python -m repro.analysis flow
  --strict``);
- :mod:`repro.analysis.sanitizers` — pure-observer runtime checkers
  (FIFO link order, KVS read consistency, span-forest shape, replay
  divergence) hooked into the sim kernel and network.
"""

from .effects import (FLOW_RULES, HandlerSummary, SendSite,
                      analyze_paths, analyze_source)
from .findings import Finding, render_json, render_text, worst_severity
from .flowgraph import FlowGraph, build_graph, to_dot, to_json
from .lint import RULES, lint_paths, lint_source
from .sanitizers import (FifoLinkSanitizer, KvsConsistencySanitizer,
                         SanitizerSet, SpanForestSanitizer,
                         replay_fingerprint_hook)

__all__ = [
    "Finding", "render_json", "render_text", "worst_severity",
    "RULES", "lint_paths", "lint_source",
    "FLOW_RULES", "HandlerSummary", "SendSite",
    "analyze_paths", "analyze_source",
    "FlowGraph", "build_graph", "to_dot", "to_json",
    "SanitizerSet", "FifoLinkSanitizer", "KvsConsistencySanitizer",
    "SpanForestSanitizer", "replay_fingerprint_hook",
]
