"""CLI for the analysis suite.

``python -m repro.analysis lint [paths...]``
    Run the AST linter.  The default target is the installed ``repro``
    package source plus, when run from a repo checkout, ``benchmarks/``
    and ``tests/chaos.py`` (deterministic harness code is held to the
    same determinism/protocol rules).  ``--strict`` exits nonzero on
    any finding — the CI gate.

``python -m repro.analysis flow [paths...]``
    Run the whole-program protocol-flow analyzer (handler effect
    summaries + the global message-flow graph).  ``--strict`` gates;
    ``--dot``/``--graph-json`` export the graph alongside.

``python -m repro.analysis graph``
    Export the message-flow graph only (DOT on stdout by default).

``python -m repro.analysis sanitize``
    Run a small KAP scenario (and optionally a chaos scenario) with
    every runtime sanitizer enabled, verify the run is event-identical
    to a sanitizer-off run, and replay it to check determinism.
    Exits nonzero on any finding or divergence.
"""

from __future__ import annotations

import argparse
import os
import sys

from .effects import FLOW_RULES
from .findings import Finding, render_json, render_text
from .lint import RULES, lint_paths


def _package_path() -> str:
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def _default_lint_paths() -> list[str]:
    paths = [_package_path()]
    # Harness code rides along when linting from a repo checkout.
    for extra in ("benchmarks", os.path.join("tests", "chaos.py")):
        if os.path.exists(extra):
            paths.append(extra)
    return paths


def _default_flow_paths() -> list[str]:
    # Comms-module classes all live inside the package.
    return [_package_path()]


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}  {desc}")
        return 0
    paths = args.paths or _default_lint_paths()
    findings = lint_paths(paths)
    if args.json:
        print(render_json(findings, kind="lint", paths=paths))
    else:
        if findings or not args.quiet:
            print(render_text(findings))
    if findings and args.strict:
        return 1
    return 0


def _export_graph(graph, args) -> None:
    from .flowgraph import to_dot, to_json
    if getattr(args, "dot", None):
        with open(args.dot, "w", encoding="utf-8") as fh:
            fh.write(to_dot(graph))
    if getattr(args, "graph_json", None):
        with open(args.graph_json, "w", encoding="utf-8") as fh:
            fh.write(to_json(graph) + "\n")


def cmd_flow(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule, desc in sorted(FLOW_RULES.items()):
            print(f"{rule}  {desc}")
        return 0
    from .flowgraph import build_graph
    paths = args.paths or _default_flow_paths()
    graph, findings = build_graph(paths,
                                  include_orphans=args.orphans)
    _export_graph(graph, args)
    if args.json:
        print(render_json(findings, kind="flow", paths=paths,
                          handlers=len(graph.handlers),
                          edges=len(graph.edges),
                          cycles=graph.cycles,
                          orphans=graph.orphans))
    else:
        if findings or not args.quiet:
            print(render_text(findings))
            print(f"flow graph: {len(graph.handlers)} handlers, "
                  f"{len(graph.edges)} edges, "
                  f"{len(graph.cycles)} cycle(s), "
                  f"{graph.unresolved} unresolved send(s)")
    if findings and args.strict:
        return 1
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    from .flowgraph import build_graph, to_dot, to_json
    paths = args.paths or _default_flow_paths()
    graph, _findings = build_graph(paths)
    _export_graph(graph, args)
    if not args.dot and not args.graph_json:
        print(to_json(graph) if args.json else to_dot(graph), end="")
    return 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    from ..kap.config import KapConfig
    from ..kap.driver import run_kap

    findings: list[Finding] = []
    notes: list[str] = []

    config = KapConfig(nnodes=args.nodes, procs_per_node=args.procs,
                       nputs=args.puts, sync=args.sync, seed=args.seed)

    # Purity check: the sanitized run must process exactly the events
    # of an unsanitized one (checkers are observers, not actors).
    baseline = run_kap(config)
    first = run_kap(config, sanitize=True)
    findings.extend(first.sanitizer_findings)
    if first.events != baseline.events:
        findings.append(Finding(
            rule="SAN105", severity="error",
            message=(f"sanitized KAP run processed {first.events} "
                     f"events vs {baseline.events} without sanitizers "
                     f"— checkers perturbed the run")))
    notes.append(f"kap: {first.events} events, "
                 f"fingerprint {first.event_fingerprint[:12]}")

    # Replay-divergence check: same seed, same stream.
    second = run_kap(config, sanitize=True)
    findings.extend(second.sanitizer_findings)
    if second.event_fingerprint != first.event_fingerprint:
        findings.append(Finding(
            rule="SAN105", severity="error",
            message=(f"replay divergence: seed {config.seed} produced "
                     f"fingerprints {first.event_fingerprint[:12]} and "
                     f"{second.event_fingerprint[:12]}")))

    if args.chaos:
        sys.path.insert(0, os.path.join(os.getcwd(), "tests"))
        try:
            from chaos import run_chaos_workload
        except ImportError:
            notes.append("chaos: harness not found (run from the repo "
                         "root); skipped")
        else:
            report = run_chaos_workload(
                n_nodes=15, n_clients=8, drop_rate=0.01,
                n_iters=1, sanitize=True)
            findings.extend(report.sanitizer_findings)
            if not report.converged:
                findings.append(Finding(
                    rule="SAN105", severity="error",
                    message=f"chaos run did not converge: "
                            f"{report.errors[:3]}"))
            notes.append(f"chaos: converged={report.converged}, "
                         f"fingerprint {report.event_fingerprint[:12]}")

    if args.json:
        print(render_json(findings, kind="sanitize", notes=notes))
    else:
        for note in notes:
            print(note)
        print(render_text(findings))
    return 1 if findings else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="determinism & protocol analysis suite")
    sub = parser.add_subparsers(dest="command", required=True)

    p_lint = sub.add_parser("lint", help="run the AST linter")
    p_lint.add_argument("paths", nargs="*",
                        help="files/dirs to lint (default: repro pkg)")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit nonzero on any finding")
    p_lint.add_argument("--json", action="store_true")
    p_lint.add_argument("--quiet", action="store_true",
                        help="print nothing when clean")
    p_lint.add_argument("--list-rules", action="store_true")
    p_lint.set_defaults(func=cmd_lint)

    p_flow = sub.add_parser(
        "flow", help="run the protocol-flow analyzer")
    p_flow.add_argument("paths", nargs="*",
                        help="files/dirs to analyze "
                             "(default: repro pkg)")
    p_flow.add_argument("--strict", action="store_true",
                        help="exit nonzero on any finding")
    p_flow.add_argument("--json", action="store_true")
    p_flow.add_argument("--quiet", action="store_true",
                        help="print nothing when clean")
    p_flow.add_argument("--list-rules", action="store_true")
    p_flow.add_argument("--orphans", action="store_true",
                        help="also report FLOW001 orphan-topic "
                             "warnings")
    p_flow.add_argument("--dot", metavar="PATH",
                        help="write the graph as Graphviz DOT")
    p_flow.add_argument("--graph-json", metavar="PATH",
                        help="write the graph as JSON (doctor input)")
    p_flow.set_defaults(func=cmd_flow)

    p_graph = sub.add_parser(
        "graph", help="export the message-flow graph")
    p_graph.add_argument("paths", nargs="*")
    p_graph.add_argument("--json", action="store_true",
                         help="JSON to stdout instead of DOT")
    p_graph.add_argument("--dot", metavar="PATH")
    p_graph.add_argument("--graph-json", metavar="PATH")
    p_graph.set_defaults(func=cmd_graph)

    p_san = sub.add_parser("sanitize",
                           help="run scenarios under the sanitizers")
    p_san.add_argument("--nodes", type=int, default=16)
    p_san.add_argument("--procs", type=int, default=1,
                       help="tester processes per node")
    p_san.add_argument("--puts", type=int, default=4)
    p_san.add_argument("--sync", default="fence",
                       choices=("fence", "commit"))
    p_san.add_argument("--seed", type=int, default=1)
    p_san.add_argument("--chaos", action="store_true",
                       help="also run a chaos scenario (needs tests/)")
    p_san.add_argument("--json", action="store_true")
    p_san.set_defaults(func=cmd_sanitize)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
