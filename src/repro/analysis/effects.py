"""Per-handler effect summaries for the protocol-flow analyzer.

Phase one of the flow analysis (the PR 4 linter's whole-program
sibling): walk every comms-module class in the source and compute, per
``req_`` handler and event callback, a summary of its *protocol
effects* — whether it responds on all control-flow paths, which topics
it sends/publishes (resolving ``f"{self.name}.x"`` against the class
``name`` attribute and one level of wrapper-helper indirection per
call edge), which errnum codes it can answer with, and where it
blocks.  :mod:`repro.analysis.flowgraph` stitches the summaries into
the global message-flow graph.

Four per-handler rules fall out of the summaries:

========  =========  ==================================================
Rule      Severity   Meaning
========  =========  ==================================================
REPLY001  error      A ``req_`` handler can reach its end on some
                     control-flow path without responding, deferring
                     the message, or raising — the client waits until
                     its deadline (or forever).
RETRY001  error      A handler emits a message (request or event) and
                     *then* answers with a retryable errnum
                     (``cmb.errors.RETRYABLE_CODES``): transient
                     errors are never replay-cached, so a client
                     retry re-executes the handler and duplicates the
                     side effect.
TIME001   error      Event-returning wait (``rpc``/``rpc_up``/
                     ``rpc_rank``/``rpc_rank_tree``) with no deadline
                     or timeout — a dead peer parks the waiting proc
                     forever.
BLOCK001  error      Event-returning RPC form called in the direct
                     body of a request handler: handlers run on the
                     broker dispatch path and cannot yield, so the
                     wait could never be collected there.
========  =========  ==================================================

Reply analysis semantics: a handler "handles" a request on a path when
it calls ``respond(msg, ...)``/``proxy_upstream(msg, ...)``, raises
(the dispatcher answers ``NoHandlerError`` with ENOSYS; anything else
is a crash, not a silent hang), or *defers* the message — stores
``msg`` or passes it bare to any other callable (held-fence lists,
spawned procs, waiter queues).  Attribute reads (``msg.payload``)
are not an escape.  The analysis is per-statement path-sensitive
(if/try/loops), so early-return guard idioms are understood.

The graph-level rules (DEAD001 wait cycles, FLOW001 orphan topics)
live in :mod:`repro.analysis.flowgraph`.  Suppression uses the shared
``# repro: noqa[RULE]`` syntax on the flagged line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

from ..cmb.errors import RETRYABLE_CODES
from .findings import Finding
from .lint import _apply_noqa, _const_str, _dotted, iter_python_files

__all__ = ["FLOW_RULES", "HandlerSummary", "SendSite",
           "analyze_source", "analyze_paths"]

#: Rule id -> one-line description (drives ``flow --list-rules``).
#: DEAD001/FLOW001 are emitted by the flowgraph layer but documented
#: here so the flow rule table lives in one place.
FLOW_RULES = {
    "REPLY001": "request handler may finish without responding",
    "RETRY001": "side effect emitted before a retryable error response",
    "TIME001": "blocking wait without a deadline",
    "BLOCK001": "event-returning RPC in a request handler body",
    "DEAD001": "static request-wait cycle across module boundaries",
    "FLOW001": "orphan event topic (never published / never consumed)",
}

#: Send primitives that register a pending entry and await a response
#: (callback- or event-returning) — these form wait edges in the graph.
_WAITING_SENDS = frozenset({
    "rpc", "_rpc", "rpc_up", "rpc_up_cb", "rpc_parent_cb",
    "rpc_rank", "rpc_rank_tree", "rpc_hop_cb",
})
#: One-way request send: no pending entry, no response, no wait edge.
_ONEWAY_SENDS = frozenset({"send_parent"})
#: Event-returning forms: a proc that yields the returned event blocks
#: until the response (or its deadline) arrives.
_BLOCKING_SENDS = frozenset({"rpc", "rpc_up", "rpc_rank",
                             "rpc_rank_tree"})
#: Positional index of the topic argument per send primitive.
_TOPIC_ARG = {
    "rpc": 0, "_rpc": 0, "rpc_up": 0, "rpc_up_cb": 0,
    "rpc_parent_cb": 0, "send_parent": 0, "publish": 0,
    "rpc_rank": 1, "rpc_rank_tree": 1, "rpc_hop_cb": 1,
}
#: Positional index of the deadline/timeout argument of blocking forms.
_DEADLINE_ARG = {"rpc": 2, "rpc_up": 2, "rpc_rank": 3,
                 "rpc_rank_tree": 3}

_FN_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_CLOSURE_NODES = _FN_NODES + (ast.Lambda,)


# ---------------------------------------------------------------------
# data model
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class SendSite:
    """One message emission attributed to a handler.

    ``topic`` is the statically-resolved topic (``None`` when dynamic);
    ``param`` names the enclosing method's parameter the topic came
    from (wrapper helpers — resolved at each call edge); ``via`` is
    the helper-call chain from the owning handler to the actual call.
    """

    topic: Optional[str]
    primitive: str
    line: int
    col: int
    waits: bool
    blocking: bool
    deferred: bool               # issued from a nested def / lambda
    bounded: Optional[bool]      # blocking forms: deadline present?
    param: Optional[str] = None
    via: tuple = ()

    def as_dict(self) -> dict:
        out = {"topic": self.topic, "primitive": self.primitive,
               "line": self.line, "waits": self.waits,
               "deferred": self.deferred}
        if self.blocking:
            out["bounded"] = self.bounded
        if self.via:
            out["via"] = list(self.via)
        return out


@dataclass(frozen=True)
class HandlerSummary:
    """Effect summary for one request handler or event callback."""

    module: str          # class `name` attribute, e.g. "kvs"
    cls: str             # class name, e.g. "KvsModule"
    method: str          # method name, e.g. "req_get" / "_on_pulse"
    kind: str            # "request" | "event"
    topic: str           # request topic served / subscription prefix
    file: str
    line: int
    end_line: int
    reply: str = ""      # request handlers: always|deferred|never|partial
    sends: tuple = ()    # effective SendSites (helpers folded in)
    raises: tuple = ()   # errnum literals this handler can answer with
    flags: tuple = ()    # flow rules that fired (post-noqa) in its body

    def node_id(self) -> str:
        return self.topic if self.kind == "request" \
            else f"{self.module}:{self.method}"

    def as_dict(self) -> dict:
        return {"module": self.module, "cls": self.cls,
                "method": self.method, "kind": self.kind,
                "topic": self.topic, "file": self.file,
                "line": self.line, "reply": self.reply,
                "sends": [s.as_dict() for s in self.sends],
                "raises": list(self.raises),
                "flags": list(self.flags)}


@dataclass
class _MethodInfo:
    """Raw per-method scan results (pre-closure)."""

    name: str
    node: ast.AST
    params: tuple = ()
    sends: list = field(default_factory=list)       # SendSite
    subscribes: list = field(default_factory=list)  # (prefix, cb, line)
    responds: list = field(default_factory=list)    # (line, code, defer)
    proxies: list = field(default_factory=list)     # (line, topic, param,
                                                    #  defer)
    self_calls: list = field(default_factory=list)  # (name, call, defer)
    einval: bool = False     # @request_handler(required=...) decorated


# ---------------------------------------------------------------------
# per-class analysis
# ---------------------------------------------------------------------

def _is_module_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        dotted = _dotted(base)
        if dotted and dotted.rsplit(".", 1)[-1] == "CommsModule":
            return True
    return any(isinstance(x, _FN_NODES) and x.name.startswith("req_")
               for x in node.body)


def _class_name_attr(node: ast.ClassDef) -> Optional[str]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "name"
                   for t in stmt.targets):
                return _const_str(stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) \
                    and stmt.target.id == "name":
                return _const_str(stmt.value) if stmt.value else None
    return None


def _bounded(call: ast.Call, attr: str) -> bool:
    """True when a blocking send carries a non-None deadline/timeout."""
    idx = _DEADLINE_ARG[attr]
    if len(call.args) > idx:
        arg = call.args[idx]
        return not (isinstance(arg, ast.Constant) and arg.value is None)
    for kw in call.keywords:
        if kw.arg in ("deadline", "timeout"):
            return not (isinstance(kw.value, ast.Constant)
                        and kw.value.value is None)
    return False


def _direct_nodes(node: ast.AST) -> Iterable[ast.AST]:
    """Subtree walk that does not descend into nested defs/lambdas."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _CLOSURE_NODES):
            continue
        yield from _direct_nodes(child)


class _ClassAnalyzer:
    """Analyze one comms-module class: scan, close over helpers,
    run the per-handler rules, and build handler summaries."""

    def __init__(self, node: ast.ClassDef, filename: str):
        self.node = node
        self.filename = filename
        name = _class_name_attr(node)
        if not name:
            name = node.name.replace("Module", "").lower() or node.name
        self.module_name = name
        self.methods: dict[str, _MethodInfo] = {}
        self.findings: list[Finding] = []
        # method name -> rules that fired in its body (pre-noqa; the
        # caller re-derives post-noqa flags from surviving findings).
        self._eff_cache: dict[str, tuple] = {}
        for stmt in node.body:
            if isinstance(stmt, _FN_NODES):
                self.methods[stmt.name] = self._scan_method(stmt)

    # -- reporting -----------------------------------------------------
    def report(self, rule: str, line: int, col: int, message: str,
               severity: str = "error") -> None:
        self.findings.append(Finding(
            rule=rule, severity=severity, message=message,
            file=self.filename, line=line, col=col + 1))

    # -- topic resolution ----------------------------------------------
    def resolve_topic(self, node: ast.AST, params: tuple = ()
                      ) -> tuple[Optional[str], Optional[str]]:
        """``(topic, param)``: a fully-resolved topic string (literals
        and f-strings whose only interpolation is ``self.name``), or
        the enclosing method's parameter the topic flows from."""
        lit = _const_str(node)
        if lit is not None:
            return lit, None
        if isinstance(node, ast.JoinedStr):
            parts = []
            for v in node.values:
                const = _const_str(v)
                if const is not None:
                    parts.append(const)
                elif isinstance(v, ast.FormattedValue) \
                        and _dotted(v.value) == "self.name":
                    parts.append(self.module_name)
                else:
                    return None, None
            return "".join(parts), None
        if isinstance(node, ast.Name) and node.id in params:
            return None, node.id
        return None, None

    # -- method scan ---------------------------------------------------
    def _scan_method(self, fn) -> _MethodInfo:
        params = tuple(a.arg for a in fn.args.args[1:])  # drop self
        info = _MethodInfo(name=fn.name, node=fn, params=params)
        for dec in fn.decorator_list:
            if isinstance(dec, ast.Call) \
                    and _dotted(dec.func) == "request_handler":
                info.einval = any(kw.arg == "required"
                                  for kw in dec.keywords)
        self._scan_node(fn, info, depth=-1)
        return info

    def _scan_node(self, node, info: _MethodInfo, depth: int) -> None:
        if isinstance(node, _CLOSURE_NODES):
            depth += 1
        for child in ast.iter_child_nodes(node):
            self._scan_node(child, info, depth)
        if isinstance(node, ast.Call):
            self._scan_call(node, info, deferred=depth > 0)

    def _scan_call(self, call: ast.Call, info: _MethodInfo,
                   deferred: bool) -> None:
        func = call.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if attr is None:
            return
        dotted = _dotted(func)
        if dotted and dotted.startswith("self.") \
                and "." not in dotted[len("self."):]:
            info.self_calls.append((attr, call, deferred))
        if attr in _TOPIC_ARG and len(call.args) > _TOPIC_ARG[attr]:
            topic, param = self.resolve_topic(
                call.args[_TOPIC_ARG[attr]], info.params)
            blocking = attr in _BLOCKING_SENDS
            info.sends.append(SendSite(
                topic=topic, primitive=attr,
                line=call.lineno, col=call.col_offset,
                waits=attr in _WAITING_SENDS, blocking=blocking,
                deferred=deferred,
                bounded=_bounded(call, attr) if blocking else None,
                param=param))
        elif attr == "subscribe" and len(call.args) >= 2:
            prefix, _ = self.resolve_topic(call.args[0])
            cb = None
            cb_node = call.args[1]
            if isinstance(cb_node, ast.Attribute) \
                    and _dotted(cb_node) == f"self.{cb_node.attr}":
                cb = cb_node.attr
            info.subscribes.append((prefix, cb, call.lineno))
        elif attr == "respond":
            code = None
            for kw in call.keywords:
                if kw.arg == "code":
                    code = _const_str(kw.value)
            info.responds.append((call.lineno, code, deferred))
        elif attr == "proxy_upstream":
            topic = param = None
            if len(call.args) > 1:
                topic, param = self.resolve_topic(call.args[1],
                                                  info.params)
            info.proxies.append((call.lineno, topic, param, deferred))

    # -- helper closure ------------------------------------------------
    def _bind(self, callee: _MethodInfo, call: ast.Call) -> dict:
        binding: dict[str, ast.AST] = {}
        for pname, arg in zip(callee.params, call.args):
            binding[pname] = arg
        for kw in call.keywords:
            if kw.arg:
                binding[kw.arg] = kw.value
        return binding

    def effective(self, name: str, _stack: frozenset = frozenset()
                  ) -> tuple[list, list, list]:
        """``(sends, responds, proxies)`` of a method with helper
        calls folded in (topic parameters re-resolved per call edge)."""
        if name in self._eff_cache:
            return self._eff_cache[name]
        info = self.methods[name]
        sends = list(info.sends)
        responds = list(info.responds)
        proxies = list(info.proxies)
        stack = _stack | {name}
        for callee, call, deferred in info.self_calls:
            if callee not in self.methods or callee in stack:
                continue
            c_sends, c_responds, c_proxies = self.effective(callee,
                                                            stack)
            binding = self._bind(self.methods[callee], call)
            for s in c_sends:
                topic, param = s.topic, s.param
                if param is not None:
                    arg = binding.get(param)
                    topic, param = (self.resolve_topic(arg, info.params)
                                    if arg is not None else (None, None))
                sends.append(replace(
                    s, topic=topic, param=param,
                    deferred=deferred or s.deferred,
                    via=(callee,) + s.via))
            for line, code, c_def in c_responds:
                responds.append((line, code, deferred or c_def))
            for line, topic, param, c_def in c_proxies:
                if param is not None:
                    arg = binding.get(param)
                    topic, param = (self.resolve_topic(arg, info.params)
                                    if arg is not None else (None, None))
                proxies.append((line, topic, param, deferred or c_def))
        out = (sends, responds, proxies)
        if _stack == frozenset():
            self._eff_cache[name] = out
        return out

    # -- rule passes ---------------------------------------------------
    def check_methods(self) -> None:
        for name, info in self.methods.items():
            for s in info.sends:
                if s.blocking and s.bounded is False:
                    self.report(
                        "TIME001", s.line, s.col,
                        f"{s.primitive}({s.topic or '<dynamic>'!r}) "
                        f"without a deadline/timeout — a dead peer "
                        f"parks this wait forever")
            if name.startswith("req_"):
                for s in info.sends:
                    if s.blocking and not s.deferred:
                        self.report(
                            "BLOCK001", s.line, s.col,
                            f"event-returning {s.primitive}() in the "
                            f"body of req_{name[4:]} — handlers run "
                            f"on the dispatch path and cannot yield; "
                            f"use the _cb form or spawn a proc")

    # -- summaries -----------------------------------------------------
    def summaries(self) -> list[HandlerSummary]:
        out = []
        subs: dict[str, list] = {}
        for info in self.methods.values():
            for prefix, cb, _line in info.subscribes:
                if cb and prefix:
                    subs.setdefault(cb, []).append(prefix)
        for name, info in self.methods.items():
            if name.startswith("req_"):
                out.append(self._summary(info, "request",
                                         f"{self.module_name}."
                                         f"{name[len('req_'):]}"))
            for prefix in subs.get(name, ()):
                out.append(self._summary(info, "event", prefix))
        return out

    def _summary(self, info: _MethodInfo, kind: str,
                 topic: str) -> HandlerSummary:
        sends, responds, proxies = self.effective(info.name)
        eff = [s for s in sends if s.param is None]
        for line, ptopic, param, deferred in proxies:
            if param is not None:
                continue
            eff.append(SendSite(
                topic=ptopic if ptopic is not None else topic,
                primitive="proxy_upstream", line=line, col=0,
                waits=True, blocking=False, deferred=deferred,
                bounded=None))
        raises = {code for _line, code, _d in responds
                  if code is not None}
        if info.einval:
            raises.add("EINVAL")
        reply = ""
        if kind == "request":
            reply = self._reply_disposition(info, topic)
        return HandlerSummary(
            module=self.module_name, cls=self.node.name,
            method=info.name, kind=kind, topic=topic,
            file=self.filename, line=info.node.lineno,
            end_line=getattr(info.node, "end_lineno", info.node.lineno),
            reply=reply, sends=tuple(eff), raises=tuple(sorted(raises)))

    # -- REPLY001 / RETRY001 path analysis -----------------------------
    def _reply_disposition(self, info: _MethodInfo, topic: str) -> str:
        fn = info.node
        args = fn.args.args
        if len(args) < 2:
            return ""
        msg = args[1].arg
        walker = _ReplyWalker(self, fn, msg)
        disposition = walker.run()
        if walker.violation:
            if disposition == "never":
                self.report(
                    "REPLY001", fn.lineno, fn.col_offset,
                    f"handler for {topic!r} never responds, defers "
                    f"{msg!r}, or raises — every client waits out "
                    f"its full deadline")
            else:
                self.report(
                    "REPLY001", fn.lineno, fn.col_offset,
                    f"handler for {topic!r} can return without "
                    f"responding on some control-flow path")
        return disposition


class _ReplyWalker:
    """Path-sensitive reply/emit analysis over one handler body.

    State per program point is a set of ``(handled, emitted)`` pairs:
    *handled* flips on respond/proxy/defer of the request message,
    *emitted* on any direct-body message emission.  ``raise`` and
    ``return`` end a path; exits with ``handled=False`` are REPLY001;
    a retryable-coded respond reached with ``emitted=True`` is
    RETRY001.
    """

    def __init__(self, owner: _ClassAnalyzer, fn, msg: str):
        self.owner = owner
        self.fn = fn
        self.msg = msg
        self.exit_states: set = set()
        self.violation = False
        self.any_reply = False
        self.any_escape = False
        self._retry_lines: set = set()

    def run(self) -> str:
        out = self._walk(self.fn.body, {(False, False)})
        self.exit_states |= out
        self.violation = any(not handled
                             for handled, _e in self.exit_states)
        if not self.any_reply and not self.any_escape:
            return "never" if self.violation else "always"
        if self.violation:
            return "partial"
        return "always" if self.any_reply and not self.any_escape \
            else "deferred"

    # -- statement effects --------------------------------------------
    def _scan_stmt(self, stmt) -> tuple[bool, bool, list]:
        """``(handles, emits, retry_responds)`` for one statement.

        *handles* looks through nested defs (a respond inside a
        callback is a deferred reply); *emits* and retryable responds
        are direct-body only (callback-time ordering is unknowable).
        """
        parents: dict[int, ast.AST] = {}
        reply_args: set[int] = set()
        handles = False
        for node in ast.walk(stmt):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("respond", "proxy_upstream") \
                    and node.args \
                    and isinstance(node.args[0], ast.Name) \
                    and node.args[0].id == self.msg:
                handles = True
                self.any_reply = True
                reply_args.add(id(node.args[0]))
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == self.msg:
                if id(node) in reply_args:
                    continue
                parent = parents.get(id(node))
                if isinstance(parent, ast.Attribute) \
                        and parent.value is node:
                    continue          # msg.payload etc: a read
                handles = True
                self.any_escape = True
        emits = False
        retry = []
        for node in _direct_nodes(stmt):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            if attr in _TOPIC_ARG or attr == "proxy_upstream":
                emits = True
            elif attr == "respond":
                for kw in node.keywords:
                    code = _const_str(kw.value) \
                        if kw.arg == "code" else None
                    if code in RETRYABLE_CODES:
                        retry.append((node.lineno, node.col_offset,
                                      code))
        return handles, emits, retry

    def _apply(self, stmt, states: set) -> set:
        handles, emits, retry = self._scan_stmt(stmt)
        if retry and any(e for _h, e in states):
            for line, col, code in retry:
                if line not in self._retry_lines:
                    self._retry_lines.add(line)
                    self.owner.report(
                        "RETRY001", line, col,
                        f"responds {code} (retryable) after emitting "
                        f"a message — transient errors are not "
                        f"replay-cached, so a client retry re-runs "
                        f"this handler and duplicates the emit")
        out = set()
        for handled, emitted in states:
            out.add((handled or handles, emitted or emits))
        return out

    # -- control flow --------------------------------------------------
    def _walk(self, block, states: set) -> set:
        for stmt in block:
            if not states:
                return states
            states = self._step(stmt, states)
        return states

    def _step(self, stmt, states: set) -> set:
        if isinstance(stmt, ast.Return):
            self.exit_states |= self._apply(stmt, states)
            return set()
        if isinstance(stmt, ast.Raise):
            return set()
        if isinstance(stmt, ast.If):
            after_test = self._apply(stmt.test, states)
            return (self._walk(stmt.body, after_test)
                    | self._walk(stmt.orelse, after_test))
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            head = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) \
                else stmt.test
            entry = self._apply(head, states)
            after = entry | self._walk(stmt.body, entry)
            if stmt.orelse:
                after = self._walk(stmt.orelse, after)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entry = states
            for item in stmt.items:
                entry = self._apply(item.context_expr, entry)
            return self._walk(stmt.body, entry)
        if isinstance(stmt, ast.Try):
            # An exception can fire at any statement boundary in the
            # body, so handlers are entered with the union of states
            # seen at each boundary.
            boundary = set(states)
            s = states
            for inner in stmt.body:
                s = self._step(inner, s)
                boundary |= s
            out = set(s)
            handler_out = set()
            for handler in stmt.handlers:
                handler_out |= self._walk(handler.body, set(boundary))
            if stmt.orelse:
                out = self._walk(stmt.orelse, out)
            out |= handler_out
            if stmt.finalbody:
                out = self._walk(stmt.finalbody, out)
            return out
        return self._apply(stmt, states)


# ---------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------

def analyze_source(source: str, filename: str = "<string>"
                   ) -> tuple[list[HandlerSummary], list[Finding]]:
    """Compute handler summaries + per-handler findings for one file.

    Only comms-module classes (subclasses of ``CommsModule``, or any
    class defining ``req_`` methods — the fixture-friendly criterion)
    are analyzed; client/harness code is the linter's jurisdiction.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [], [Finding(rule="PARSE", severity="error",
                            message=f"syntax error: {exc.msg}",
                            file=filename, line=exc.lineno or 0,
                            col=(exc.offset or 0))]
    summaries: list[HandlerSummary] = []
    findings: list[Finding] = []
    raw: list[HandlerSummary] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) \
                or not _is_module_class(node):
            continue
        analyzer = _ClassAnalyzer(node, filename)
        analyzer.check_methods()
        raw.extend(analyzer.summaries())
        findings.extend(analyzer.findings)
    findings = _apply_noqa(findings, source)
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    # Post-noqa flags: a suppressed finding is a sanctioned idiom and
    # must not mark the handler in the exported graph.
    for s in raw:
        flags = sorted({f.rule for f in findings
                        if s.line <= f.line <= s.end_line})
        summaries.append(replace(s, flags=tuple(flags)) if flags else s)
    return summaries, findings


def analyze_paths(paths: Sequence[str]
                  ) -> tuple[list[HandlerSummary], list[Finding]]:
    """Analyze every ``.py`` file under ``paths``."""
    summaries: list[HandlerSummary] = []
    findings: list[Finding] = []
    for fn in iter_python_files(paths):
        with open(fn, encoding="utf-8") as fh:
            s, f = analyze_source(fh.read(), fn)
        summaries.extend(s)
        findings.extend(f)
    return summaries, findings
