"""Shared finding model for the analysis suite.

Both halves of :mod:`repro.analysis` — the AST linter and the runtime
sanitizers — report through one :class:`Finding` record so CI, tests
and humans consume a single format:

- **static** findings carry ``file:line`` provenance;
- **runtime** findings carry simulated-time (``t``) and ``rank``
  provenance instead.

Findings render as one-line human text (``file:line: RULE message``)
or as a JSON document with a stable schema (sorted keys, no floats
beyond ``t``), suitable for machine diffing in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["Finding", "render_text", "render_json", "worst_severity",
           "SEVERITIES"]

#: Recognised severities, most severe first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One analysis finding (static or runtime).

    Attributes
    ----------
    rule:
        Stable rule identifier, e.g. ``DET001`` (lint) or ``SAN102``
        (sanitizer).
    severity:
        ``"error"`` or ``"warning"``.
    message:
        Human-readable description of the violation.
    file / line / col:
        Source provenance (static findings; ``file`` empty otherwise).
    t / rank:
        Simulated-time provenance (runtime findings; ``t`` is ``None``
        for static findings, ``rank`` is ``-1`` when not applicable).
    extra:
        Free-form structured context (kept JSON-able).
    """

    rule: str
    severity: str
    message: str
    file: str = ""
    line: int = 0
    col: int = 0
    t: Optional[float] = None
    rank: int = -1
    extra: dict = field(default_factory=dict, compare=False)

    def where(self) -> str:
        """Provenance prefix: ``file:line:col`` or ``t=...[ rank=...]``."""
        if self.file:
            return f"{self.file}:{self.line}:{self.col}"
        parts = []
        if self.t is not None:
            parts.append(f"t={self.t:.9g}")
        if self.rank >= 0:
            parts.append(f"rank={self.rank}")
        return " ".join(parts) or "<runtime>"

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule, "severity": self.severity,
            "message": self.message,
        }
        if self.file:
            out["file"] = self.file
            out["line"] = self.line
            out["col"] = self.col
        if self.t is not None:
            out["t"] = self.t
        if self.rank >= 0:
            out["rank"] = self.rank
        if self.extra:
            out["extra"] = self.extra
        return out

    def render(self) -> str:
        return f"{self.where()}: {self.rule} [{self.severity}] " \
               f"{self.message}"


def worst_severity(findings: Iterable[Finding]) -> Optional[str]:
    """The most severe severity present, or ``None`` when clean."""
    worst = None
    for f in findings:
        if f.severity == "error":
            return "error"
        worst = f.severity
    return worst


def render_text(findings: Iterable[Finding]) -> str:
    """One line per finding plus a summary tail line."""
    findings = list(findings)
    lines = [f.render() for f in findings]
    nerr = sum(1 for f in findings if f.severity == "error")
    nwarn = len(findings) - nerr
    lines.append(f"{len(findings)} finding(s): {nerr} error(s), "
                 f"{nwarn} warning(s)")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding], **meta: Any) -> str:
    """A stable JSON document: ``{"meta": ..., "findings": [...]}``."""
    doc = {"meta": dict(meta),
           "findings": [f.as_dict() for f in findings]}
    return json.dumps(doc, indent=1, sort_keys=True)
