"""Global message-flow graph over the per-handler effect summaries.

Phase two of the flow analysis: stitch every
:class:`~repro.analysis.effects.HandlerSummary` into one graph —
request handlers and event callbacks are nodes, resolved send sites
are edges (handler → the handler serving the topic it sends; publish
sites go through event-topic nodes to their subscribers) — then run
the two whole-program rules:

- **DEAD001**: a cycle of *wait* edges (sends that register a pending
  entry and await a response) spanning two or more modules.  Each
  handler on such a cycle can be waiting on the next while holding its
  own requester — the static shape of the hung-waiter pathologies the
  chaos suite finds at runtime.  Same-handler self-loops are exempt:
  tree-climbing reduction (``barrier.enter`` → parent's
  ``barrier.enter``) is the sanctioned aggregation idiom and
  terminates at the root by construction.
- **FLOW001** (opt-in, warning): an event topic in the canonical
  ``EVENT_TOPICS`` table that the analyzed source never publishes, or
  never subscribes to.  Off by default because some topics are
  deliberately one-sided in ``src/repro`` (the chaos harness injects
  ``fault``; tests consume module events) — the orphan sets are
  always recorded in the exported graph either way.

The graph exports as JSON (for :mod:`repro.obs.doctor`, which
cross-references post-mortem timelines against it) and as Graphviz
DOT (module clusters, solid request edges, dashed event edges, red
cycle edges / flagged handlers).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..cmb.modules import EVENT_TOPICS, request_registry
from .effects import HandlerSummary, analyze_paths
from .findings import Finding
from .lint import _const_str, iter_python_files

__all__ = ["FlowGraph", "build_graph", "to_dot", "to_json"]


@dataclass
class FlowGraph:
    """The assembled whole-program message-flow graph."""

    summaries: list = field(default_factory=list)
    #: request topic -> HandlerSummary
    handlers: dict = field(default_factory=dict)
    #: event topic -> [event-callback node ids] (prefix-matched)
    events: dict = field(default_factory=dict)
    #: {"src", "dst", "topic", "kind", "waits", "line", "file",
    #:  "deferred", "resolved"}
    edges: list = field(default_factory=list)
    #: each cycle is the list of request topics on it, smallest first
    cycles: list = field(default_factory=list)
    #: {"unpublished": [...], "unconsumed": [...]}
    orphans: dict = field(default_factory=dict)
    #: count of send sites whose topic stayed dynamic
    unresolved: int = 0

    def as_dict(self) -> dict:
        return {
            "meta": {"kind": "flow-graph",
                     "handlers": len(self.handlers),
                     "edges": len(self.edges),
                     "unresolved_sends": self.unresolved},
            "handlers": {t: s.as_dict()
                         for t, s in sorted(self.handlers.items())},
            "events": {t: sorted(v)
                       for t, v in sorted(self.events.items())},
            "edges": self.edges,
            "cycles": self.cycles,
            "orphans": self.orphans,
        }


# ---------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------

def _norm_request_topic(topic: str) -> str:
    """A bare module head addresses its ``default`` handler."""
    return topic if "." in topic else f"{topic}.default"


def build_graph(paths: Sequence[str], *,
                registry: Optional[dict] = None,
                event_topics: Optional[frozenset] = None,
                include_orphans: bool = False
                ) -> tuple[FlowGraph, list[Finding]]:
    """Analyze ``paths``, build the flow graph, run DEAD001/FLOW001.

    Returns the graph plus *all* findings (per-handler rules from the
    effects pass and the graph rules), noqa already applied.
    """
    registry = registry if registry is not None else request_registry()
    event_topics = (event_topics if event_topics is not None
                    else EVENT_TOPICS)
    summaries, findings = analyze_paths(paths)
    graph = FlowGraph(summaries=summaries)

    for s in summaries:
        if s.kind == "request":
            graph.handlers[s.topic] = s

    # Event subscriptions: prefix-match callback summaries against the
    # canonical topic table (plus any resolved published topics below).
    sub_prefixes = [(s.topic, s.node_id())
                    for s in summaries if s.kind == "event"]

    published: set[str] = set()
    for s in summaries:
        src = s.node_id()
        for send in s.sends:
            if send.topic is None:
                graph.unresolved += 1
                continue
            if send.primitive == "publish":
                published.add(send.topic)
                graph.edges.append({
                    "src": src, "dst": f"event:{send.topic}",
                    "topic": send.topic, "kind": "event",
                    "waits": False, "line": send.line, "file": s.file,
                    "deferred": send.deferred, "resolved": True})
            else:
                dst = _norm_request_topic(send.topic)
                head, _, method = dst.partition(".")
                resolved = (dst in graph.handlers
                            or method in registry.get(head, ()))
                graph.edges.append({
                    "src": src, "dst": dst, "topic": dst,
                    "kind": "request", "waits": send.waits,
                    "line": send.line, "file": s.file,
                    "deferred": send.deferred, "resolved": resolved})

    for topic in sorted(event_topics | published):
        subscribers = sorted(node for prefix, node in sub_prefixes
                             if topic.startswith(prefix))
        if subscribers:
            graph.events[topic] = subscribers
            for node in subscribers:
                graph.edges.append({
                    "src": f"event:{topic}", "dst": node,
                    "topic": topic, "kind": "deliver", "waits": False,
                    "line": 0, "file": "", "deferred": False,
                    "resolved": True})

    findings.extend(_find_cycles(graph))
    _find_orphans(graph, event_topics, published,
                  [p for p, _ in sub_prefixes], paths)
    if include_orphans:
        for topic in graph.orphans.get("unpublished", ()):
            findings.append(Finding(
                rule="FLOW001", severity="warning",
                message=f"event topic {topic!r} is in EVENT_TOPICS "
                        f"but nothing in the analyzed source "
                        f"publishes it",
                extra={"topic": topic}))
        for topic in graph.orphans.get("unconsumed", ()):
            findings.append(Finding(
                rule="FLOW001", severity="warning",
                message=f"event topic {topic!r} is published but no "
                        f"module subscribes to it",
                extra={"topic": topic}))
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return graph, findings


# ---------------------------------------------------------------------
# DEAD001: wait cycles across module boundaries
# ---------------------------------------------------------------------

def _find_cycles(graph: FlowGraph) -> list[Finding]:
    adj: dict[str, set] = {}
    edge_at: dict[tuple, dict] = {}
    for e in graph.edges:
        if e["kind"] != "request" or not e["waits"]:
            continue
        src, dst = e["src"], e["dst"]
        if src not in graph.handlers or dst not in graph.handlers:
            continue
        if src == dst:
            continue          # self-loop: tree-climb reduction idiom
        adj.setdefault(src, set()).add(dst)
        edge_at.setdefault((src, dst), e)

    sccs = _tarjan(adj)
    findings = []
    for scc in sccs:
        if len(scc) < 2:
            continue
        modules = {t.split(".", 1)[0] for t in scc}
        graph.cycles.append(sorted(scc))
        if len(modules) < 2:
            continue          # intra-module recursion, not cross-module
        cycle = _one_cycle(adj, scc)
        first = edge_at[(cycle[0], cycle[1 % len(cycle)])]
        findings.append(Finding(
            rule="DEAD001", severity="error",
            message=f"static request-wait cycle across modules "
                    f"{', '.join(sorted(modules))}: "
                    f"{' -> '.join(cycle + [cycle[0]])} — every "
                    f"handler on it can be waiting on the next while "
                    f"its own requester waits on it",
            file=first["file"], line=first["line"], col=1,
            extra={"cycle": cycle}))
    return findings


def _tarjan(adj: dict) -> list[list[str]]:
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set = set()
    stack: list = []
    sccs: list = []
    counter = [0]

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(adj.get(v, ())):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            scc = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                scc.append(w)
                if w == v:
                    break
            sccs.append(scc)

    for v in sorted(adj):
        if v not in index:
            strongconnect(v)
    return sccs


def _one_cycle(adj: dict, scc: list[str]) -> list[str]:
    """A representative simple cycle inside an SCC (for the message)."""
    start = min(scc)
    members = set(scc)
    path = [start]
    seen = {start}
    node = start
    while True:
        nxt = None
        for w in sorted(adj.get(node, ())):
            if w == start and len(path) > 1:
                return path
            if w in members and w not in seen:
                nxt = w
                break
        if nxt is None:
            return path
        path.append(nxt)
        seen.add(nxt)
        node = nxt


# ---------------------------------------------------------------------
# FLOW001: orphan event topics
# ---------------------------------------------------------------------

class _PubSubScan(ast.NodeVisitor):
    """Literal publish/subscribe sites anywhere (not just modules)."""

    def __init__(self) -> None:
        self.published: set[str] = set()
        self.pub_tails: set[str] = set()
        self.prefixes: set[str] = set()

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.args:
            attr = node.func.attr
            topic = _const_str(node.args[0])
            if attr == "publish":
                if topic is not None:
                    self.published.add(topic)
                elif isinstance(node.args[0], ast.JoinedStr):
                    tail = _const_str(node.args[0].values[-1])
                    if tail and "." in tail:
                        self.pub_tails.add(tail[tail.index("."):])
            elif attr in ("subscribe", "wait_event"):
                if topic is not None:
                    self.prefixes.add(topic)
        self.generic_visit(node)


def _find_orphans(graph: FlowGraph, event_topics: frozenset,
                  published: set, sub_prefixes: list,
                  paths: Sequence[str]) -> None:
    scan = _PubSubScan()
    for fn in iter_python_files(paths):
        with open(fn, encoding="utf-8") as fh:
            try:
                scan.visit(ast.parse(fh.read(), filename=fn))
            except SyntaxError:
                continue
    all_published = published | scan.published
    all_prefixes = set(sub_prefixes) | scan.prefixes

    def is_published(topic: str) -> bool:
        return (topic in all_published
                or any(topic.endswith(t) for t in scan.pub_tails))

    def is_consumed(topic: str) -> bool:
        return any(topic.startswith(p) for p in all_prefixes)

    graph.orphans = {
        "unpublished": sorted(t for t in event_topics
                              if not is_published(t)),
        "unconsumed": sorted(t for t in event_topics | all_published
                             if not is_consumed(t)),
    }


# ---------------------------------------------------------------------
# export
# ---------------------------------------------------------------------

def to_json(graph: FlowGraph, **meta) -> str:
    doc = graph.as_dict()
    doc["meta"].update(meta)
    return json.dumps(doc, indent=1, sort_keys=True)


def to_dot(graph: FlowGraph) -> str:
    """Graphviz DOT: module clusters, request edges solid, event
    edges dashed, cycle edges red, flagged handlers filled red."""
    cyclic: set[tuple] = set()
    for cycle in graph.cycles:
        members = set(cycle)
        for e in graph.edges:
            if e["kind"] == "request" and e["waits"] \
                    and e["src"] in members and e["dst"] in members:
                cyclic.add((e["src"], e["dst"]))

    by_module: dict[str, list] = {}
    for s in graph.summaries:
        by_module.setdefault(s.module, []).append(s)

    def q(name: str) -> str:
        return '"%s"' % name.replace('"', r'\"')

    lines = ["digraph flow {", "  rankdir=LR;",
             '  node [fontsize=10, fontname="Helvetica"];',
             '  edge [fontsize=9, fontname="Helvetica"];']
    for module in sorted(by_module):
        lines.append(f"  subgraph cluster_{module.replace('.', '_')} "
                     f"{{")
        lines.append(f"    label={q(module)};")
        seen = set()
        for s in sorted(by_module[module],
                        key=lambda x: (x.kind, x.topic, x.method)):
            node = s.node_id()
            if node in seen:
                continue
            seen.add(node)
            label = s.topic if s.kind == "request" \
                else f"{s.method}\\n@ {s.topic}"
            style = ["shape=box"] if s.kind == "request" \
                else ["shape=box", "style=rounded"]
            if s.flags:
                style = ["shape=box",
                         'style="filled"', 'fillcolor="#ffd6d6"']
                label += "\\n[" + ",".join(s.flags) + "]"
            lines.append(f"    {q(node)} [label={q(label)}, "
                         f"{', '.join(style)}];")
        lines.append("  }")
    for topic in sorted(graph.events):
        lines.append(f"  {q('event:' + topic)} [label={q(topic)}, "
                     f"shape=ellipse, style=dashed];")
    emitted = set()
    for e in graph.edges:
        key = (e["src"], e["dst"], e["kind"])
        if key in emitted:
            continue
        emitted.add(key)
        attrs = []
        if e["kind"] == "request":
            if not e["resolved"]:
                attrs.append('style=dotted')
            if (e["src"], e["dst"]) in cyclic:
                attrs.append('color=red')
                attrs.append('penwidth=2')
            if not e["waits"]:
                attrs.append('arrowhead=open')
        else:
            attrs.append("style=dashed")
        if e["dst"] not in graph.handlers \
                and not e["dst"].startswith("event:") \
                and e["kind"] == "request":
            lines.append(f"  {q(e['dst'])} [shape=box, "
                         f"style=dotted];")
        lines.append(f"  {q(e['src'])} -> {q(e['dst'])}"
                     f"{' [' + ', '.join(attrs) + ']' if attrs else ''}"
                     f";")
    lines.append("}")
    return "\n".join(lines) + "\n"
