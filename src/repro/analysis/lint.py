"""Repo-specific AST linter for determinism and protocol hygiene.

The reproduction's guarantees — byte-identical seeded runs, lossless
errnum propagation, one canonical topic registry — are invariants of
the *source*, not just the tests.  This module walks the AST of
``src/repro`` and enforces them:

========  =========  ====================================================
Rule      Severity   Meaning
========  =========  ====================================================
DET001    error      Wall-clock call (``time.time``, ``datetime.now``
                     ...) — simulated code must use ``sim.now``.
DET002    error      Unseeded randomness: module-level ``random.*``
                     draws, ``random.Random()`` with no seed, or
                     ``random.SystemRandom``.  ``random.Random(seed)``
                     is the sanctioned idiom.
DET003    warning    Iterating an unordered ``set`` expression (or
                     ``set()``/``frozenset()`` call) without
                     ``sorted(...)`` in the deterministic core
                     (``sim``/``cmb``/``kvs``/``obs``) — iteration
                     order feeds message emission and hashing.
PROTO001  error      Request topic (``rpc("mod.method")`` and friends)
                     not served by any ``req_`` handler in the
                     canonical registry — a guaranteed runtime ENOSYS.
PROTO002  error      Event topic published/subscribed that no module
                     emits or matches (checked against
                     ``cmb.modules.EVENT_TOPICS``).
ERR001    error      Errnum string literal (``code=``/``errnum=`` or a
                     comparison against ``.code``/``.errnum``) outside
                     ``cmb.errors.ERROR_CODES``.
EXC001    error      Bare ``except:`` — swallows ``RpcError`` (and
                     ``KeyboardInterrupt``) indiscriminately.
========  =========  ====================================================

Suppression: append ``# repro: noqa[RULE1,RULE2]`` (or a blanket
``# repro: noqa``) to the flagged physical line, with a comment saying
why.  Topic tables and errnum codes come straight from the runtime
(:func:`repro.cmb.modules.request_registry`,
:data:`repro.cmb.modules.EVENT_TOPICS`,
:data:`repro.cmb.errors.ERROR_CODES`) so the linter can never drift
from what the dispatcher actually serves.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, Optional, Sequence

from ..cmb.errors import ERROR_CODES
from ..cmb.modules import EVENT_TOPICS, request_registry
from .findings import Finding

__all__ = ["lint_source", "lint_paths", "iter_python_files", "RULES"]

#: Rule id -> one-line description (drives ``--list-rules`` and docs).
RULES = {
    "DET001": "wall-clock call in simulated code",
    "DET002": "unseeded / global random source",
    "DET003": "unordered set iteration in deterministic core",
    "PROTO001": "request topic with no registered handler (ENOSYS)",
    "PROTO002": "unknown event topic",
    "ERR001": "errnum literal not in cmb.errors.ERROR_CODES",
    "EXC001": "bare except swallows RpcError",
}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[\s*([A-Z0-9_,\s]+?)\s*\])?")

# -- rule tables -------------------------------------------------------

_WALLCLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
})

#: Stochastic module-level functions of :mod:`random` — calling any of
#: these draws from (or reseeds) the interpreter-global Mersenne
#: twister, which is shared across the whole process.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "seed",
})

#: Messaging call attributes whose *first* argument is a request topic.
_RPC_TOPIC_ARG0 = frozenset({
    "rpc", "_rpc", "rpc_up", "rpc_up_cb", "rpc_parent_cb", "send_parent",
})
#: ... and whose *second* argument is (first is a rank).
_RPC_TOPIC_ARG1 = frozenset({"rpc_rank", "rpc_rank_tree", "rpc_hop_cb"})

#: Event-plane call attributes; first argument is the event topic.
_EVENT_EMIT = frozenset({"publish"})
_EVENT_MATCH = frozenset({"subscribe", "wait_event"})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _fstring_parts(node: ast.JoinedStr
                   ) -> tuple[Optional[str], Optional[str]]:
    """(literal head, literal tail) of an f-string, where *head* is the
    leading constant text and *tail* the trailing constant text; either
    is ``None`` when the string starts/ends with an interpolation."""
    head = tail = None
    if node.values:
        first, last = node.values[0], node.values[-1]
        head = _const_str(first)
        tail = _const_str(last)
    return head, tail


class _Linter(ast.NodeVisitor):
    def __init__(self, filename: str, *, det_core: bool,
                 registry: dict, event_topics: frozenset,
                 error_codes: frozenset):
        self.filename = filename
        self.det_core = det_core
        self.registry = registry
        self.all_methods = frozenset(
            m for methods in registry.values() for m in methods)
        self.event_topics = event_topics
        self.error_codes = error_codes
        self.findings: list[Finding] = []

    # -- reporting -----------------------------------------------------
    def report(self, rule: str, node: ast.AST, message: str,
               severity: str = "error") -> None:
        self.findings.append(Finding(
            rule=rule, severity=severity, message=message,
            file=self.filename, line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1))

    # -- imports (DET001/DET002 at the import site) --------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        names = {a.name for a in node.names}
        if node.module == "time":
            clocks = sorted(names & {n.split(".", 1)[1]
                                     for n in _WALLCLOCK
                                     if n.startswith("time.")})
            if clocks:
                self.report("DET001", node,
                            f"importing wall-clock source(s) "
                            f"{', '.join(clocks)} from time — use sim.now")
        elif node.module == "random":
            bad = sorted(names & (_GLOBAL_RANDOM_FNS | {"SystemRandom"}))
            if bad:
                self.report("DET002", node,
                            f"importing global random source(s) "
                            f"{', '.join(bad)} — pass a seeded "
                            f"random.Random instead")
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is not None:
            self._check_clock_and_rng(node, name)
        if isinstance(node.func, ast.Attribute):
            self._check_protocol(node, node.func.attr)
        self._check_errnum_kwargs(node)
        self.generic_visit(node)

    def _check_clock_and_rng(self, node: ast.Call, name: str) -> None:
        if name in _WALLCLOCK:
            self.report("DET001", node,
                        f"wall-clock call {name}() — simulated code "
                        f"must derive time from sim.now")
            return
        if name == "random.SystemRandom":
            self.report("DET002", node,
                        "random.SystemRandom is OS-entropy seeded and "
                        "never reproducible")
            return
        if name == "random.Random" and not node.args and not node.keywords:
            self.report("DET002", node,
                        "random.Random() without a seed hashes OS "
                        "entropy — pass an explicit seed")
            return
        mod, _, fn = name.rpartition(".")
        if mod == "random" and fn in _GLOBAL_RANDOM_FNS:
            self.report("DET002", node,
                        f"module-level random.{fn}() uses the shared "
                        f"global RNG — draw from a seeded "
                        f"random.Random instance")

    # -- PROTO001 / PROTO002 -------------------------------------------
    def _check_protocol(self, node: ast.Call, attr: str) -> None:
        topic_node: Optional[ast.AST] = None
        kind = None
        if attr in _RPC_TOPIC_ARG0 and node.args:
            topic_node, kind = node.args[0], "request"
        elif attr in _RPC_TOPIC_ARG1 and len(node.args) >= 2:
            topic_node, kind = node.args[1], "request"
        elif attr in _EVENT_EMIT and node.args:
            topic_node, kind = node.args[0], "emit"
        elif attr in _EVENT_MATCH and node.args:
            topic_node, kind = node.args[0], "match"
        if topic_node is None:
            return
        if kind == "request":
            self._check_request_topic(node, topic_node)
        else:
            self._check_event_topic(node, topic_node, kind)

    def _check_request_topic(self, node: ast.Call,
                             topic_node: ast.AST) -> None:
        literal = _const_str(topic_node)
        if literal is not None:
            head, _, method = literal.partition(".")
            method = method or "default"
            if head not in self.registry:
                self.report("PROTO001", node,
                            f"request topic {literal!r}: no module "
                            f"named {head!r} in the registry")
            elif method not in self.registry[head]:
                self.report("PROTO001", node,
                            f"request topic {literal!r}: module "
                            f"{head!r} has no req_{method} handler "
                            f"(runtime ENOSYS)")
            return
        if isinstance(topic_node, ast.JoinedStr):
            head, tail = _fstring_parts(topic_node)
            if head is not None and "." in head:
                # f"kvs.{x}" — the module half is literal.
                mod = head.split(".", 1)[0]
                if mod not in self.registry:
                    self.report("PROTO001", node,
                                f"request topic head {mod!r}: no such "
                                f"module in the registry")
                return
            if tail is not None and "." in tail:
                # f"{ns}.put" — the method half is literal; the head is
                # a dynamic (e.g. namespace-sharded) module name, so
                # only require the method to exist *somewhere*.
                method = tail.rsplit(".", 1)[1]
                if method and method not in self.all_methods:
                    self.report("PROTO001", node,
                                f"request method {method!r} (f-string "
                                f"tail) matches no req_ handler of any "
                                f"module")

    def _check_event_topic(self, node: ast.Call, topic_node: ast.AST,
                           kind: str) -> None:
        literal = _const_str(topic_node)
        if literal is not None:
            if kind == "emit":
                if literal not in self.event_topics:
                    self.report("PROTO002", node,
                                f"published event topic {literal!r} is "
                                f"not in cmb.modules.EVENT_TOPICS")
            else:
                # Subscriptions are prefix matches: the pattern must be
                # a prefix of at least one known topic or no message
                # will ever match it.
                if not any(t.startswith(literal)
                           for t in self.event_topics):
                    self.report("PROTO002", node,
                                f"subscription {literal!r} is a prefix "
                                f"of no known event topic — it can "
                                f"never match")
            return
        if isinstance(topic_node, ast.JoinedStr):
            head, tail = _fstring_parts(topic_node)
            if tail is not None and "." in tail and len(tail) > 1:
                suffix = tail[tail.index("."):]
                if not any(t.endswith(suffix) for t in self.event_topics):
                    self.report("PROTO002", node,
                                f"event topic tail {suffix!r} "
                                f"(f-string) matches no known event "
                                f"topic")

    # -- ERR001 --------------------------------------------------------
    def _check_errnum_kwargs(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg in ("code", "errnum"):
                lit = _const_str(kw.value)
                if lit is not None and lit not in self.error_codes:
                    self.report("ERR001", node,
                                f"errnum literal {lit!r} is not in "
                                f"cmb.errors.ERROR_CODES")

    def visit_Compare(self, node: ast.Compare) -> None:
        # x.code == "ENOSYS" / "ENOSYS" in (...) style comparisons.
        sides = [node.left, *node.comparators]
        attrs = {n.attr for n in sides if isinstance(n, ast.Attribute)}
        if attrs & {"code", "errnum"}:
            for side in sides:
                lit = _const_str(side)
                if lit is not None and lit not in self.error_codes:
                    self.report("ERR001", node,
                                f"errnum literal {lit!r} compared "
                                f"against .code/.errnum is not in "
                                f"ERROR_CODES")
        self.generic_visit(node)

    # -- EXC001 --------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report("EXC001", node,
                        "bare except: catches RpcError (and "
                        "KeyboardInterrupt) indiscriminately — name "
                        "the exception types")
        self.generic_visit(node)

    # -- DET003 --------------------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            return name in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    def _check_set_iter(self, iter_node: ast.AST) -> None:
        if self.det_core and self._is_set_expr(iter_node):
            self.report("DET003", iter_node,
                        "iterating an unordered set expression in the "
                        "deterministic core — wrap in sorted(...)",
                        severity="warning")

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_gens(self, gens) -> None:
        for gen in gens:
            self._check_set_iter(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_gens(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_gens(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_gens(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_gens(node.generators)
        self.generic_visit(node)


# -- noqa suppression --------------------------------------------------

def _suppressed_rules(line: str) -> Optional[frozenset]:
    """Rules suppressed on this physical line.

    Returns ``None`` for no noqa, an empty frozenset for a blanket
    ``# repro: noqa``, or the named rule set for
    ``# repro: noqa[DET001, EXC001]``.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    if m.group(1) is None:
        return frozenset()
    return frozenset(r.strip() for r in m.group(1).split(",") if r.strip())


def _apply_noqa(findings: list[Finding], source: str) -> list[Finding]:
    lines = source.splitlines()
    kept = []
    for f in findings:
        line = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        rules = _suppressed_rules(line)
        if rules is None:
            kept.append(f)
        elif rules and f.rule not in rules:
            kept.append(f)
        # blanket noqa or rule listed -> suppressed
    return kept


# -- entry points ------------------------------------------------------

def _infer_det_core(filename: str) -> bool:
    parts = filename.replace(os.sep, "/").split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1:]
    return bool(parts) and parts[0] in ("sim", "cmb", "kvs", "obs")


def lint_source(source: str, filename: str = "<string>", *,
                det_core: Optional[bool] = None,
                registry: Optional[dict] = None,
                event_topics: Optional[frozenset] = None,
                error_codes: Optional[frozenset] = None
                ) -> list[Finding]:
    """Lint one Python source string; returns surviving findings.

    ``det_core=None`` infers the DET003 scope from the path (files
    under ``repro/{sim,cmb,kvs,obs}``).  The registry/topic/errnum
    tables default to the live runtime tables and are overridable for
    fixture tests.
    """
    if det_core is None:
        det_core = _infer_det_core(filename)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding(rule="PARSE", severity="error",
                        message=f"syntax error: {exc.msg}",
                        file=filename, line=exc.lineno or 0,
                        col=(exc.offset or 0))]
    linter = _Linter(
        filename, det_core=det_core,
        registry=registry if registry is not None else request_registry(),
        event_topics=(event_topics if event_topics is not None
                      else EVENT_TOPICS),
        error_codes=(error_codes if error_codes is not None
                     else ERROR_CODES))
    linter.visit(tree)
    findings = _apply_noqa(linter.findings, source)
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted ``.py`` file list."""
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                out.extend(os.path.join(root, f)
                           for f in files if f.endswith(".py"))
        else:
            out.append(path)
    return sorted(out)


def lint_paths(paths: Sequence[str], **opts) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``."""
    findings: list[Finding] = []
    for fn in iter_python_files(paths):
        with open(fn, encoding="utf-8") as fh:
            findings.extend(lint_source(fh.read(), fn, **opts))
    return findings
