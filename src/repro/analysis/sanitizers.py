"""Runtime sanitizers: pure observers of a simulated run.

Where :mod:`repro.analysis.lint` checks the *source*, these check an
*execution*.  A :class:`SanitizerSet` hangs off the network
(``network.sanitizers``) and the comms session
(``session.sanitizers``); instrumented code notifies it at
protocol-visible points and each checker validates an invariant the
reproduction promises:

========  ==========================================================
Rule      Invariant
========  ==========================================================
SAN101    Per-link FIFO: the fabric (even under a chaos
          :class:`~repro.sim.faults.FaultPlan`) never reorders
          messages between the same ``(src, dst, port)``.
SAN102    Monotonic reads: ``kvs_get_version`` at one rank never
          observes a version older than a previous read there (and
          the applied root never regresses).
SAN103    Read-your-writes: after a commit/fence ack at a rank, no
          read there may see a version older than the ack's.
SAN104    Span-forest well-formedness: every trace has one root,
          parents resolve, spans close (via
          :meth:`~repro.obs.span.SpanTracer.validate`).
SAN105    Replay determinism: two runs of the same seeded scenario
          produce identical event streams (fingerprint diff).
========  ==========================================================

**Purity contract**: sanitizers schedule no simulation events, draw no
randomness, and never mutate payloads — enabling them cannot change a
run.  The tests assert sanitizer-on runs are event-identical to
sanitizer-off runs.
"""

from __future__ import annotations

import hashlib
import re
from typing import Any, Callable, Optional

from .findings import Finding

__all__ = ["SanitizerSet", "FifoLinkSanitizer", "KvsConsistencySanitizer",
           "SpanForestSanitizer", "EventFingerprint",
           "replay_fingerprint_hook", "diff_fingerprints"]


class FifoLinkSanitizer:
    """Checks that deliveries on each ``(src, dst, port)`` link arrive
    in send order.

    Every send is stamped with a global sequence number keyed by the
    payload's identity (the broker wraps each transmission in a fresh
    ``(plane, msg)`` tuple, so identities are unique per send; the
    payload is pinned in the map to keep ids stable).  Duplicate
    deliveries of the same send carry the same stamp, so chaos-mode
    duplication is FIFO-legal by definition; drops simply leave gaps.
    """

    def __init__(self, report: Callable[..., None]):
        self._report = report
        self._seq = 0
        # id(payload) -> (seq, payload): payload kept to pin the id.
        self._stamps: dict[int, tuple[int, Any]] = {}
        # link -> (last delivered seq, its delivery time)
        self._last: dict[tuple, tuple[int, float]] = {}
        self.checked = 0

    def on_send(self, src: int, dst: int, port: Any,
                payload: Any) -> None:
        self._seq += 1
        self._stamps[id(payload)] = (self._seq, payload)

    def on_deliver(self, src: int, dst: int, port: Any,
                   payload: Any) -> None:
        stamp = self._stamps.get(id(payload))
        if stamp is None:  # not seen at send time (direct inbox put)
            return
        seq = stamp[0]
        link = (src, dst, port)
        self.checked += 1
        last = self._last.get(link)
        if last is not None and seq < last[0]:
            self._report(
                "SAN101",
                f"FIFO violation on link {src}->{dst} port {port!r}: "
                f"send #{seq} delivered after send #{last[0]} "
                f"(delivered at t={last[1]:.9g})",
                rank=dst, link=f"{src}->{dst}", seq=seq,
                overtaken_by=last[0])
            return
        self._last[link] = (seq, self._now())

    def on_drop(self, src: int, dst: int, payload: Any) -> None:
        """Drops are FIFO-legal; nothing to check (hook kept for
        symmetry and subclass experiments)."""

    # patched in by SanitizerSet so reports carry sim time
    def _now(self) -> float:
        return 0.0


class KvsConsistencySanitizer:
    """Happens-before checker for the KVS consistency model.

    Tracks three per-``(namespace, rank)`` waterlines:

    - ``read floor`` — highest version a read returned there
      (monotonic reads, SAN102);
    - ``write floor`` — highest version acknowledged to a committer
      or released fence participant there (read-your-writes, SAN103);
    - ``applied`` — highest root version applied there (regression
      guard, reported as SAN102).

    The KVS module notifies at response time (``getversion`` /
    ``getroot`` / immediate ``waitversion``) and at commit/fence-ack
    time; each observation is checked against the floors, then raises
    them.
    """

    def __init__(self, report: Callable[..., None]):
        self._report = report
        self._read_floor: dict[tuple[str, int], int] = {}
        self._write_floor: dict[tuple[str, int], int] = {}
        self._applied: dict[tuple[str, int], int] = {}
        self.reads = 0
        self.acks = 0

    def kvs_read(self, ns: str, rank: int, version: int) -> None:
        key = (ns, rank)
        self.reads += 1
        wf = self._write_floor.get(key)
        rf = self._read_floor.get(key)
        if wf is not None and version < wf:
            self._report(
                "SAN103",
                f"read-your-writes violation: kvs {ns!r} rank {rank} "
                f"read version {version} after a commit/fence ack at "
                f"version {wf}",
                rank=rank, ns=ns, version=version, floor=wf)
        elif rf is not None and version < rf:
            self._report(
                "SAN102",
                f"monotonic-reads violation: kvs {ns!r} rank {rank} "
                f"read version {version} after reading {rf}",
                rank=rank, ns=ns, version=version, floor=rf)
        if rf is None or version > rf:
            self._read_floor[key] = version

    def kvs_commit_ack(self, ns: str, rank: int, version: int) -> None:
        key = (ns, rank)
        self.acks += 1
        if version > self._write_floor.get(key, -1):
            self._write_floor[key] = version

    def kvs_root_applied(self, ns: str, rank: int, version: int) -> None:
        key = (ns, rank)
        prev = self._applied.get(key)
        if prev is not None and version < prev:
            self._report(
                "SAN102",
                f"root regression: kvs {ns!r} rank {rank} applied "
                f"version {version} after {prev}",
                rank=rank, ns=ns, version=version, floor=prev)
        if prev is None or version > prev:
            self._applied[key] = version


class SpanForestSanitizer:
    """End-of-run structural check of the causal span forest.

    Delegates to :meth:`repro.obs.span.SpanTracer.validate` — one root
    per trace, parents resolve, spans closed — and converts each
    problem string into a SAN104 finding.
    """

    def __init__(self, report: Callable[..., None]):
        self._report = report
        self.tracer = None

    def attach(self, tracer) -> None:
        self.tracer = tracer

    def finish(self) -> None:
        if self.tracer is None:
            return
        self.tracer.close_open()
        for problem in self.tracer.validate():
            self._report("SAN104", f"malformed span forest: {problem}")


#: Session port keys (``cmb<N>``) come from a process-global counter
#: (:data:`repro.cmb.session._session_counter`), so the *names* of
#: inbox-channel events differ between two runs in the same process
#: even when the runs are identical.  Normalize them out of the
#: fingerprint; everything else about an event name is run-local.
_PORT_KEY_RE = re.compile(r"\bcmb\d+\b")


class EventFingerprint:
    """Rolling SHA1 of a run's processed-event stream.

    Install on a kernel via :func:`replay_fingerprint_hook`; the
    kernel calls it once per processed event with ``(t, priority,
    event)``.  ``keep_records=True`` (default) additionally retains
    the ``(t, priority, name)`` triples so two divergent runs can
    report the *first* differing event, not just digest inequality.
    """

    __slots__ = ("count", "_h", "records")

    def __init__(self, keep_records: bool = True):
        self.count = 0
        self._h = hashlib.sha1()
        self.records: Optional[list[tuple[float, int, str]]] = (
            [] if keep_records else None)

    def __call__(self, t: float, priority: int, ev: Any) -> None:
        name = getattr(ev, "name", "")
        if "cmb" in name:
            name = _PORT_KEY_RE.sub("cmb*", name)
        self.count += 1
        self._h.update(f"{t!r}|{priority}|{name}\n".encode())
        if self.records is not None:
            self.records.append((t, priority, name))

    def digest(self) -> str:
        return self._h.hexdigest()


def replay_fingerprint_hook(sim, keep_records: bool = True
                            ) -> EventFingerprint:
    """Attach an :class:`EventFingerprint` to ``sim.event_hook``."""
    fp = EventFingerprint(keep_records)
    sim.event_hook = fp
    return fp


def diff_fingerprints(first: EventFingerprint, second: EventFingerprint,
                      label: str = "replay") -> list[Finding]:
    """SAN105 findings describing how two same-seed runs diverged.

    Empty when the event streams are identical.  With records kept,
    pinpoints the first divergent event (simulated-time provenance);
    otherwise reports the digest/count mismatch alone.
    """
    if first.digest() == second.digest():
        return []
    findings = []
    if first.records is not None and second.records is not None:
        n = min(len(first.records), len(second.records))
        idx = next((i for i in range(n)
                    if first.records[i] != second.records[i]), n)
        a = first.records[idx] if idx < len(first.records) else None
        b = second.records[idx] if idx < len(second.records) else None
        findings.append(Finding(
            rule="SAN105", severity="error",
            message=(f"{label}: event streams diverge at event #{idx}: "
                     f"run1={a!r} run2={b!r}"),
            t=(a or b)[0] if (a or b) else None,
            extra={"index": idx,
                   "counts": [len(first.records), len(second.records)]}))
    else:
        findings.append(Finding(
            rule="SAN105", severity="error",
            message=(f"{label}: event-stream fingerprints differ "
                     f"({first.digest()[:12]} vs {second.digest()[:12]}, "
                     f"{first.count} vs {second.count} events)"),
            extra={"counts": [first.count, second.count]}))
    return findings


class SanitizerSet:
    """The hook hub instrumented code notifies.

    One instance aggregates every checker's findings with simulated-
    time provenance.  Attach with
    :meth:`repro.cmb.session.CommsSession.enable_sanitizers` (which
    also installs it on the network) or by setting
    ``network.sanitizers`` / ``session.sanitizers`` directly.
    """

    def __init__(self, now_fn: Optional[Callable[[], float]] = None):
        self._now = now_fn if now_fn is not None else (lambda: 0.0)
        self.findings: list[Finding] = []
        self.fifo = FifoLinkSanitizer(self._record)
        self.fifo._now = self._now
        self.kvs = KvsConsistencySanitizer(self._record)
        self.span = SpanForestSanitizer(self._record)
        self._finished = False

    def _record(self, rule: str, message: str, *, rank: int = -1,
                severity: str = "error", **extra: Any) -> None:
        self.findings.append(Finding(
            rule=rule, severity=severity, message=message,
            t=self._now(), rank=rank, extra=extra))

    # -- network hooks (called by repro.sim.network.Network) -----------
    def on_send(self, src: int, dst: int, port: Any,
                payload: Any) -> None:
        self.fifo.on_send(src, dst, port, payload)

    def on_deliver(self, src: int, dst: int, port: Any,
                   payload: Any) -> None:
        self.fifo.on_deliver(src, dst, port, payload)

    def on_drop(self, src: int, dst: int, payload: Any) -> None:
        self.fifo.on_drop(src, dst, payload)

    # -- KVS hooks (called by repro.kvs.module.KvsModule) --------------
    def kvs_read(self, ns: str, rank: int, version: int) -> None:
        self.kvs.kvs_read(ns, rank, version)

    def kvs_commit_ack(self, ns: str, rank: int, version: int) -> None:
        self.kvs.kvs_commit_ack(ns, rank, version)

    def kvs_root_applied(self, ns: str, rank: int,
                         version: int) -> None:
        self.kvs.kvs_root_applied(ns, rank, version)

    # -- lifecycle -----------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Opt the span-forest checker in (needs tracing enabled)."""
        self.span.attach(tracer)

    def finish(self) -> list[Finding]:
        """Run end-of-run checks; returns all findings accumulated.

        Idempotent — safe to call from both the harness and tests.
        """
        if not self._finished:
            self._finished = True
            self.span.finish()
        return self.findings

    def stats(self) -> dict[str, int]:
        """Observer workload counters (for smoke-test sanity)."""
        return {"fifo_checked": self.fifo.checked,
                "kvs_reads": self.kvs.reads,
                "kvs_acks": self.kvs.acks,
                "findings": len(self.findings)}
