"""The Comms Message Broker framework (paper Section IV-A).

Multi-part messages (:mod:`.message`), overlay topologies
(:mod:`.topology`), the broker daemon (:mod:`.broker`), session wiring
(:mod:`.session`), the client handle (:mod:`.api`), the comms-module
plugin base (:mod:`.module`), the Table I service plugins
(:mod:`.modules`) and the PMI bootstrap library (:mod:`.pmi`).
"""

from .api import Handle, RpcError
from .broker import Broker
from .errors import (EEXIST, EHOSTUNREACH, EINVAL, ENOENT, ENOSYS, EOVERFLOW,
                     EPROTO, ERROR_CODES, ETIMEDOUT)
from .message import (HEADER_BYTES, Message, MessageType, RequestContext,
                      split_topic)
from .module import CommsModule, NoHandlerError, request_handler
from .pmi import PmiClient
from .session import CommsSession, ModuleSpec
from .topology import RingTopology, TreeTopology, flat_topology

__all__ = [
    "Handle", "RpcError", "Broker", "HEADER_BYTES", "Message",
    "MessageType", "RequestContext", "split_topic", "CommsModule",
    "NoHandlerError", "request_handler", "PmiClient", "CommsSession",
    "ModuleSpec", "RingTopology", "TreeTopology", "flat_topology",
    "ERROR_CODES", "ENOSYS", "ENOENT", "EEXIST", "EINVAL", "EOVERFLOW",
    "ETIMEDOUT", "EHOSTUNREACH", "EPROTO",
]
