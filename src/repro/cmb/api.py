"""Client-side access to the CMB — the ``flux_open`` equivalent.

External (simulated) programs never touch broker internals; they hold a
:class:`Handle` connected to the broker on their node, mirroring the
paper's UNIX-domain-socket transport: every request and response pays
an IPC hop, and subscribed events arrive with the same local delay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..sim.kernel import Event
from .broker import _Source
from .errors import ETIMEDOUT, RpcError
from .message import Message, MessageType, RequestContext

if TYPE_CHECKING:  # pragma: no cover
    from .session import CommsSession

__all__ = ["Handle", "RpcError"]


class Handle:
    """A client connection to the local CMB broker.

    Created via :meth:`repro.cmb.session.CommsSession.connect`.  All
    methods are non-blocking: they return
    :class:`~repro.sim.kernel.Event` objects that a simulated process
    waits on with ``yield``.
    """

    def __init__(self, session: "CommsSession", rank: int):
        self.session = session
        self.rank = rank
        self.broker = session.brokers[rank]
        self.sim = session.sim
        # Per-session ids keep payload encodings (and therefore message
        # sizes and simulated latencies) independent of how many other
        # sessions this Python process has created: runs stay
        # bit-deterministic.
        self.client_id = session._next_client_id
        session._next_client_id += 1
        self._waiters: dict[int, Event] = {}
        self._subs: list[tuple[str, Callable[[Message], None]]] = []
        #: RPC attempts re-issued after a retryable failure (chaos
        #: observability: client-side retry amplification).
        self.retries = 0

    # ------------------------------------------------------------------
    # request / response
    # ------------------------------------------------------------------
    def rpc(self, topic: str, payload: Optional[dict] = None,
            timeout: Optional[float] = None,
            deadline: Optional[float] = None,
            retries: int = 0, retry_backoff: float = 1e-3) -> Event:
        """Issue an RPC; the returned event fires with the response
        payload, or fails with :class:`RpcError` on an error response.

        ``timeout`` (simulated seconds) bounds the wait: a response
        lost to a node failure otherwise hangs the caller forever.  On
        expiry the event fails with ``RpcError(code="ETIMEDOUT")``; the
        stale response, if it ever arrives, is dropped.  The deadline
        (``now + timeout``, or an explicit absolute ``deadline``) also
        rides the request's header-frame context, so brokers drop the
        request at the first forward hop past it instead of letting a
        doomed request keep consuming the fabric.

        ``retries`` re-issues the request after a *retryable* failure
        (:attr:`RpcError.retryable`: timeout, unreachable hop, data
        lost in transit), sleeping an exponentially growing, jittered
        backoff between attempts.  Every attempt reuses the original
        ``msgid``/``reqid``, so broker-side idempotent replay absorbs
        the duplicate if the first attempt actually got through: at
        most one execution is observed.  Definitive service errors
        (``ENOENT``, ``EINVAL``, ...) are never retried.  An explicit
        absolute ``deadline`` bounds the whole retry loop; a relative
        ``timeout`` bounds each attempt.
        """
        if retries <= 0:
            ev = self.sim.event(name=("client-rpc:%s", topic))
            if deadline is None and timeout is not None:
                deadline = self.sim.now + timeout
            msg = Message(topic=topic, payload=payload or {},
                          src_rank=self.rank)
            msg.ensure_context(origin_rank=self.rank, deadline=deadline)
            if self.session.span_tracer is not None:
                # Guarded here, not in _trace_root, so the tracing-off
                # fast path never even formats the span name.
                self._trace_root(f"rpc:{topic}", msg, ev)
            self._waiters[msg.msgid] = ev
            self._ipc_deliver(msg)
            if timeout is not None:
                self._arm_timeout(msg.msgid, ev, topic, timeout)
            return ev
        return self._rpc_with_retries(topic, payload or {}, timeout,
                                      deadline, retries, retry_backoff)

    def _trace_root(self, name: str, msg: Message, ev: Event):
        """Open the root span of a new trace for one client call,
        attach its context to ``msg``, and close it when ``ev``
        resolves (success, error, or timeout).  Returns the span
        (``None`` when tracing is off)."""
        tr = self.session.span_tracer
        if tr is None:
            return None
        root = tr.start_trace(name, self.rank, client=self.client_id)
        msg.span = (root.trace_id, root.span_id)

        def close(done_ev: Event) -> None:
            exc = done_ev._exc
            if exc is not None:
                tr.finish(root, error=getattr(exc, "code", None)
                          or type(exc).__name__)
            else:
                tr.finish(root)

        ev.add_callback(close)
        return root

    def _rpc_with_retries(self, topic: str, payload: dict,
                          timeout: Optional[float],
                          deadline: Optional[float], retries: int,
                          retry_backoff: float) -> Event:
        ev = self.sim.event(name=("client-rpc:%s", topic))
        msg0 = Message(topic=topic, payload=payload, src_rank=self.rank)
        tr = self.session.span_tracer
        root = self._trace_root(f"rpc:{topic}", msg0, ev)
        attempt_no = 0

        def attempt() -> None:
            if ev.triggered:
                return
            att_deadline = deadline
            if att_deadline is None and timeout is not None:
                att_deadline = self.sim.now + timeout
            # Same msgid (hence same reqid) on every attempt: the
            # broker's replay cache keys on it, making retries
            # idempotent end to end.  Only the deadline is refreshed.
            msg = msg0.copy()
            msg.ctx = RequestContext(reqid=msg0.msgid,
                                     origin_rank=self.rank,
                                     deadline=att_deadline)
            inner = self.sim.event(name=("client-rpc-try:%s", topic))
            if root is not None:
                # One child span per attempt under the logical call's
                # root, so retries are visible in the trace tree.
                aspan = tr.start_span((root.trace_id, root.span_id),
                                      f"attempt:{topic}", "client",
                                      self.rank, attempt=attempt_no)
                msg.span = (aspan.trace_id, aspan.span_id)
                inner.add_callback(
                    lambda done_ev, s=aspan: tr.finish(
                        s, **({"error": getattr(done_ev._exc, "code",
                                                None)
                               or type(done_ev._exc).__name__}
                              if done_ev._exc is not None else {})))
            self._waiters[msg.msgid] = inner
            self._ipc_deliver(msg)
            if timeout is not None:
                self._arm_timeout(msg.msgid, inner, topic, timeout,
                                  terminal=False)
            inner.add_callback(done)

        def done(inner: Event) -> None:
            nonlocal attempt_no
            if ev.triggered:
                return
            exc = inner._exc
            if exc is None:
                ev.succeed(inner._value)
                return
            out_of_time = (deadline is not None
                           and self.sim.now >= deadline)
            if (not isinstance(exc, RpcError) or not exc.retryable
                    or attempt_no >= retries or out_of_time):
                self.session.note_terminal_error(
                    topic, getattr(exc, "code", None)
                    or type(exc).__name__, self.rank, str(exc))
                ev.fail(exc)
                return
            # Exponential backoff with jitter: decorrelates the retry
            # storms of many clients hammering the same healed route.
            backoff = (retry_backoff * (2 ** attempt_no)
                       * (0.5 + self.sim.rng.random()))
            attempt_no += 1
            self.retries += 1
            if root is not None:
                tr.instant((root.trace_id, root.span_id),
                           f"retry:{topic}", "retry", self.rank,
                           attempt=attempt_no, backoff=backoff)
            t = self.sim.timeout(backoff)
            t.add_callback(lambda _e: attempt())

        attempt()
        return ev

    def _arm_timeout(self, msgid: int, ev: Event, topic: str,
                     timeout: float, terminal: bool = True) -> None:
        timer = self.sim.timeout(timeout)

        def expire(_e) -> None:
            if ev.triggered:
                return
            self._waiters.pop(msgid, None)
            if terminal:
                # Per-attempt timeouts under a retry loop are noted by
                # the retry driver only once they become unrecoverable.
                self.session.note_terminal_error(
                    topic, ETIMEDOUT, self.rank,
                    f"timeout after {timeout:g}s")
            ev.fail(RpcError(topic, f"timeout after {timeout:g}s",
                             code=ETIMEDOUT, rank=self.rank))

        timer.add_callback(expire)
        # Cancel the timer when the response wins the race.
        ev.add_callback(lambda _e: timer.abandon()
                        if not timer.processed else None)

    def rpc_rank(self, dst_rank: int, topic: str,
                 payload: Optional[dict] = None,
                 timeout: Optional[float] = None) -> Event:
        """Rank-addressed RPC routed over the ring overlay."""
        ev = self.sim.event(name=("client-ring:%s@%d", topic, dst_rank))
        msg = Message(topic=topic, mtype=MessageType.RING,
                      payload=payload or {}, src_rank=self.rank,
                      dst_rank=dst_rank)
        msg.ensure_context(
            origin_rank=self.rank,
            deadline=self.sim.now + timeout if timeout is not None else None)
        self._trace_root(f"ring:{topic}", msg, ev)
        self._waiters[msg.msgid] = ev
        delay = self._ipc_delay(msg.size())
        t = self.sim.timeout(delay)
        t.add_callback(lambda _e: self._inject_ring(msg))
        if timeout is not None:
            self._arm_timeout(msg.msgid, ev, topic, timeout)
        return ev

    def publish(self, topic: str, payload: Optional[dict] = None) -> None:
        """Publish an event session-wide (pays the IPC hop first)."""
        tr = self.session.span_tracer
        span = None
        if tr is not None:
            root = tr.start_trace(f"publish:{topic}", self.rank,
                                  client=self.client_id)
            span = (root.trace_id, root.span_id)
            tr.finish(root)  # fire-and-forget: deliveries are children
        delay = self._ipc_delay(
            Message(topic=topic, payload=payload or {}).size())
        t = self.sim.timeout(delay)
        t.add_callback(
            lambda _e: self.broker.publish(topic, payload or {},
                                           span=span))

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def subscribe(self, prefix: str,
                  fn: Callable[[Message], None]) -> None:
        """Deliver matching events to ``fn`` after the local IPC delay."""
        def relay(msg: Message) -> None:
            t = self.sim.timeout(self._ipc_delay(msg.size()))
            t.add_callback(lambda _e: fn(msg))
        self.broker.subscribe(prefix, relay)
        self._subs.append((prefix, relay))

    def wait_event(self, prefix: str) -> Event:
        """Event firing with the next published message under ``prefix``."""
        ev = self.sim.event(name=("wait-event:%s", prefix))

        def once(msg: Message) -> None:
            if not ev.triggered:
                self.broker.unsubscribe(prefix, relay)
                ev.succeed(msg)

        def relay(msg: Message) -> None:
            t = self.sim.timeout(self._ipc_delay(msg.size()))
            t.add_callback(lambda _e: once(msg))

        self.broker.subscribe(prefix, relay)
        return ev

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self, name: str, nprocs: int) -> Event:
        """Enter the named collective barrier of ``nprocs`` participants;
        fires when every participant has entered."""
        return self.rpc("barrier.enter", {"name": name, "nprocs": nprocs})

    def close(self) -> None:
        """Disconnect: drop subscriptions and the collective registration."""
        for prefix, relay in self._subs:
            try:
                self.broker.unsubscribe(prefix, relay)
            except ValueError:
                pass
        self._subs.clear()
        self.session.disconnect(self)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _ipc_delay(self, size: int) -> float:
        p = self.session.network.params
        return p.ipc_latency + size / p.ipc_bandwidth + p.per_message_overhead

    def _ipc_deliver(self, msg: Message) -> None:
        t = self.sim.timeout(self._ipc_delay(msg.size()))
        # Fresh timeout: assign the first-callback slot directly.
        t._cb1 = (lambda _e: self.broker._route_request(
            msg, _Source("client", self)))

    def _inject_ring(self, msg: Message) -> None:
        if msg.dst_rank == self.rank:
            self.broker._route_request(msg, _Source("client", self))
        else:
            nxt = self.session.ring.next_rank(self.rank)
            self.broker._register_pending(_Source("client", self), msg,
                                          "ring", nxt, "ring")
            self.broker._send(nxt, "ring", msg)

    def _deliver_response(self, resp: Message) -> None:
        """Called by the broker; pays the IPC hop, then wakes the waiter."""
        ev = self._waiters.pop(resp.msgid, None)
        if ev is None or ev.triggered:
            return
        t = self.sim.timeout(self._ipc_delay(resp.size()))

        def finish(_e) -> None:
            if ev.triggered:
                return
            if resp.error is not None:
                ev.fail(RpcError(resp.topic, resp.error,
                                 code=resp.errnum, rank=resp.err_rank))
            else:
                ev.succeed(resp.payload)

        t._cb1 = finish

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Handle client={self.client_id} rank={self.rank}>"
