"""The Comms Message Broker (CMB) daemon.

One :class:`Broker` runs on every node of a comms session, wired into
three overlay planes exactly as in the paper:

- **tree plane** — request/response RPCs.  Requests route *upstream*
  toward the root until they hit the first broker with a matching
  comms module loaded; responses retrace the same hops in reverse.
  Module instances along the path may intercept and aggregate
  (reduce) requests instead of forwarding them verbatim.
- **event plane** — pub-sub.  A publish travels up to the root, which
  floods it down the tree; FIFO links give every broker the same
  total event order, which the KVS root-version protocol relies on.
- **ring plane** — rank-addressed RPCs forwarded around a ring
  "without routing tables", used by debugging tools.

External programs talk to their local broker over an IPC hop via
:class:`~repro.cmb.api.Handle`, mirroring the paper's UNIX-domain
socket client transport.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..obs import DEFAULT_SIZE_LADDER, FlightRecorder, MetricsRegistry
from ..sim.kernel import Event, Simulation, Timeout
from .errors import (EHOSTUNREACH, ENOSYS, ETIMEDOUT, RETRYABLE_CODES,
                     RpcError)
from .message import (HEADER_BYTES, Message, MessageType, RequestContext,
                      _split_cache, split_topic)
from .module import CommsModule, NoHandlerError

if TYPE_CHECKING:  # pragma: no cover
    from .session import CommsSession

__all__ = ["Broker", "RpcError"]

# Planes (tags on fabric payloads so a broker knows how a message got in).
PLANE_TREE = "tree"
PLANE_EVENT_UP = "event_up"
PLANE_EVENT_DOWN = "event_down"
PLANE_RING = "ring"
PLANE_TREE_RANK = "tree_rank"  # rank-addressed over the tree (extension)
# Pseudo-planes for the message-count breakdown: local IPC deliveries to
# clients and in-broker deliveries (module/callback/event sources).
PLANE_IPC = "ipc"
PLANE_LOCAL = "local"

#: Enum -> wire-kind string, precomputed: ``Enum.value`` is a
#: DynamicClassAttribute lookup, too slow for the per-message tally.
_MTYPE_KIND = {t: t.value for t in MessageType}

#: Flight-recorder salient-key extractors for event deliveries: which
#: payload field(s) the post-mortem doctor needs to reconstruct the
#: entity timeline that topic belongs to.  Topics without an entry are
#: recorded with a ``None`` payload slot (the topic itself is enough).
_EVENT_SALIENT = {
    "hb.pulse": lambda p: p.get("epoch"),
    "live.down": lambda p: p.get("rank"),
    "live.reattach": lambda p: p.get("rank"),
    "kvs.setroot": lambda p: (p.get("version"), p.get("fence")),
    "kvs.newmaster": lambda p: (p.get("rank"), p.get("version")),
    "kvs.delegation": lambda p: (p.get("prefix"), p.get("owner")),
    "wexec.start": lambda p: p.get("jobid"),
    "wexec.done": lambda p: (p.get("jobid"), p.get("status")),
    "wexec.respawn": lambda p: (p.get("jobid"), p.get("epoch")),
    "wexec.lost": lambda p: p.get("jobid"),
    "job.state": lambda p: (p.get("jobid"), p.get("state")),
    "health.update": lambda p: (p.get("state"), p.get("epoch")),
}


class _Source:
    """Where a request came from, i.e. where its response must go.

    kind is one of ``child`` (downstream broker rank), ``client``
    (local Handle), ``local`` (an Event a local caller waits on), or
    ``callback`` (module-supplied function).
    """

    __slots__ = ("kind", "target")

    def __init__(self, kind: str, target: Any):
        self.kind = kind
        self.target = target


class _Pending:
    """One forwarded request awaiting its response.

    Remembers everything needed to act on the request while it is in
    flight: the message itself (for retransmission and peer-down
    re-routing), the plane and next hop it left on, and how the next
    hop is chosen when the route must be recomputed (``hop_kind``):

    - ``parent`` — follows the broker's *live* parent pointer, so the
      request heals with the overlay;
    - ``treerank`` — recomputed via the static-topology routing table;
    - ``ring`` — the static ring successor;
    - ``fixed`` — pinned to the original peer (direct neighbour RPCs).
    """

    __slots__ = ("source", "msg", "plane", "hop", "hop_kind", "attempts",
                 "timer", "span")

    def __init__(self, source: _Source, msg: Message, plane: str,
                 hop: int, hop_kind: str):
        self.source = source
        self.msg = msg
        self.plane = plane
        self.hop = hop
        self.hop_kind = hop_kind
        self.attempts = 0
        self.timer: Optional[Timeout] = None
        self.span = None  # forwarding span, closed when the reply lands


class Broker:
    """One CMB daemon instance: routing, module hosting, client service."""

    def __init__(self, session: "CommsSession", rank: int):
        self.session = session
        self.rank = rank
        self.sim: Simulation = session.sim
        self.network = session.network
        self.node_id = session.node_of_rank(rank)
        # Live wiring (mutable for self-healing).
        self.parent: Optional[int] = session.parent_map[rank]
        self.children: list[int] = [
            r for r, p in session.parent_map.items() if p == rank]
        self.modules: dict[str, CommsModule] = {}
        self._pending: dict[int, _Pending] = {}
        # Idempotent-replay state (tentpole of the chaos work): per
        # module, a bounded LRU of recently answered requests keyed by
        # (ctx.reqid, msgid, topic) -> the response fields; duplicates
        # of an answered request replay the cached response instead of
        # re-executing the handler.  Duplicates of a *still unanswered*
        # request park in ``_inflight`` and are answered alongside the
        # original.  Keys include the msgid because a module chain may
        # issue several sub-requests under one logical reqid (e.g. the
        # kvs.load fan-out of a single get).
        self._replay: dict[str, OrderedDict] = {}
        self._inflight: dict[tuple, list[Message]] = {}
        self.replay_cap = 256
        self._subs: list[tuple[str, Callable[[Message], None]]] = []
        # Frozen snapshot iterated by _deliver_event (the hot event
        # path); rebuilt on (un)subscribe so delivery needn't copy the
        # list per event just to guard against mutation mid-iteration.
        self._subs_snapshot: tuple = ()
        self._inbox = session.network.open_port(
            self.node_id, session.port_key)
        self._proc = None
        self.alive = True
        # Observability: every broker-level stat lives in a per-broker
        # MetricsRegistry so the `stats` comms module can snapshot and
        # tree-merge it.  The legacy int attributes (requests_handled,
        # retransmits, ...) remain readable via properties below, and
        # `msg_counts` stays a plain dict (the registry's CounterVec
        # cell store) so the hot per-send path is one dict update.
        reg = self.registry = MetricsRegistry(rank=rank)
        self._c_requests = reg.counter("broker_requests_handled_total")
        self._c_events = reg.counter("broker_events_seen_total")
        #: Chaos/recovery counters: broker-level retransmissions of
        #: pending requests, requests re-routed around a dead hop,
        #: cached-response replays served, and duplicates parked behind
        #: an in-flight original.
        self._c_retransmits = reg.counter("broker_retransmits_total")
        self._c_reroutes = reg.counter("broker_reroutes_total")
        self._c_replay_hits = reg.counter("broker_replay_hits_total")
        self._c_dups_parked = reg.counter("broker_dups_parked_total")
        #: Per-(module, plane, kind) message counters; ``kind`` is
        #: ``request``/``response``/``error``/``event``/``ring``.  Each
        #: forwarding hop counts once, giving the per-hop accounting the
        #: benchmarks aggregate via ``CommsSession.message_counts()``.
        self.msg_counts: dict[tuple[str, str, str], int] = reg.counter_vec(
            "cmb_messages_total", ("module", "plane", "kind")).data
        #: Inbox backlog observed at each dispatch (per-hop queue depth).
        self._h_inbox = reg.histogram("broker_inbox_depth",
                                      bounds=DEFAULT_SIZE_LADDER)
        #: Service-time histograms keyed by topic (lazy; labels are
        #: (module, method) in the registry).
        self._svc_hist: dict[str, Any] = {}
        #: Always-on flight recorder (black box): a bounded ring of
        #: compact structured records of what this broker recently did.
        #: Pure observer — appends never schedule events or draw
        #: randomness, so it cannot perturb the event stream.
        self.flight = FlightRecorder(session.flight_capacity)
        self._frec = self.flight.rec
        #: Per-plane payload-byte attribution (tree vs event vs ring),
        #: feeding the ROADMAP fence-payload investigation via
        #: ``CommsSession.plane_bytes()`` and ``bench_simperf``.
        self.plane_bytes: dict[str, int] = {}
        #: Peak inbox depth since last health-plane sample (the health
        #: module reads and resets this; one compare on the hot path).
        self.inbox_peak = 0

    # -- int-compat views over the registry counters -----------------------
    @property
    def requests_handled(self) -> int:
        return self._c_requests.value

    @property
    def events_seen(self) -> int:
        return self._c_events.value

    @property
    def retransmits(self) -> int:
        return self._c_retransmits.value

    @property
    def reroutes(self) -> int:
        return self._c_reroutes.value

    @property
    def replay_hits(self) -> int:
        return self._c_replay_hits.value

    @property
    def dups_parked(self) -> int:
        return self._c_dups_parked.value

    @property
    def span_tracer(self):
        """The session's span tracer (``None`` = tracing off)."""
        return self.session.span_tracer

    def metrics_snapshot(self) -> dict:
        """Snapshot this broker's metrics registry, after giving every
        loaded module the chance to sync its internal counters in."""
        for mod in list(self.modules.values()):
            mod.sync_metrics()
        return self.registry.snapshot()

    def pending_census(self) -> list:
        """JSON-able census of in-flight forwarded requests — what this
        broker is still waiting on (post-mortem bundles; health plane
        reads only the count)."""
        out = []
        for msgid, entry in sorted(self._pending.items()):
            ctx = entry.msg.ctx
            out.append({
                "msgid": msgid,
                "topic": entry.msg.topic,
                "plane": entry.plane,
                "hop": entry.hop,
                "hop_kind": entry.hop_kind,
                "attempts": entry.attempts,
                "timer_armed": entry.timer is not None,
                "reqid": ctx.reqid if ctx is not None else None,
                "deadline": ctx.deadline if ctx is not None else None,
            })
        return out

    def _observe_service(self, topic: str, dt: float) -> None:
        """Record one RPC service time into the (module, method)
        histogram (covers queueing/holding inside the module too)."""
        h = self._svc_hist.get(topic)
        if h is None:
            mod, method = split_topic(topic)
            h = self._svc_hist[topic] = self.registry.histogram(
                "rpc_service_seconds", module=mod, method=method)
        h.observe(dt)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def load_module(self, module: CommsModule) -> None:
        """Install a comms module into this broker's address space."""
        if module.name in self.modules:
            raise ValueError(f"module {module.name!r} already loaded "
                             f"at rank {self.rank}")
        self.modules[module.name] = module

    def unload_module(self, name: str) -> CommsModule:
        """Remove a module (supports the paper's live-reconfiguration)."""
        mod = self.modules.pop(name)
        mod.shutdown()
        return mod

    def start(self) -> None:
        """Begin consuming the node inbox and start loaded modules."""
        self._proc = self.sim.spawn(self._main_loop(),
                                    name=f"broker[{self.rank}]")
        for mod in list(self.modules.values()):
            mod.start()

    def stop(self) -> None:
        """Stop the broker (used for failure injection / teardown)."""
        self.alive = False
        for mod in list(self.modules.values()):
            mod.shutdown()
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("broker stop")
        self.network.close_port(self.node_id, self.session.port_key)

    def _main_loop(self):
        while True:
            item = yield self._inbox.get()
            plane, msg = item
            depth = len(self._inbox._items)
            self._h_inbox.observe(float(depth))
            if depth > self.inbox_peak:
                self.inbox_peak = depth
            if not self.alive:
                # A failed broker silently eats traffic (the network
                # already drops fabric messages to it; this covers the
                # loopback/IPC path) but keeps its loop parked so a
                # later revive_rank() can bring it back.
                continue
            self._dispatch(plane, msg)

    # ------------------------------------------------------------------
    # plane-level sends
    # ------------------------------------------------------------------
    def _count(self, plane: str, msg: Message) -> None:
        """Tally one message for the per-module/per-plane breakdown."""
        if msg.mtype is MessageType.RESPONSE:
            kind = "error" if msg.error is not None else "response"
        else:
            kind = _MTYPE_KIND[msg.mtype]
        counts = self.msg_counts
        st = _split_cache.get(msg.topic) or split_topic(msg.topic)
        key = (st[0], plane, kind)
        counts[key] = counts.get(key, 0) + 1

    def _send(self, peer_rank: int, plane: str, msg: Message) -> None:
        msg.hops += 1
        self._count(plane, msg)
        size = msg.size()
        pb = self.plane_bytes
        pb[plane] = pb.get(plane, 0) + size
        self._frec(self.sim.now, "send", plane, msg.topic, peer_rank)
        self.network.send(self.node_id, self.session.node_of_rank(peer_rank),
                          (plane, msg), size,
                          port=self.session.port_key)

    def _expired(self, msg: Message) -> bool:
        """True when the request's deadline passed (checked per hop)."""
        ctx = msg.ctx
        return ctx is not None and ctx.expired(self.sim.now)

    def _expiry_response(self, msg: Message) -> Message:
        return msg.make_response(
            error=(f"deadline expired in transit at rank {self.rank} "
                   f"(t={self.sim.now:g})"),
            errnum=ETIMEDOUT, err_rank=self.rank)

    # ------------------------------------------------------------------
    # inbound dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, plane: str, msg: Message) -> None:
        if plane == PLANE_RING:
            self._dispatch_ring(msg)
        elif plane == PLANE_TREE_RANK:
            self._dispatch_tree_rank(msg)
        elif plane in (PLANE_EVENT_UP, PLANE_EVENT_DOWN):
            self._dispatch_event(plane, msg)
        elif msg.mtype == MessageType.RESPONSE:
            self._dispatch_response(msg)
        else:
            self._route_request(msg, _Source("child", msg.src_rank))

    # -- request path ---------------------------------------------------
    def _dedup_key(self, msg: Message) -> Optional[tuple]:
        """Idempotency key of a context-carrying request: the logical
        request id plus the msgid (stable across every retransmission,
        re-route and client retry of the same message, distinct across
        the sub-requests a module chain issues under one reqid)."""
        if msg.ctx is None:
            return None
        return (msg.ctx.reqid, msg.msgid, msg.topic)

    def _route_request(self, msg: Message, source: _Source) -> None:
        """Deliver to a local module or forward upstream (paper: requests
        are routed upstream to the first matching comms module)."""
        st = _split_cache.get(msg.topic) or split_topic(msg.topic)
        mod = self.modules.get(st[0])
        if mod is not None:
            key = self._dedup_key(msg)
            if key is not None and self._absorb_duplicate(mod.name, key,
                                                          msg, source):
                return
            self._c_requests.value += 1
            self._count(PLANE_LOCAL, msg)
            ctx = msg.ctx
            now = self.sim.now
            self._frec(now, "dispatch", msg.topic,
                       ctx.reqid if ctx is not None else None, source.kind)
            msg._source = source  # type: ignore[attr-defined]
            msg._broker = self    # type: ignore[attr-defined]
            msg._obs_t0 = now     # type: ignore[attr-defined]
            if (msg.span is not None
                    and (tr := self.session.span_tracer) is not None):
                # Open the dispatch span and re-point the message's
                # span context at it, so sub-requests the module issues
                # (carrying span=msg.span) become its children.
                span = tr.start_span(msg.span, f"dispatch:{msg.topic}",
                                     "dispatch", self.rank)
                msg._obs_span = span  # type: ignore[attr-defined]
                msg.span = (span.trace_id, span.span_id)
            if key is not None:
                self._inflight[key] = []
            try:
                mod.dispatch_request(msg)
            except NoHandlerError as exc:
                self._finish_request(msg, msg.make_response(
                    error=str(exc), errnum=ENOSYS, err_rank=self.rank))
            return
        if self.parent is None:
            self._send_response(
                source,
                msg.make_response(
                    error=f"no module matches topic {msg.topic!r}",
                    errnum=ENOSYS, err_rank=self.rank))
            return
        if self._expired(msg):
            self._send_response(source, self._expiry_response(msg))
            return
        fwd = msg.copy(src_rank=self.rank)
        self._register_pending(source, fwd, PLANE_TREE, self.parent,
                               "parent")
        self._send(self.parent, PLANE_TREE, fwd)

    def _absorb_duplicate(self, mod_name: str, key: tuple, msg: Message,
                          source: _Source) -> bool:
        """Serve a duplicate request from the replay cache, or park it
        behind its still-in-flight original.  Returns True when ``msg``
        was absorbed (the handler must not run again)."""
        msg._source = source  # type: ignore[attr-defined]
        msg._broker = self    # type: ignore[attr-defined]
        cache = self._replay.get(mod_name)
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                cache.move_to_end(key)
                self._c_replay_hits.inc()
                self._frec(self.sim.now, "replay", msg.topic, key[0], None)
                tr = self.session.span_tracer
                if tr is not None:
                    tr.instant(msg.span, f"replay:{msg.topic}", "retry",
                               self.rank)
                payload, error, errnum, err_rank = hit
                self._emit_response(msg, msg.make_response(
                    payload, error=error, errnum=errnum, err_rank=err_rank))
                return True
        parked = self._inflight.get(key)
        if parked is not None:
            self._c_dups_parked.inc()
            self._frec(self.sim.now, "dup_parked", msg.topic, key[0], None)
            tr = self.session.span_tracer
            if tr is not None:
                tr.instant(msg.span, f"dup_parked:{msg.topic}", "retry",
                           self.rank)
            parked.append(msg)
            if msg.ctx is not None:
                self._kick_pending(msg.ctx)
            return True
        return False

    def _kick_pending(self, ctx: RequestContext) -> None:
        """Revive stalled upstream legs of a logical request.

        A duplicate arrival (client retry) proves the origin is still
        waiting: an upstream leg that stopped retransmitting — budget
        spent, or its deadline (from the *previous* attempt) expired —
        must not blackhole the retry behind its parked original.  Adopt
        the retry's fresher deadline, reset the budget, and re-arm.
        Legs still actively retransmitting (live timer) are left alone,
        and upstream dedup absorbs the extra copies either way."""
        for entry in self._pending.values():
            ectx = entry.msg.ctx
            if entry.timer is not None or ectx is None \
                    or ectx.reqid != ctx.reqid:
                continue
            if ctx.deadline is not None and (
                    ectx.deadline is None or ctx.deadline > ectx.deadline):
                entry.msg.ctx = replace(ectx, deadline=ctx.deadline)
            entry.attempts = 0
            self._arm_retransmit(entry)

    def _finish_request(self, request: Message, resp: Message) -> None:
        """Emit ``resp``, record it for idempotent replay, and answer
        any duplicates parked behind the original.

        Transient (retryable-coded) error responses are deliberately
        NOT recorded: a client retry after ETIMEDOUT/EHOSTUNREACH must
        re-execute the request on the healed overlay, not have the old
        transient failure replayed back at it forever.
        """
        t0 = request._obs_t0
        if t0 is not None:
            self._observe_service(request.topic, self.sim.now - t0)
        if resp.error is not None:
            self._frec(self.sim.now, "resp_error", request.topic,
                       resp.errnum, resp.err_rank)
        tr = self.session.span_tracer
        if tr is not None:
            span = request._obs_span
            if span is not None:
                if resp.error is not None:
                    tr.finish(span, error=resp.errnum)
                else:
                    tr.finish(span)
        key = self._dedup_key(request)
        if key is not None:
            transient = (resp.error is not None
                         and resp.errnum in RETRYABLE_CODES)
            if not transient:
                mod_name = request.module_name()
                cache = self._replay.get(mod_name)
                if cache is None:
                    cache = self._replay[mod_name] = OrderedDict()
                cache[key] = (resp.payload, resp.error, resp.errnum,
                              resp.err_rank)
                cache.move_to_end(key)
                while len(cache) > self.replay_cap:
                    cache.popitem(last=False)
            for dup in self._inflight.pop(key, ()):
                self._emit_response(dup, dup.make_response(
                    resp.payload, error=resp.error, errnum=resp.errnum,
                    err_rank=resp.err_rank))
        self._emit_response(request, resp)

    def _emit_response(self, request: Message, resp: Message) -> None:
        source: _Source = request._source  # type: ignore[attr-defined]
        if source.kind == "ringback":
            # Responses on the ring keep travelling forward to the origin.
            self._send(self.session.ring.next_rank(self.rank),
                       PLANE_RING, resp)
        else:
            self._send_response(source, resp)

    def _dispatch_response(self, msg: Message) -> None:
        entry = self._pending.pop(msg.msgid, None)
        if entry is None:
            return  # response for a forgotten/failed request: drop
        self._cancel_retransmit(entry)
        if entry.span is not None:
            tr = self.session.span_tracer
            if tr is not None:
                if msg.error is not None:
                    tr.finish(entry.span, error=msg.errnum)
                else:
                    tr.finish(entry.span)
        self._send_response(entry.source, msg)

    # -- pending-request bookkeeping (retransmission / fail-over) --------
    def _register_pending(self, source: _Source, msg: Message, plane: str,
                          hop: int, hop_kind: str) -> _Pending:
        """Track a forwarded request; under an active fault plan, arm
        the per-hop retransmission timer that repairs lost messages.
        The timer only exists when chaos is enabled, so fault-free runs
        schedule exactly the same events as before."""
        entry = _Pending(source, msg, plane, hop, hop_kind)
        self._pending[msg.msgid] = entry
        if (msg.span is not None
                and (tr := self.session.span_tracer) is not None):
            # Per-hop forwarding span: opened when the request leaves
            # this broker, closed when its response retraces the hop
            # (or the hop is failed/re-routed).  Re-pointing msg.span
            # chains the next hop's span under this one.
            span = tr.start_span(msg.span, f"fwd:{msg.topic}", "net",
                                 self.rank, hop=hop, plane=plane)
            entry.span = span
            msg.span = (span.trace_id, span.span_id)
        if (msg.ctx is not None
                and self.network.fault_plan is not None
                and self.session.retransmit_max > 0):
            self._arm_retransmit(entry)
        return entry

    def _arm_retransmit(self, entry: _Pending) -> None:
        rto = self.session.retransmit_timeout * (
            2 ** min(entry.attempts, 6))
        timer = self.sim.timeout(rto)
        entry.timer = timer
        timer.add_callback(
            lambda _e, e=entry, t=timer: self._retransmit(e, t))

    def _cancel_retransmit(self, entry: _Pending) -> None:
        timer, entry.timer = entry.timer, None
        if timer is not None and not timer.processed:
            timer.abandon()

    def _retransmit(self, entry: _Pending, timer: Timeout) -> None:
        if entry.timer is not timer or not self.alive:
            return
        entry.timer = None
        if self._pending.get(entry.msg.msgid) is not entry:
            return  # answered/failed while the timer was in flight
        if entry.attempts >= self.session.retransmit_max:
            return  # give up quietly: the request may be legitimately
            # held upstream (barrier/fence); deadlines and client-level
            # retries are the backstop for genuinely lost ones.
        if self._expired(entry.msg):
            return
        hop = self._resolve_hop(entry)
        if hop is None:
            return
        entry.attempts += 1
        entry.hop = hop
        self._c_retransmits.inc()
        self._frec(self.sim.now, "retransmit", entry.msg.topic,
                   entry.attempts, hop)
        tr = self.session.span_tracer
        if tr is not None:
            tr.instant(entry.msg.span, f"retransmit:{entry.msg.topic}",
                       "retry", self.rank, attempt=entry.attempts)
        self._send(hop, entry.plane, entry.msg)
        self._arm_retransmit(entry)

    def _resolve_hop(self, entry: _Pending) -> Optional[int]:
        """Recompute the next hop for a pending request (the route may
        have healed since the original send)."""
        if entry.hop_kind == "parent":
            return self.parent
        if entry.hop_kind == "treerank":
            return self.session.topology.next_hop_toward(
                self.rank, entry.msg.dst_rank)
        if entry.hop_kind == "ring":
            return self.session.ring.next_rank(self.rank)
        return entry.hop  # fixed neighbour

    def _send_response(self, source: _Source, resp: Message) -> None:
        if source.kind == "child":
            self._send(source.target, PLANE_TREE, resp)
        elif source.kind == "client":
            self._count(PLANE_IPC, resp)
            source.target._deliver_response(resp)
        elif source.kind == "local":
            self._count(PLANE_LOCAL, resp)
            ev: Event = source.target
            if not ev.triggered:
                if resp.error is not None:
                    ev.fail(RpcError(resp.topic, resp.error,
                                     code=resp.errnum, rank=resp.err_rank))
                else:
                    ev.succeed(resp.payload)
        elif source.kind == "callback":
            self._count(PLANE_LOCAL, resp)
            source.target(resp)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown source kind {source.kind}")

    # -- event path -------------------------------------------------------
    def _dispatch_event(self, plane: str, msg: Message) -> None:
        if plane == PLANE_EVENT_UP:
            if self.parent is None:
                self._flood_event(msg)
            else:
                self._send(self.parent, PLANE_EVENT_UP, msg)
            return
        # EVENT_DOWN: deliver locally, then keep flooding to children.
        self._deliver_event(msg)
        for child in self.children:
            self._send(child, PLANE_EVENT_DOWN, msg)

    def _flood_event(self, msg: Message) -> None:
        """Root only: inject the event into the downward flood."""
        self._deliver_event(msg)
        for child in self.children:
            self._send(child, PLANE_EVENT_DOWN, msg)

    def _deliver_event(self, msg: Message) -> None:
        self._c_events.inc()
        fn = _EVENT_SALIENT.get(msg.topic)
        self._frec(self.sim.now, "event", msg.topic,
                   fn(msg.payload) if fn is not None else None, None)
        if msg.span is not None:
            tr = self.session.span_tracer
            if tr is not None:
                tr.instant(msg.span, f"event:{msg.topic}", "event",
                           self.rank)
        topic = msg.topic
        for prefix, fn in self._subs_snapshot:
            if topic.startswith(prefix):
                fn(msg)

    # -- tree-routed rank addressing (extension) ---------------------------
    # The paper's secondary rank-addressed overlay uses a ring ("the
    # high latency of a ring is manageable" for debug tools).  The
    # distributed-KVS-master extension needs low-latency point-to-point
    # RPCs, so this plane routes rank-addressed requests along the tree
    # (up to the lowest common ancestor, then down); responses retrace.
    def _dispatch_tree_rank(self, msg: Message) -> None:
        if msg.mtype == MessageType.RESPONSE:
            self._dispatch_response(msg)
            return
        if msg.dst_rank == self.rank:
            self._route_request(msg, _Source("child", msg.src_rank))
            return
        if self._expired(msg):
            self._send(msg.src_rank, PLANE_TREE_RANK,
                       self._expiry_response(msg))
            return
        hop = self.session.topology.next_hop_toward(self.rank, msg.dst_rank)
        fwd = msg.copy(src_rank=self.rank)
        self._register_pending(_Source("child", msg.src_rank), fwd,
                               PLANE_TREE_RANK, hop, "treerank")
        self._send(hop, PLANE_TREE_RANK, fwd)

    def rpc_rank_tree(self, dst_rank: int, topic: str,
                      payload: dict,
                      deadline: Optional[float] = None,
                      span: Optional[tuple] = None) -> Event:
        """Rank-addressed RPC routed over the tree instead of the ring:
        O(log n) hops at the cost of routing knowledge at each hop."""
        ev = self.sim.event(name=("treerank:%s@%d", topic, dst_rank))
        msg = Message(topic=topic, mtype=MessageType.RING, payload=payload,
                      src_rank=self.rank, dst_rank=dst_rank, span=span)
        msg.ensure_context(origin_rank=self.rank, deadline=deadline)
        if dst_rank == self.rank:
            self._route_request(msg, _Source("local", ev))
            return ev
        hop = self.session.topology.next_hop_toward(self.rank, dst_rank)
        self._register_pending(_Source("local", ev), msg,
                               PLANE_TREE_RANK, hop, "treerank")
        self._send(hop, PLANE_TREE_RANK, msg)
        return ev

    def rpc_hop_cb(self, peer_rank: int, topic: str, payload: dict,
                   callback: Callable[[Message], None],
                   ctx: Optional[RequestContext] = None,
                   span: Optional[tuple] = None,
                   payload_size: Optional[int] = None) -> None:
        """Send a request directly to an adjacent tree neighbour
        (parent OR child), bypassing the local module match — the
        generalization of :meth:`rpc_parent_cb` that lets comms-module
        chains run toward an arbitrary rank (e.g. a non-root KVS
        master).  ``ctx`` propagates an in-flight request's context
        (deadline, origin) across the module-level hop; ``span`` the
        tracing context, so the hop appears in the caller's trace;
        ``payload_size`` pre-seeds the wire-size cache when the caller
        already knows the payload's canonical byte size."""
        msg = Message(topic=topic, payload=payload, src_rank=self.rank,
                      ctx=ctx, span=span)
        if payload_size is not None:
            msg._size_cache = HEADER_BYTES + payload_size
        msg.ensure_context(origin_rank=self.rank)
        self._register_pending(_Source("callback", callback), msg,
                               PLANE_TREE, peer_rank, "fixed")
        self._send(peer_rank, PLANE_TREE, msg)

    # -- ring path --------------------------------------------------------
    def _dispatch_ring(self, msg: Message) -> None:
        if msg.mtype == MessageType.RESPONSE:
            if msg.src_rank == self.rank:
                self._dispatch_response(msg)
            else:
                self._send(self.session.ring.next_rank(self.rank),
                           PLANE_RING, msg)
            return
        if msg.dst_rank == self.rank:
            self._route_request(msg, _Source("ringback", None))
            return
        if self._expired(msg):
            # Error responses travel on around the ring to the origin.
            self._send(self.session.ring.next_rank(self.rank),
                       PLANE_RING, self._expiry_response(msg))
            return
        if msg.span is not None:
            tr = self.session.span_tracer
            if tr is not None:
                tr.instant(msg.span, f"ring_hop:{msg.topic}", "net",
                           self.rank)
        self._send(self.session.ring.next_rank(self.rank), PLANE_RING, msg)

    # ------------------------------------------------------------------
    # services offered to modules and clients
    # ------------------------------------------------------------------
    def respond(self, request: Message, payload: Optional[dict] = None,
                error: Optional[str] = None, code: Optional[str] = None,
                err_rank: Optional[int] = None,
                payload_size: Optional[int] = None) -> None:
        """Send the response for ``request`` back where it came from.

        Error responses carry the structured ``code`` (``EPROTO`` when
        the caller supplied none) and the failing rank — this broker's
        unless a relay passes through an upstream ``err_rank``.
        ``payload_size`` pre-seeds the response's wire-size cache when
        the caller already knows the payload's canonical byte size
        (e.g. a KVS object response sized from the store's size cache).
        """
        resp = request.make_response(
            payload, error=error, errnum=code,
            err_rank=(err_rank if err_rank is not None and err_rank >= 0
                      else self.rank) if error is not None else -1)
        if payload_size is not None and error is None:
            resp._size_cache = HEADER_BYTES + payload_size
        self._finish_request(request, resp)

    def rpc_up(self, topic: str, payload: dict,
               deadline: Optional[float] = None,
               span: Optional[tuple] = None) -> Event:
        """Module/local RPC routed upstream; returns a result event."""
        ev = self.sim.event(name=("rpc:%s", topic))
        msg = Message(topic=topic, payload=payload, src_rank=self.rank,
                      span=span)
        msg.ensure_context(origin_rank=self.rank, deadline=deadline)
        self._route_request(msg, _Source("local", ev))
        return ev

    def rpc_up_cb(self, topic: str, payload: dict,
                  callback: Callable[[Message], None],
                  ctx: Optional[RequestContext] = None,
                  span: Optional[tuple] = None) -> None:
        """Like :meth:`rpc_up` but delivers the raw response to a
        callback — used by modules aggregating many child requests."""
        msg = Message(topic=topic, payload=payload, src_rank=self.rank,
                      ctx=ctx, span=span)
        msg.ensure_context(origin_rank=self.rank)
        self._route_request(msg, _Source("callback", callback))

    def rpc_parent_cb(self, topic: str, payload: dict,
                      callback: Callable[[Message], None],
                      ctx: Optional[RequestContext] = None,
                      span: Optional[tuple] = None,
                      payload_size: Optional[int] = None) -> None:
        """Send a request directly to the tree parent, bypassing the
        local module match — how instances of the same comms module
        talk upstream to each other (cache fault-in, flush/fence
        forwarding).  The raw response is handed to ``callback``;
        ``ctx`` propagates an in-flight request's context upstream and
        ``span`` its tracing context; ``payload_size`` pre-seeds the
        wire-size cache when the caller already knows the payload's
        canonical byte size (fence/flush payloads are sized
        compositionally from cached object sizes)."""
        if self.parent is None:
            raise RpcError(topic, "root has no parent",
                           code=EHOSTUNREACH, rank=self.rank)
        msg = Message(topic=topic, payload=payload, src_rank=self.rank,
                      ctx=ctx, span=span)
        if payload_size is not None:
            msg._size_cache = HEADER_BYTES + payload_size
        msg.ensure_context(origin_rank=self.rank)
        self._register_pending(_Source("callback", callback), msg,
                               PLANE_TREE, self.parent, "parent")
        self._send(self.parent, PLANE_TREE, msg)

    def send_parent(self, topic: str, payload: dict) -> None:
        """One-way message to the tree parent (no response expected),
        e.g. the ``live`` module's heartbeat-synchronized hellos."""
        if self.parent is None:
            return
        msg = Message(topic=topic, payload=payload, src_rank=self.rank)
        self._send(self.parent, PLANE_TREE, msg)

    def rpc_rank(self, dst_rank: int, topic: str, payload: dict,
                 deadline: Optional[float] = None,
                 span: Optional[tuple] = None) -> Event:
        """Rank-addressed RPC over the ring overlay."""
        ev = self.sim.event(name=("ring:%s@%d", topic, dst_rank))
        msg = Message(topic=topic, mtype=MessageType.RING, payload=payload,
                      src_rank=self.rank, dst_rank=dst_rank, span=span)
        msg.ensure_context(origin_rank=self.rank, deadline=deadline)
        if dst_rank == self.rank:
            self._route_request(msg, _Source("local", ev))
        else:
            nxt = self.session.ring.next_rank(self.rank)
            self._register_pending(_Source("local", ev), msg,
                                   PLANE_RING, nxt, "ring")
            self._send(nxt, PLANE_RING, msg)
        return ev

    def publish(self, topic: str, payload: dict,
                span: Optional[tuple] = None) -> None:
        """Publish an event session-wide via the event plane.

        ``span`` attaches a tracing context: every broker's delivery
        of the event then shows up in that trace."""
        msg = Message(topic=topic, mtype=MessageType.EVENT,
                      payload=payload, src_rank=self.rank, span=span)
        if self.parent is None:
            self._flood_event(msg)
        else:
            self._send(self.parent, PLANE_EVENT_UP, msg)

    def subscribe(self, prefix: str, fn: Callable[[Message], None]) -> None:
        """Register ``fn`` for events whose topic starts with ``prefix``."""
        self._subs.append((prefix, fn))
        self._subs_snapshot = tuple(self._subs)

    def unsubscribe(self, prefix: str, fn: Callable[[Message], None]) -> None:
        """Remove a previously registered subscription."""
        self._subs.remove((prefix, fn))
        self._subs_snapshot = tuple(self._subs)

    def after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` simulated seconds (module timers)."""
        ev = self.sim.timeout(delay)
        ev.add_callback(lambda _e: fn() if self.alive else None)
        return ev

    def log(self, level: str, text: str) -> None:
        """Route a log record into the ``log`` module when loaded."""
        mod = self.modules.get("log")
        if mod is not None:
            mod.append(level, text)  # type: ignore[attr-defined]

    # -- self-healing ------------------------------------------------------
    def handle_peer_down(self, dead_rank: int) -> None:
        """Rewire around a dead interior node (paper: planes self-heal).

        Orphans re-attach to the dead node's *nearest live ancestor*
        (the grandparent, unless it too is dead — cascading failures
        walk further up), and that ancestor adopts every live broker
        currently pointing at the corpse — including orphans it had
        itself inherited from an earlier failure.  The live.down event
        flood guarantees ancestors process the death before the orphans
        do, so the current parent pointers this scan reads are still
        the pre-rewire ones.

        In-flight requests routed through the corpse are then failed
        immediately with EHOSTUNREACH (no more waiting for a deadline
        that may never come) or, for tree-plane requests that can
        follow the healed parent pointer, re-sent along the new route.
        """
        heal_target = self.session.nearest_live_ancestor(dead_rank)
        if heal_target is None:
            # The dead rank's whole ancestor chain (the static root
            # included) is gone: the minimum live rank becomes the
            # acting overlay root — it keeps parent None and adopts;
            # everyone else heals toward it.
            acting = self.session.acting_root()
            adopter = acting
            heal_target = acting if acting != self.rank else None
        else:
            adopter = heal_target
        self._frec(self.sim.now, "peer_down", dead_rank, heal_target, None)
        if self.parent == dead_rank:
            self.parent = heal_target
        if dead_rank in self.children:
            self.children.remove(dead_rank)
        if adopter == self.rank:
            for peer in self.session.brokers:
                if (peer.alive and peer.rank != self.rank
                        and peer.parent == dead_rank
                        and peer.rank not in self.children):
                    self.children.append(peer.rank)
        self._fail_pending_via(dead_rank)

    def handle_peer_up(self, rank: int) -> None:
        """Re-wire for a revived peer announcing itself (live.reattach):
        restore the original topology edges that involve ``rank`` and
        hand any orphans we adopted on its behalf back to it."""
        session = self.session
        if rank == self.rank:
            return
        if session.parent_of(self.rank) == rank:
            self.parent = rank
        if session.parent_of(rank) == self.rank and rank not in self.children:
            self.children.append(rank)
        for orphan in session.children_of(rank):
            if orphan != self.rank and orphan in self.children:
                self.children.remove(orphan)

    def _fail_pending_via(self, dead_rank: int) -> None:
        """Resolve every pending request whose next hop just died:
        re-send healable tree requests through the new parent, fail the
        rest promptly with EHOSTUNREACH carrying the dead rank."""
        for msgid, entry in list(self._pending.items()):
            if entry.hop != dead_rank:
                continue
            if (entry.hop_kind == "parent" and self.parent is not None
                    and not self._expired(entry.msg)):
                # The tree plane healed under us: re-issue the request
                # along the new route.  The receiving module's replay
                # cache absorbs it if the original was already served.
                self._cancel_retransmit(entry)
                entry.hop = self.parent
                entry.attempts = 0
                self._c_reroutes.inc()
                self._frec(self.sim.now, "reroute", entry.msg.topic,
                           dead_rank, self.parent)
                tr = self.session.span_tracer
                if tr is not None:
                    tr.instant(entry.msg.span,
                               f"reroute:{entry.msg.topic}", "retry",
                               self.rank, dead=dead_rank, hop=self.parent)
                self._send(self.parent, entry.plane, entry.msg)
                if (self.network.fault_plan is not None
                        and self.session.retransmit_max > 0):
                    self._arm_retransmit(entry)
                continue
            del self._pending[msgid]
            self._cancel_retransmit(entry)
            self._frec(self.sim.now, "fail_via", entry.msg.topic,
                       dead_rank, None)
            if entry.span is not None:
                tr = self.session.span_tracer
                if tr is not None:
                    tr.finish(entry.span, error=EHOSTUNREACH,
                              dead=dead_rank)
            resp = entry.msg.make_response(
                error=f"next hop rank {dead_rank} declared down",
                errnum=EHOSTUNREACH, err_rank=dead_rank)
            self._send_response(entry.source, resp)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Broker rank={self.rank} node={self.node_id}>"
