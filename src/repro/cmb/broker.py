"""The Comms Message Broker (CMB) daemon.

One :class:`Broker` runs on every node of a comms session, wired into
three overlay planes exactly as in the paper:

- **tree plane** — request/response RPCs.  Requests route *upstream*
  toward the root until they hit the first broker with a matching
  comms module loaded; responses retrace the same hops in reverse.
  Module instances along the path may intercept and aggregate
  (reduce) requests instead of forwarding them verbatim.
- **event plane** — pub-sub.  A publish travels up to the root, which
  floods it down the tree; FIFO links give every broker the same
  total event order, which the KVS root-version protocol relies on.
- **ring plane** — rank-addressed RPCs forwarded around a ring
  "without routing tables", used by debugging tools.

External programs talk to their local broker over an IPC hop via
:class:`~repro.cmb.api.Handle`, mirroring the paper's UNIX-domain
socket client transport.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from ..sim.kernel import Event, Simulation
from .errors import EHOSTUNREACH, ENOSYS, ETIMEDOUT, RpcError
from .message import Message, MessageType, RequestContext
from .module import CommsModule, NoHandlerError

if TYPE_CHECKING:  # pragma: no cover
    from .session import CommsSession

__all__ = ["Broker", "RpcError"]

# Planes (tags on fabric payloads so a broker knows how a message got in).
PLANE_TREE = "tree"
PLANE_EVENT_UP = "event_up"
PLANE_EVENT_DOWN = "event_down"
PLANE_RING = "ring"
PLANE_TREE_RANK = "tree_rank"  # rank-addressed over the tree (extension)
# Pseudo-planes for the message-count breakdown: local IPC deliveries to
# clients and in-broker deliveries (module/callback/event sources).
PLANE_IPC = "ipc"
PLANE_LOCAL = "local"


class _Source:
    """Where a request came from, i.e. where its response must go.

    kind is one of ``child`` (downstream broker rank), ``client``
    (local Handle), ``local`` (an Event a local caller waits on), or
    ``callback`` (module-supplied function).
    """

    __slots__ = ("kind", "target")

    def __init__(self, kind: str, target: Any):
        self.kind = kind
        self.target = target


class Broker:
    """One CMB daemon instance: routing, module hosting, client service."""

    def __init__(self, session: "CommsSession", rank: int):
        self.session = session
        self.rank = rank
        self.sim: Simulation = session.sim
        self.network = session.network
        self.node_id = session.node_of_rank(rank)
        # Live wiring (mutable for self-healing).
        self.parent: Optional[int] = session.parent_map[rank]
        self.children: list[int] = [
            r for r, p in session.parent_map.items() if p == rank]
        self.modules: dict[str, CommsModule] = {}
        self._pending: dict[int, _Source] = {}
        self._subs: list[tuple[str, Callable[[Message], None]]] = []
        self._inbox = session.network.open_port(
            self.node_id, session.port_key)
        self._proc = None
        self.alive = True
        # Observability.
        self.requests_handled = 0
        self.events_seen = 0
        #: Per-(module, plane, kind) message counters; ``kind`` is
        #: ``request``/``response``/``error``/``event``/``ring``.  Each
        #: forwarding hop counts once, giving the per-hop accounting the
        #: benchmarks aggregate via ``CommsSession.message_counts()``.
        self.msg_counts: dict[tuple[str, str, str], int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def load_module(self, module: CommsModule) -> None:
        """Install a comms module into this broker's address space."""
        if module.name in self.modules:
            raise ValueError(f"module {module.name!r} already loaded "
                             f"at rank {self.rank}")
        self.modules[module.name] = module

    def unload_module(self, name: str) -> CommsModule:
        """Remove a module (supports the paper's live-reconfiguration)."""
        mod = self.modules.pop(name)
        mod.shutdown()
        return mod

    def start(self) -> None:
        """Begin consuming the node inbox and start loaded modules."""
        self._proc = self.sim.spawn(self._main_loop(),
                                    name=f"broker[{self.rank}]")
        for mod in list(self.modules.values()):
            mod.start()

    def stop(self) -> None:
        """Stop the broker (used for failure injection / teardown)."""
        self.alive = False
        for mod in list(self.modules.values()):
            mod.shutdown()
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("broker stop")
        self.network.close_port(self.node_id, self.session.port_key)

    def _main_loop(self):
        while self.alive:
            item = yield self._inbox.get()
            plane, msg = item
            if not self.alive:
                break
            self._dispatch(plane, msg)

    # ------------------------------------------------------------------
    # plane-level sends
    # ------------------------------------------------------------------
    def _count(self, plane: str, msg: Message) -> None:
        """Tally one message for the per-module/per-plane breakdown."""
        if msg.mtype is MessageType.RESPONSE:
            kind = "error" if msg.error is not None else "response"
        else:
            kind = msg.mtype.value
        key = (msg.module_name(), plane, kind)
        self.msg_counts[key] = self.msg_counts.get(key, 0) + 1

    def _send(self, peer_rank: int, plane: str, msg: Message) -> None:
        msg.hops += 1
        self._count(plane, msg)
        self.network.send(self.node_id, self.session.node_of_rank(peer_rank),
                          (plane, msg), msg.size(),
                          port=self.session.port_key)

    def _expired(self, msg: Message) -> bool:
        """True when the request's deadline passed (checked per hop)."""
        ctx = msg.ctx
        return ctx is not None and ctx.expired(self.sim.now)

    def _expiry_response(self, msg: Message) -> Message:
        return msg.make_response(
            error=(f"deadline expired in transit at rank {self.rank} "
                   f"(t={self.sim.now:g})"),
            errnum=ETIMEDOUT, err_rank=self.rank)

    # ------------------------------------------------------------------
    # inbound dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, plane: str, msg: Message) -> None:
        if plane == PLANE_RING:
            self._dispatch_ring(msg)
        elif plane == PLANE_TREE_RANK:
            self._dispatch_tree_rank(msg)
        elif plane in (PLANE_EVENT_UP, PLANE_EVENT_DOWN):
            self._dispatch_event(plane, msg)
        elif msg.mtype == MessageType.RESPONSE:
            self._dispatch_response(msg)
        else:
            self._route_request(msg, _Source("child", msg.src_rank))

    # -- request path ---------------------------------------------------
    def _route_request(self, msg: Message, source: _Source) -> None:
        """Deliver to a local module or forward upstream (paper: requests
        are routed upstream to the first matching comms module)."""
        mod = self.modules.get(msg.module_name())
        if mod is not None:
            self.requests_handled += 1
            self._count(PLANE_LOCAL, msg)
            msg._source = source  # type: ignore[attr-defined]
            msg._broker = self    # type: ignore[attr-defined]
            try:
                mod.dispatch_request(msg)
            except NoHandlerError as exc:
                self._send_response(source, msg.make_response(
                    error=str(exc), errnum=ENOSYS, err_rank=self.rank))
            return
        if self.parent is None:
            self._send_response(
                source,
                msg.make_response(
                    error=f"no module matches topic {msg.topic!r}",
                    errnum=ENOSYS, err_rank=self.rank))
            return
        if self._expired(msg):
            self._send_response(source, self._expiry_response(msg))
            return
        self._pending[msg.msgid] = source
        fwd = msg.copy(src_rank=self.rank)
        self._send(self.parent, PLANE_TREE, fwd)

    def _dispatch_response(self, msg: Message) -> None:
        source = self._pending.pop(msg.msgid, None)
        if source is None:
            return  # response for a forgotten/failed request: drop
        self._send_response(source, msg)

    def _send_response(self, source: _Source, resp: Message) -> None:
        if source.kind == "child":
            self._send(source.target, PLANE_TREE, resp)
        elif source.kind == "client":
            self._count(PLANE_IPC, resp)
            source.target._deliver_response(resp)
        elif source.kind == "local":
            self._count(PLANE_LOCAL, resp)
            ev: Event = source.target
            if not ev.triggered:
                if resp.error is not None:
                    ev.fail(RpcError(resp.topic, resp.error,
                                     code=resp.errnum, rank=resp.err_rank))
                else:
                    ev.succeed(resp.payload)
        elif source.kind == "callback":
            self._count(PLANE_LOCAL, resp)
            source.target(resp)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown source kind {source.kind}")

    # -- event path -------------------------------------------------------
    def _dispatch_event(self, plane: str, msg: Message) -> None:
        if plane == PLANE_EVENT_UP:
            if self.parent is None:
                self._flood_event(msg)
            else:
                self._send(self.parent, PLANE_EVENT_UP, msg)
            return
        # EVENT_DOWN: deliver locally, then keep flooding to children.
        self._deliver_event(msg)
        for child in self.children:
            self._send(child, PLANE_EVENT_DOWN, msg)

    def _flood_event(self, msg: Message) -> None:
        """Root only: inject the event into the downward flood."""
        self._deliver_event(msg)
        for child in self.children:
            self._send(child, PLANE_EVENT_DOWN, msg)

    def _deliver_event(self, msg: Message) -> None:
        self.events_seen += 1
        for prefix, fn in list(self._subs):
            if msg.topic.startswith(prefix):
                fn(msg)

    # -- tree-routed rank addressing (extension) ---------------------------
    # The paper's secondary rank-addressed overlay uses a ring ("the
    # high latency of a ring is manageable" for debug tools).  The
    # distributed-KVS-master extension needs low-latency point-to-point
    # RPCs, so this plane routes rank-addressed requests along the tree
    # (up to the lowest common ancestor, then down); responses retrace.
    def _dispatch_tree_rank(self, msg: Message) -> None:
        if msg.mtype == MessageType.RESPONSE:
            self._dispatch_response(msg)
            return
        if msg.dst_rank == self.rank:
            self._route_request(msg, _Source("child", msg.src_rank))
            return
        if self._expired(msg):
            self._send(msg.src_rank, PLANE_TREE_RANK,
                       self._expiry_response(msg))
            return
        hop = self.session.topology.next_hop_toward(self.rank, msg.dst_rank)
        self._pending[msg.msgid] = _Source("child", msg.src_rank)
        fwd = msg.copy(src_rank=self.rank)
        self._send(hop, PLANE_TREE_RANK, fwd)

    def rpc_rank_tree(self, dst_rank: int, topic: str,
                      payload: dict,
                      deadline: Optional[float] = None) -> Event:
        """Rank-addressed RPC routed over the tree instead of the ring:
        O(log n) hops at the cost of routing knowledge at each hop."""
        ev = self.sim.event(name=f"treerank:{topic}@{dst_rank}")
        msg = Message(topic=topic, mtype=MessageType.RING, payload=payload,
                      src_rank=self.rank, dst_rank=dst_rank)
        msg.ensure_context(origin_rank=self.rank, deadline=deadline)
        if dst_rank == self.rank:
            self._route_request(msg, _Source("local", ev))
            return ev
        self._pending[msg.msgid] = _Source("local", ev)
        hop = self.session.topology.next_hop_toward(self.rank, dst_rank)
        self._send(hop, PLANE_TREE_RANK, msg)
        return ev

    def rpc_hop_cb(self, peer_rank: int, topic: str, payload: dict,
                   callback: Callable[[Message], None],
                   ctx: Optional[RequestContext] = None) -> None:
        """Send a request directly to an adjacent tree neighbour
        (parent OR child), bypassing the local module match — the
        generalization of :meth:`rpc_parent_cb` that lets comms-module
        chains run toward an arbitrary rank (e.g. a non-root KVS
        master).  ``ctx`` propagates an in-flight request's context
        (deadline, origin) across the module-level hop."""
        msg = Message(topic=topic, payload=payload, src_rank=self.rank,
                      ctx=ctx)
        msg.ensure_context(origin_rank=self.rank)
        self._pending[msg.msgid] = _Source("callback", callback)
        self._send(peer_rank, PLANE_TREE, msg)

    # -- ring path --------------------------------------------------------
    def _dispatch_ring(self, msg: Message) -> None:
        if msg.mtype == MessageType.RESPONSE:
            if msg.src_rank == self.rank:
                self._dispatch_response(msg)
            else:
                self._send(self.session.ring.next_rank(self.rank),
                           PLANE_RING, msg)
            return
        if msg.dst_rank == self.rank:
            self._route_request(msg, _Source("ringback", None))
            return
        if self._expired(msg):
            # Error responses travel on around the ring to the origin.
            self._send(self.session.ring.next_rank(self.rank),
                       PLANE_RING, self._expiry_response(msg))
            return
        self._send(self.session.ring.next_rank(self.rank), PLANE_RING, msg)

    # ------------------------------------------------------------------
    # services offered to modules and clients
    # ------------------------------------------------------------------
    def respond(self, request: Message, payload: Optional[dict] = None,
                error: Optional[str] = None, code: Optional[str] = None,
                err_rank: Optional[int] = None) -> None:
        """Send the response for ``request`` back where it came from.

        Error responses carry the structured ``code`` (``EPROTO`` when
        the caller supplied none) and the failing rank — this broker's
        unless a relay passes through an upstream ``err_rank``.
        """
        source: _Source = request._source  # type: ignore[attr-defined]
        resp = request.make_response(
            payload, error=error, errnum=code,
            err_rank=(err_rank if err_rank is not None and err_rank >= 0
                      else self.rank) if error is not None else -1)
        if source.kind == "ringback":
            # Responses on the ring keep travelling forward to the origin.
            self._send(self.session.ring.next_rank(self.rank),
                       PLANE_RING, resp)
        else:
            self._send_response(source, resp)

    def rpc_up(self, topic: str, payload: dict,
               deadline: Optional[float] = None) -> Event:
        """Module/local RPC routed upstream; returns a result event."""
        ev = self.sim.event(name=f"rpc:{topic}")
        msg = Message(topic=topic, payload=payload, src_rank=self.rank)
        msg.ensure_context(origin_rank=self.rank, deadline=deadline)
        self._route_request(msg, _Source("local", ev))
        return ev

    def rpc_up_cb(self, topic: str, payload: dict,
                  callback: Callable[[Message], None],
                  ctx: Optional[RequestContext] = None) -> None:
        """Like :meth:`rpc_up` but delivers the raw response to a
        callback — used by modules aggregating many child requests."""
        msg = Message(topic=topic, payload=payload, src_rank=self.rank,
                      ctx=ctx)
        msg.ensure_context(origin_rank=self.rank)
        self._route_request(msg, _Source("callback", callback))

    def rpc_parent_cb(self, topic: str, payload: dict,
                      callback: Callable[[Message], None],
                      ctx: Optional[RequestContext] = None) -> None:
        """Send a request directly to the tree parent, bypassing the
        local module match — how instances of the same comms module
        talk upstream to each other (cache fault-in, flush/fence
        forwarding).  The raw response is handed to ``callback``;
        ``ctx`` propagates an in-flight request's context upstream."""
        if self.parent is None:
            raise RpcError(topic, "root has no parent",
                           code=EHOSTUNREACH, rank=self.rank)
        msg = Message(topic=topic, payload=payload, src_rank=self.rank,
                      ctx=ctx)
        msg.ensure_context(origin_rank=self.rank)
        self._pending[msg.msgid] = _Source("callback", callback)
        self._send(self.parent, PLANE_TREE, msg)

    def send_parent(self, topic: str, payload: dict) -> None:
        """One-way message to the tree parent (no response expected),
        e.g. the ``live`` module's heartbeat-synchronized hellos."""
        if self.parent is None:
            return
        msg = Message(topic=topic, payload=payload, src_rank=self.rank)
        self._send(self.parent, PLANE_TREE, msg)

    def rpc_rank(self, dst_rank: int, topic: str, payload: dict,
                 deadline: Optional[float] = None) -> Event:
        """Rank-addressed RPC over the ring overlay."""
        ev = self.sim.event(name=f"ring:{topic}@{dst_rank}")
        msg = Message(topic=topic, mtype=MessageType.RING, payload=payload,
                      src_rank=self.rank, dst_rank=dst_rank)
        msg.ensure_context(origin_rank=self.rank, deadline=deadline)
        if dst_rank == self.rank:
            self._route_request(msg, _Source("local", ev))
        else:
            self._pending[msg.msgid] = _Source("local", ev)
            self._send(self.session.ring.next_rank(self.rank),
                       PLANE_RING, msg)
        return ev

    def publish(self, topic: str, payload: dict) -> None:
        """Publish an event session-wide via the event plane."""
        msg = Message(topic=topic, mtype=MessageType.EVENT,
                      payload=payload, src_rank=self.rank)
        if self.parent is None:
            self._flood_event(msg)
        else:
            self._send(self.parent, PLANE_EVENT_UP, msg)

    def subscribe(self, prefix: str, fn: Callable[[Message], None]) -> None:
        """Register ``fn`` for events whose topic starts with ``prefix``."""
        self._subs.append((prefix, fn))

    def unsubscribe(self, prefix: str, fn: Callable[[Message], None]) -> None:
        """Remove a previously registered subscription."""
        self._subs.remove((prefix, fn))

    def after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` simulated seconds (module timers)."""
        ev = self.sim.timeout(delay)
        ev.add_callback(lambda _e: fn() if self.alive else None)
        return ev

    def log(self, level: str, text: str) -> None:
        """Route a log record into the ``log`` module when loaded."""
        mod = self.modules.get("log")
        if mod is not None:
            mod.append(level, text)  # type: ignore[attr-defined]

    # -- self-healing ------------------------------------------------------
    def handle_peer_down(self, dead_rank: int) -> None:
        """Rewire around a dead interior node (paper: planes self-heal).

        If our parent died we attach to the grandparent; if a child
        died we drop it (its own children will re-attach to us if we
        are the grandparent).
        """
        if self.parent == dead_rank:
            new_parent = self.session.parent_of(dead_rank)
            self.parent = new_parent
        if dead_rank in self.children:
            self.children.remove(dead_rank)
        if (self.session.parent_of(dead_rank) == self.rank):
            # Adopt the dead node's orphans.
            for orphan in self.session.children_of(dead_rank):
                if orphan != self.rank and orphan not in self.children:
                    self.children.append(orphan)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Broker rank={self.rank} node={self.node_id}>"
