"""Structured RPC errors — the CMB's errnum-coded failure channel.

Real Flux responds to a failed request with a POSIX ``errnum`` in the
response envelope rather than a free-form string; tools and services
branch on the code while humans read the text.  This module is the
reproduction's equivalent: a small, closed set of symbolic error codes
that ride the response's *header frame* (so they never change payload
wire sizes), plus the :class:`RpcError` exception every client-facing
API raises.

The code set (loosely the errno subset Flux actually uses):

========== ====================================================
code        meaning
========== ====================================================
ENOSYS      no service/handler matches the request topic
ENOENT      named thing (key, job, object, sampler) not found
EEXIST      thing already exists (duplicate allocation, …)
EINVAL      malformed request payload (missing/bad fields)
EOVERFLOW   request exceeds available capacity
EAGAIN      service overloaded right now — back off and retry
ETIMEDOUT   request deadline expired (client- or broker-side)
EHOSTUNREACH  no route to the target rank/parent
EPROTO      unclassified protocol-level failure (the default)
EIO         data lost or corrupted in transit
========== ====================================================

Multi-hop relays (:meth:`repro.cmb.module.CommsModule.proxy_upstream`)
propagate ``(code, text, failing rank)`` losslessly, so an ``ENOSYS``
raised three hops up the tree surfaces at the originating client as
``RpcError(code="ENOSYS", rank=<failing rank>)``.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ENOSYS", "ENOENT", "EEXIST", "EINVAL", "EOVERFLOW", "EAGAIN",
    "ETIMEDOUT", "EHOSTUNREACH", "EPROTO", "EIO", "ERROR_CODES",
    "RETRYABLE_CODES", "RpcError",
]

ENOSYS = "ENOSYS"
ENOENT = "ENOENT"
EEXIST = "EEXIST"
EINVAL = "EINVAL"
EOVERFLOW = "EOVERFLOW"
EAGAIN = "EAGAIN"
ETIMEDOUT = "ETIMEDOUT"
EHOSTUNREACH = "EHOSTUNREACH"
EPROTO = "EPROTO"
EIO = "EIO"

#: Every code a response may carry.
ERROR_CODES = frozenset({
    ENOSYS, ENOENT, EEXIST, EINVAL, EOVERFLOW, EAGAIN, ETIMEDOUT,
    EHOSTUNREACH, EPROTO, EIO,
})

#: Codes that describe a *transient* failure: the request may never
#: have been served (transport loss) or the service is merely
#: overloaded right now (EAGAIN admission control), so re-sending it
#: after a backoff can succeed.  Everything else (ENOENT, EINVAL, ...)
#: is a definitive answer from the service — retrying would just
#: repeat the same failure, so retry loops must not.
RETRYABLE_CODES = frozenset({ETIMEDOUT, EHOSTUNREACH, EIO, EAGAIN})


class RpcError(Exception):
    """An RPC completed with an error response.

    Attributes
    ----------
    topic:
        The request topic that failed.
    error:
        Human-readable error text from the responder.
    code:
        Symbolic errnum-style code (one of :data:`ERROR_CODES`);
        defaults to :data:`EPROTO` when the responder supplied none.
    rank:
        Session rank where the error originated, or ``-1`` when the
        failure happened client-side (e.g. a local timeout) or the
        responder did not record it.
    """

    def __init__(self, topic: str, error: str,
                 code: Optional[str] = None, rank: int = -1):
        super().__init__(f"{topic}: {error}")
        self.topic = topic
        self.error = error
        self.code = code if code is not None else EPROTO
        self.rank = rank

    @property
    def retryable(self) -> bool:
        """True when the failure is transient (timeout, unreachable
        hop, data lost in transit) and re-issuing the request could
        succeed; False for definitive service answers like ``ENOENT``
        or ``EINVAL``, which retry loops must not repeat."""
        return self.code in RETRYABLE_CODES

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RpcError(topic={self.topic!r}, code={self.code!r}, "
                f"rank={self.rank}, error={self.error!r})")
