"""CMB wire messages.

The paper specifies a uniform multi-part format: a *header frame*
identifying the recipient through a hierarchical topic namespace
(``kvs.put`` routes to the ``kvs`` comms module, then to its ``put``
handler) plus a free-form *JSON frame* with the payload.

:class:`Message` models both frames.  The network cost model charges
``HEADER_BYTES`` for the header plus the canonical-JSON size of the
payload, so protocol asymmetries (e.g. fence payload concatenation)
show up in simulated latency exactly as they would on the wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Optional

from ..jsonutil import canonical_size

__all__ = ["MessageType", "Message", "HEADER_BYTES", "split_topic"]

#: Fixed header-frame cost: routing envelope, message id, flags.
HEADER_BYTES = 64

_msg_ids = itertools.count(1)


class MessageType(Enum):
    """The four CMB message classes carried over the overlay planes."""

    REQUEST = "request"    # routed upstream to the first matching module
    RESPONSE = "response"  # retraces the request's hops in reverse
    EVENT = "event"        # published session-wide on the event plane
    RING = "ring"          # rank-addressed request on the ring overlay


def split_topic(topic: str) -> tuple[str, str]:
    """Split ``"kvs.put"`` into ``("kvs", "put")``.

    A bare module name maps to the module's default handler ``""``.
    """
    if not topic:
        raise ValueError("empty topic")
    head, _, rest = topic.partition(".")
    return head, rest


@dataclass
class Message:
    """One CMB message (header frame + JSON payload frame).

    Attributes
    ----------
    topic:
        Hierarchical service address, e.g. ``"kvs.commit"``.
    mtype:
        One of :class:`MessageType`.
    payload:
        JSON-able dict (the paper's free-form JSON frame).
    msgid:
        Unique id used to correlate responses with requests.
    src_rank:
        Rank that originated the message.
    dst_rank:
        Target rank for RING messages (ignored otherwise).
    error:
        Error string on failed RESPONSEs (``None`` on success).
    hops:
        Number of broker hops taken so far (observability only).
    """

    topic: str
    mtype: MessageType = MessageType.REQUEST
    payload: dict = field(default_factory=dict)
    msgid: int = field(default_factory=lambda: next(_msg_ids))
    src_rank: int = -1
    dst_rank: int = -1
    error: Optional[str] = None
    hops: int = 0
    # Cached wire size: payloads are treated as immutable once a message
    # is built, and size() is evaluated on every forwarding hop —
    # re-serializing a multi-megabyte directory object per hop would
    # dominate simulation time (profiled at ~25%).
    _size_cache: Optional[int] = field(default=None, repr=False,
                                       compare=False)

    def size(self) -> int:
        """Wire size in bytes: fixed header + canonical JSON payload."""
        if self._size_cache is None:
            self._size_cache = HEADER_BYTES + canonical_size(self.payload)
        return self._size_cache

    def module_name(self) -> str:
        """The module component of :attr:`topic` (``kvs`` of ``kvs.put``)."""
        return split_topic(self.topic)[0]

    def method_name(self) -> str:
        """The handler component of :attr:`topic` (``put`` of ``kvs.put``)."""
        return split_topic(self.topic)[1]

    def make_response(self, payload: Optional[dict] = None,
                      error: Optional[str] = None) -> "Message":
        """Build the RESPONSE correlated with this REQUEST/RING message."""
        return Message(
            topic=self.topic,
            mtype=MessageType.RESPONSE,
            payload=payload if payload is not None else {},
            msgid=self.msgid,
            src_rank=self.src_rank,
            dst_rank=self.dst_rank,
            error=error,
        )

    def copy(self, **changes: Any) -> "Message":
        """Shallow copy with field overrides (fresh msgid NOT assigned)."""
        if "payload" in changes:
            changes.setdefault("_size_cache", None)
        return replace(self, **changes)
