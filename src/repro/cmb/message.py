"""CMB wire messages.

The paper specifies a uniform multi-part format: a *header frame*
identifying the recipient through a hierarchical topic namespace
(``kvs.put`` routes to the ``kvs`` comms module, then to its ``put``
handler) plus a free-form *JSON frame* with the payload.

:class:`Message` models both frames.  The network cost model charges
``HEADER_BYTES`` for the header plus the canonical-JSON size of the
payload, so protocol asymmetries (e.g. fence payload concatenation)
show up in simulated latency exactly as they would on the wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from ..jsonutil import canonical_size
from .errors import EPROTO

__all__ = ["MessageType", "Message", "RequestContext", "HEADER_BYTES",
           "split_topic"]

#: Fixed header-frame cost: routing envelope, message id, flags, and the
#: request context (request id / origin rank / hop count / deadline) —
#: all small fixed-width fields, so carrying a context never changes a
#: message's wire size.
HEADER_BYTES = 64

_msg_ids = itertools.count(1)


@dataclass(frozen=True)
class RequestContext:
    """Request-scoped metadata carried in the header frame.

    A context is attached where a request *originates* (a client
    :class:`~repro.cmb.api.Handle` or a broker RPC primitive) and rides
    the header frame unchanged through every forward hop and module
    relay, so mid-tree brokers can act on it without parsing payloads:

    - ``reqid`` correlates all hops of one logical request, across
      module-level re-issues (a proxy relay creates a fresh ``msgid``
      per hop but preserves the ``reqid``).
    - ``origin_rank`` is the rank whose client/service started it.
    - ``deadline`` is an *absolute simulated time*; brokers check it on
      every forward hop and answer ``ETIMEDOUT`` instead of forwarding
      a request that can no longer meet it.

    The per-message hop count lives in :attr:`Message.hops` (it is a
    property of the message's path, not of the logical request) but is
    part of the same fixed-size header frame.
    """

    reqid: int
    origin_rank: int = -1
    deadline: Optional[float] = None

    def expired(self, now: float) -> bool:
        """True once ``now`` has passed the deadline (if any)."""
        return self.deadline is not None and now > self.deadline


class MessageType(Enum):
    """The four CMB message classes carried over the overlay planes."""

    REQUEST = "request"    # routed upstream to the first matching module
    RESPONSE = "response"  # retraces the request's hops in reverse
    EVENT = "event"        # published session-wide on the event plane
    RING = "ring"          # rank-addressed request on the ring overlay


#: Memoized topic splits.  Sessions use a small fixed topic vocabulary
#: (module registries plus a handful of per-namespace heads), but
#: split_topic runs several times per message hop, so the dict lookup
#: replaces a string partition + tuple build on the hottest broker
#: paths.  Bounded so pathological dynamic topics cannot grow it
#: without limit (entries past the cap are computed but not cached).
_split_cache: dict[str, tuple[str, str]] = {}
_SPLIT_CACHE_CAP = 4096


def split_topic(topic: str) -> tuple[str, str]:
    """Split ``"kvs.put"`` into ``("kvs", "put")``.

    A bare module name maps to the module's default handler ``""``.
    """
    hit = _split_cache.get(topic)
    if hit is None:
        if not topic:
            raise ValueError("empty topic")
        head, _, rest = topic.partition(".")
        hit = (head, rest)
        if len(_split_cache) < _SPLIT_CACHE_CAP:
            _split_cache[topic] = hit
    return hit


@dataclass(slots=True)
class Message:
    """One CMB message (header frame + JSON payload frame).

    Attributes
    ----------
    topic:
        Hierarchical service address, e.g. ``"kvs.commit"``.
    mtype:
        One of :class:`MessageType`.
    payload:
        JSON-able dict (the paper's free-form JSON frame).
    msgid:
        Unique id used to correlate responses with requests.
    src_rank:
        Rank that originated the message.
    dst_rank:
        Target rank for RING messages (ignored otherwise).
    error:
        Error string on failed RESPONSEs (``None`` on success).
    errnum:
        Symbolic error code (see :mod:`repro.cmb.errors`) on failed
        RESPONSEs; rides the header frame next to ``error``.
    err_rank:
        Session rank where the error originated (``-1`` if none).
    hops:
        Number of broker hops taken so far (header-frame field).
    ctx:
        The :class:`RequestContext` of the logical request this message
        belongs to (``None`` for legacy/one-way messages).  Carried in
        the fixed-size header frame: attaching a context does not
        change :meth:`size`.
    span:
        Tracing context ``(trace_id, span_id)`` of the span that sent
        this message (``None`` when tracing is off).  Two small
        fixed-width ids in the header frame, so — like ``ctx`` — a
        span never changes :meth:`size`.
    """

    topic: str
    mtype: MessageType = MessageType.REQUEST
    payload: dict = field(default_factory=dict)
    msgid: int = field(default_factory=lambda: next(_msg_ids))
    src_rank: int = -1
    dst_rank: int = -1
    error: Optional[str] = None
    errnum: Optional[str] = None
    err_rank: int = -1
    hops: int = 0
    ctx: Optional[RequestContext] = None
    span: Optional[tuple] = None
    # Cached wire size: payloads are treated as immutable once a message
    # is built, and size() is evaluated on every forwarding hop —
    # re-serializing a multi-megabyte directory object per hop would
    # dominate simulation time (profiled at ~25%).
    _size_cache: Optional[int] = field(default=None, repr=False,
                                       compare=False)
    # Broker-attached delivery bookkeeping (`slots=True` forbids ad-hoc
    # attributes): the response route, the dispatching broker, the
    # dispatch timestamp and span.  Never copied across hops — see
    # :meth:`copy` — and excluded from equality/repr like _size_cache.
    _source: Any = field(default=None, repr=False, compare=False)
    _broker: Any = field(default=None, repr=False, compare=False)
    _obs_t0: Optional[float] = field(default=None, repr=False,
                                     compare=False)
    _obs_span: Any = field(default=None, repr=False, compare=False)

    def size(self) -> int:
        """Wire size in bytes: fixed header + canonical JSON payload."""
        if self._size_cache is None:
            self._size_cache = HEADER_BYTES + canonical_size(self.payload)
        return self._size_cache

    def module_name(self) -> str:
        """The module component of :attr:`topic` (``kvs`` of ``kvs.put``)."""
        return split_topic(self.topic)[0]

    def method_name(self) -> str:
        """The handler component of :attr:`topic` (``put`` of ``kvs.put``)."""
        return split_topic(self.topic)[1]

    def ensure_context(self, origin_rank: int = -1,
                       deadline: Optional[float] = None) -> RequestContext:
        """Attach (or return the existing) request context.

        Called at the request's origin; forward hops and proxy relays
        then carry the same frozen context object untouched.
        """
        if self.ctx is None:
            self.ctx = RequestContext(reqid=self.msgid,
                                      origin_rank=origin_rank,
                                      deadline=deadline)
        return self.ctx

    def make_response(self, payload: Optional[dict] = None,
                      error: Optional[str] = None,
                      errnum: Optional[str] = None,
                      err_rank: int = -1) -> "Message":
        """Build the RESPONSE correlated with this REQUEST/RING message.

        Failed responses should carry a symbolic ``errnum`` (see
        :mod:`repro.cmb.errors`) and the failing rank; both propagate
        losslessly through multi-hop relays back to the originator.
        """
        if error is not None:
            if errnum is None:
                errnum = EPROTO
        else:
            errnum = None
            err_rank = -1
        new = Message.__new__(Message)
        new.topic = self.topic
        new.mtype = MessageType.RESPONSE
        new.payload = payload if payload is not None else {}
        new.msgid = self.msgid
        new.src_rank = self.src_rank
        new.dst_rank = self.dst_rank
        new.error = error
        new.errnum = errnum
        new.err_rank = err_rank
        new.hops = 0
        new.ctx = self.ctx
        new.span = self.span
        new._size_cache = None
        new._source = None
        new._broker = None
        new._obs_t0 = None
        new._obs_span = None
        return new

    def copy(self, **changes: Any) -> "Message":
        """Shallow copy with field overrides (fresh msgid NOT assigned).

        Implemented as explicit slot assignments instead of
        ``dataclasses.replace`` — this runs on every forwarding hop, and
        ``replace`` pays a full keyword-argument ``__init__`` per call.
        The size cache survives unless the payload is overridden;
        broker-attached delivery bookkeeping never propagates to the
        copy (matching the old ``__dict__``-attribute behaviour).
        """
        new = Message.__new__(Message)
        new.topic = self.topic
        new.mtype = self.mtype
        new.payload = self.payload
        new.msgid = self.msgid
        new.src_rank = self.src_rank
        new.dst_rank = self.dst_rank
        new.error = self.error
        new.errnum = self.errnum
        new.err_rank = self.err_rank
        new.hops = self.hops
        new.ctx = self.ctx
        new.span = self.span
        new._size_cache = self._size_cache
        new._source = None
        new._broker = None
        new._obs_t0 = None
        new._obs_span = None
        if changes:
            if "payload" in changes and "_size_cache" not in changes:
                changes["_size_cache"] = None
            for name, value in changes.items():
                setattr(new, name, value)
        return new
