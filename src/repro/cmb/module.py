"""Comms-module plugin framework.

The paper implements Flux services as *comms modules*: "plugins which
are loaded into the CMB address space and pass messages over shared
memory".  A module instance lives inside each broker that loads it;
request messages whose topic head matches the module name are handed to
it, and the tree overlay lets instances of the same module aggregate
("reduce") upstream traffic between them.

Subclasses define request handlers as methods named ``req_<method>``
(``kvs.put`` dispatches to the ``kvs`` module's ``req_put``) and may
subscribe to event topics at :meth:`start` time.

Two service-layer facilities sit on top of the bare ``req_`` discovery:

- a **declarative handler registry** — decorating a handler with
  :func:`request_handler` records its required payload fields; the
  dispatcher validates them before the handler runs and auto-responds
  with a structured ``EINVAL`` error on violation, so every module gets
  uniform malformed-request handling for free;
- the **upstream proxy** :meth:`CommsModule.proxy_upstream` — the one
  canonical implementation of "forward this request toward the root and
  relay whatever comes back", preserving the request context (deadline,
  origin) on the way up and the structured error (code, failing rank)
  on the way back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from .errors import EINVAL, ENOSYS
from .message import Message

if TYPE_CHECKING:  # pragma: no cover
    from .broker import Broker

__all__ = ["CommsModule", "NoHandlerError", "request_handler"]


class NoHandlerError(Exception):
    """A module received a request for a method it does not implement.

    Surfaces to the originating client as ``RpcError(code="ENOSYS")``.
    """

    code = ENOSYS


def request_handler(*, required: tuple[str, ...] = ()
                    ) -> Callable[[Callable], Callable]:
    """Declare payload requirements for a ``req_<method>`` handler.

    ``required`` names payload fields that must be present; a request
    missing any of them is answered with a structured ``EINVAL`` error
    before the handler body runs::

        @request_handler(required=("key", "value"))
        def req_put(self, msg): ...

    Undecorated handlers keep the permissive legacy behaviour.
    """

    def mark(fn: Callable) -> Callable:
        fn.__rpc_required__ = tuple(required)
        return fn

    return mark


class CommsModule:
    """Base class for CMB service plugins.

    Attributes
    ----------
    name:
        The topic head this module claims (class attribute; subclasses
        must override).
    broker:
        The hosting :class:`~repro.cmb.broker.Broker` — provides
        messaging primitives (respond / rpc_up / publish / after).
    """

    name: str = ""

    #: Per-class handler registry: ``{method: required-field tuple}``,
    #: built once per subclass from the ``req_`` methods it defines.
    _handler_specs: dict[str, tuple[str, ...]] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        specs: dict[str, tuple[str, ...]] = {}
        for klass in reversed(cls.__mro__):
            for attr, fn in vars(klass).items():
                if attr.startswith("req_") and callable(fn):
                    specs[attr[len("req_"):]] = getattr(
                        fn, "__rpc_required__", ())
        cls._handler_specs = specs

    def __init__(self, broker: "Broker", **config: Any):
        if not self.name:
            raise ValueError(f"{type(self).__name__} must define a name")
        self.broker = broker
        self.config = config
        # Bound-handler memo filled by dispatch_request: getattr on an
        # f-string per request is measurable at KAP scale.
        self._handlers: dict[str, Callable[[Message], None]] = {}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Called once after the whole session is wired up."""

    def shutdown(self) -> None:
        """Called when the session is being torn down."""

    def node_failed(self) -> None:
        """Called by the fault injector when this module's own node
        dies (physical teardown, *not* a protocol notification: the
        broker is already dead and must not send messages).  Modules
        hosting simulated processes override this to kill them — a
        real process does not outlive its node."""

    def sync_metrics(self) -> None:
        """Push module-internal counters into the broker's metrics
        registry.  Called right before a registry snapshot is taken
        (``stats`` RPCs, ``mon`` samplers), so modules that keep their
        own hot-path counters (e.g. the KVS slave cache) need not pay
        registry bookkeeping per operation."""

    # -- dispatch --------------------------------------------------------
    @classmethod
    def handlers(cls) -> dict[str, tuple[str, ...]]:
        """The declarative handler registry: ``{method: required}``."""
        return dict(cls._handler_specs)

    def dispatch_request(self, msg: Message) -> None:
        """Route ``msg`` to ``req_<method>``; raise if unimplemented.

        Requests that fail the handler's declared payload validation
        are answered with a structured ``EINVAL`` error instead of
        reaching the handler body.
        """
        method = msg.method_name() or "default"
        # Existence check against the declarative handler registry —
        # the same per-class table repro.cmb.modules.request_registry()
        # exports to the static analysis layer, so a topic the linter
        # accepts is a topic this dispatcher serves (and vice versa).
        specs = self._handler_specs
        spec = specs.get(method)
        if spec is None and method not in specs:
            raise NoHandlerError(
                f"module {self.name!r} has no handler for "
                f"{msg.topic!r} at rank {self.broker.rank}")
        handler = self._handlers.get(method)
        if handler is None:
            handler = self._handlers[method] = getattr(
                self, "req_" + method)
        if spec:
            payload = msg.payload
            for f in spec:
                if f not in payload:
                    missing = [f for f in spec if f not in payload]
                    self.respond(
                        msg, error=(f"{msg.topic}: missing required "
                                    f"payload field(s) "
                                    f"{', '.join(missing)}"),
                        code=EINVAL)
                    return
        handler(msg)

    # -- convenience ---------------------------------------------------
    @property
    def rank(self) -> int:
        """Rank of the hosting broker."""
        return self.broker.rank

    @property
    def is_root(self) -> bool:
        """True on the session root (rank 0)."""
        return self.broker.rank == 0

    def respond(self, msg: Message, payload: Optional[dict] = None,
                error: Optional[str] = None, code: Optional[str] = None,
                err_rank: Optional[int] = None,
                payload_size: Optional[int] = None) -> None:
        """Answer a request this module received (possibly much later).

        Error responses carry the structured ``code`` (defaulting to
        ``EPROTO``) and the failing rank — this broker's, unless a
        relayed upstream failure supplies its own ``err_rank``.
        ``payload_size`` pre-seeds the response's wire-size cache when
        the caller already knows the payload's canonical byte size.
        """
        self.broker.respond(msg, payload, error=error, code=code,
                            err_rank=err_rank, payload_size=payload_size)

    def proxy_upstream(self, msg: Message, topic: Optional[str] = None,
                       transform: Optional[Callable[[dict], dict]] = None
                       ) -> None:
        """Forward ``msg`` to the tree parent and relay the response.

        The canonical "this instance is not authoritative — ask the
        next one up" idiom: the request payload is re-sent under
        ``topic`` (default: the original topic) with the original
        request context (so deadlines and origin survive the hop), and
        the eventual response — payload or structured error, including
        the failing rank — is relayed back to ``msg``'s source.

        ``transform`` optionally rewrites a *successful* response
        payload before relaying (aggregating proxies).
        """

        def relay(resp: Message) -> None:
            if resp.error is not None:
                self.respond(msg, None, error=resp.error,
                             code=resp.errnum, err_rank=resp.err_rank)
                return
            payload = dict(resp.payload)
            if transform is not None:
                payload = transform(payload)
            self.respond(msg, payload)

        self.broker.rpc_parent_cb(topic if topic is not None else msg.topic,
                                  dict(msg.payload), relay, ctx=msg.ctx,
                                  span=msg.span)

    def log(self, level: str, text: str) -> None:
        """Emit a log record through the session ``log`` module if
        loaded, else silently drop (mirrors optional module loading).
        """
        self.broker.log(level, f"{self.name}: {text}")
