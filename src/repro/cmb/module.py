"""Comms-module plugin framework.

The paper implements Flux services as *comms modules*: "plugins which
are loaded into the CMB address space and pass messages over shared
memory".  A module instance lives inside each broker that loads it;
request messages whose topic head matches the module name are handed to
it, and the tree overlay lets instances of the same module aggregate
("reduce") upstream traffic between them.

Subclasses define request handlers as methods named ``req_<method>``
(``kvs.put`` dispatches to the ``kvs`` module's ``req_put``) and may
subscribe to event topics at :meth:`start` time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from .message import Message

if TYPE_CHECKING:  # pragma: no cover
    from .broker import Broker

__all__ = ["CommsModule", "NoHandlerError"]


class NoHandlerError(Exception):
    """A module received a request for a method it does not implement."""


class CommsModule:
    """Base class for CMB service plugins.

    Attributes
    ----------
    name:
        The topic head this module claims (class attribute; subclasses
        must override).
    broker:
        The hosting :class:`~repro.cmb.broker.Broker` — provides
        messaging primitives (respond / rpc_up / publish / after).
    """

    name: str = ""

    def __init__(self, broker: "Broker", **config: Any):
        if not self.name:
            raise ValueError(f"{type(self).__name__} must define a name")
        self.broker = broker
        self.config = config

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Called once after the whole session is wired up."""

    def shutdown(self) -> None:
        """Called when the session is being torn down."""

    # -- dispatch --------------------------------------------------------
    def dispatch_request(self, msg: Message) -> None:
        """Route ``msg`` to ``req_<method>``; raise if unimplemented."""
        method = msg.method_name() or "default"
        handler: Optional[Callable[[Message], None]] = getattr(
            self, f"req_{method}", None)
        if handler is None:
            raise NoHandlerError(
                f"module {self.name!r} has no handler for "
                f"{msg.topic!r} at rank {self.broker.rank}")
        handler(msg)

    # -- convenience ---------------------------------------------------
    @property
    def rank(self) -> int:
        """Rank of the hosting broker."""
        return self.broker.rank

    @property
    def is_root(self) -> bool:
        """True on the session root (rank 0)."""
        return self.broker.rank == 0

    def respond(self, msg: Message, payload: Optional[dict] = None,
                error: Optional[str] = None) -> None:
        """Answer a request this module received (possibly much later)."""
        self.broker.respond(msg, payload, error=error)

    def log(self, level: str, text: str) -> None:
        """Emit a log record through the session ``log`` module if
        loaded, else silently drop (mirrors optional module loading).
        """
        self.broker.log(level, f"{self.name}: {text}")
