"""The Table I comms modules.

Every service the paper lists as a prototyped plugin: heartbeat
(``hb``), liveness (``live``), log reduction (``log``), monitoring
(``mon``), process groups (``group``), collective barriers
(``barrier``), bulk execution (``wexec``) and the resource service
(``resvc``).  The ninth, ``kvs``, lives in :mod:`repro.kvs.module`.
"""

from .barrier import BarrierModule
from .group import GroupModule
from .hb import HeartbeatModule
from .jobmgr import JobManagerModule
from .live import LiveModule
from .log import LogModule
from .mon import MonModule
from .resvc import ResvcModule
from .stats import StatsModule, registry_samplers
from .wexec import TaskContext, WexecModule

__all__ = [
    "BarrierModule", "GroupModule", "HeartbeatModule",
    "JobManagerModule", "LiveModule",
    "LogModule", "MonModule", "ResvcModule", "StatsModule",
    "TaskContext", "WexecModule", "registry_samplers",
]
