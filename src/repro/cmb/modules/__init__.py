"""The Table I comms modules — and the canonical topic registry.

Every service the paper lists as a prototyped plugin: heartbeat
(``hb``), liveness (``live``), log reduction (``log``), monitoring
(``mon``), process groups (``group``), collective barriers
(``barrier``), bulk execution (``wexec``) and the resource service
(``resvc``).  The ninth, ``kvs``, lives in :mod:`repro.kvs.module`.

This package is also the **single source of truth** for what topics
exist in a session:

- :func:`module_classes` maps every module's topic head to its class;
- :func:`request_registry` derives ``{module: frozenset(methods)}``
  from each class's declarative handler table
  (:meth:`~repro.cmb.module.CommsModule.handlers`) — the same table
  the broker dispatcher consults before answering ``ENOSYS``;
- :data:`EVENT_TOPICS` enumerates every event-plane topic the modules
  publish or subscribe to.

The static analysis layer (:mod:`repro.analysis.lint`) cross-checks
``rpc(...)``/``publish(...)`` call sites against these tables, so a
topic typo that would surface as a runtime ``ENOSYS`` is caught at
lint time — from the very registry the runtime itself dispatches on.
"""

from .barrier import BarrierModule
from .group import GroupModule
from .hb import HeartbeatModule
from .health import HealthModule
from .jobmgr import JobManagerModule
from .live import LiveModule
from .log import LogModule
from .mon import MonModule
from .resvc import ResvcModule
from .stats import StatsModule, registry_samplers
from .wexec import TaskContext, WexecModule

__all__ = [
    "BarrierModule", "GroupModule", "HealthModule", "HeartbeatModule",
    "JobManagerModule", "LiveModule",
    "LogModule", "MonModule", "ResvcModule", "StatsModule",
    "TaskContext", "WexecModule", "registry_samplers",
    "EVENT_TOPICS", "module_classes", "request_registry", "request_topics",
]

#: Every event-plane topic published (or relied upon via subscription)
#: by the standard module set.  ``fault`` is the paper's fault event
#: that makes every ``log`` instance dump its circular debug buffer.
EVENT_TOPICS = frozenset({
    "hb.pulse",
    "live.down",
    "live.reattach",
    "barrier.exit",
    "group.update",
    "mon.activate",
    "mon.deactivate",
    "health.activate",
    "health.deactivate",
    "health.update",
    "wexec.start",
    "wexec.signal",
    "wexec.done",
    "wexec.respawn",
    "wexec.lost",
    "job.state",
    "kvs.setroot",
    "kvs.delegation",
    "kvs.newmaster",
    "fault",
})


def module_classes() -> dict:
    """Topic head -> module class for the full Table I set.

    The ``kvs`` module lives in :mod:`repro.kvs` and is imported
    lazily here so that importing this package never cycles through
    the KVS client stack.
    """
    from ...kvs.module import KvsModule
    return {
        BarrierModule.name: BarrierModule,
        GroupModule.name: GroupModule,
        HealthModule.name: HealthModule,
        HeartbeatModule.name: HeartbeatModule,
        JobManagerModule.name: JobManagerModule,
        LiveModule.name: LiveModule,
        LogModule.name: LogModule,
        MonModule.name: MonModule,
        ResvcModule.name: ResvcModule,
        StatsModule.name: StatsModule,
        WexecModule.name: WexecModule,
        KvsModule.name: KvsModule,
    }


def request_registry() -> dict:
    """``{module: frozenset(handler methods)}`` for every module.

    Derived from each class's ``req_``-handler table — exactly the
    table :meth:`CommsModule.dispatch_request` checks before raising
    ``NoHandlerError`` (ENOSYS), so the linter and the runtime agree
    by construction.
    """
    return {name: frozenset(cls.handlers())
            for name, cls in module_classes().items()}


def request_topics() -> frozenset:
    """Every routable ``module.method`` request topic as a flat set
    (a bare module name addresses its ``default`` handler)."""
    out = set()
    for mod, methods in request_registry().items():
        for method in methods:
            out.add(f"{mod}.{method}" if method != "default" else mod)
            if method == "default":
                out.add(f"{mod}.default")
    return frozenset(out)
