"""``barrier`` — collective synchronization (Table I).

"Collective barriers provide synchronization across Flux groups."

Protocol: a client enters with ``barrier.enter {name, nprocs}``.  Each
broker tallies entries for the name — local clients plus count-carrying
relays from children — and forwards the increments upstream.  The root
publishes ``barrier.exit {name}`` once ``nprocs`` entries arrived;
every broker then releases its held local requests.  A short
aggregation window lets a broker coalesce near-simultaneous entries
into one upstream message (the tree-reduction the paper describes).
"""

from __future__ import annotations

from ..errors import EINVAL
from ..message import Message
from ..module import CommsModule, request_handler

__all__ = ["BarrierModule"]


class _BarrierState:
    __slots__ = ("nprocs", "pending_count", "held", "flush_scheduled",
                 "total")

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.pending_count = 0   # entries not yet forwarded upstream
        self.total = 0           # root only: entries seen session-wide
        self.held: list[Message] = []
        self.flush_scheduled = False


class BarrierModule(CommsModule):
    """Named counted barriers over the tree plane.

    Config
    ------
    window:
        Aggregation window in seconds before forwarding tallies
        upstream (default 50 µs; 0 forwards immediately).
    """

    name = "barrier"

    def __init__(self, broker, *, window: float = 5e-5):
        super().__init__(broker, window=window)
        self.window = window
        self._states: dict[str, _BarrierState] = {}
        self.completed: list[str] = []

    def start(self) -> None:
        self.broker.subscribe("barrier.exit", self._on_exit)

    # ------------------------------------------------------------------
    def _state_for(self, name: str, nprocs: int) -> _BarrierState:
        st = self._states.get(name)
        if st is None:
            st = self._states[name] = _BarrierState(nprocs)
        elif st.nprocs != nprocs:
            raise ValueError(f"barrier {name!r}: inconsistent nprocs")
        return st

    @request_handler(required=("name", "nprocs"))
    def req_enter(self, msg: Message) -> None:
        name = msg.payload["name"]
        nprocs = msg.payload["nprocs"]
        count = msg.payload.get("count", 1)
        try:
            st = self._state_for(name, nprocs)
        except ValueError as exc:
            self.respond(msg, error=str(exc), code=EINVAL)
            return
        if "count" not in msg.payload:
            # A real client entry: hold for release at exit time.
            st.held.append(msg)
        else:
            # A relayed tally from a child broker: acknowledge now.
            self.respond(msg, {})
        self._add(name, st, count)

    def _add(self, name: str, st: _BarrierState, count: int) -> None:
        if self.is_root:
            st.total += count
            if st.total >= st.nprocs:
                self.broker.publish("barrier.exit",
                                    {"name": name, "nprocs": st.nprocs})
            return
        st.pending_count += count
        if not st.flush_scheduled:
            st.flush_scheduled = True
            if self.window > 0:
                self.broker.after(self.window, lambda: self._flush(name))
            else:
                self._flush(name)

    def _flush(self, name: str) -> None:
        st = self._states.get(name)
        if st is None or st.pending_count == 0:
            if st is not None:
                st.flush_scheduled = False
            return
        count, st.pending_count = st.pending_count, 0
        st.flush_scheduled = False
        self.broker.rpc_parent_cb(
            "barrier.enter",
            {"name": name, "nprocs": st.nprocs, "count": count},
            lambda resp: None)

    def _on_exit(self, msg: Message) -> None:
        name = msg.payload["name"]
        st = self._states.pop(name, None)
        self.completed.append(name)
        if st is None:
            return
        for held in st.held:
            self.respond(held, {"name": name})
