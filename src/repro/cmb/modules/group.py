"""``group`` — process-group management (Table I).

"Flux groups define and manage collections of processes that can
participate in collective operations."

Membership is authoritative at the root instance (requests route
upstream to it); members are ``(rank, client_id)`` pairs.  Group
membership changes are announced as ``group.update`` events so any
broker or tool can track sizes without polling — e.g. a barrier over a
group uses the announced size as its ``nprocs``.
"""

from __future__ import annotations

from ..message import Message
from ..module import CommsModule, request_handler

__all__ = ["GroupModule"]


class GroupModule(CommsModule):
    """Named process groups, mastered at the session root.

    Load this module at the root only (``ModuleSpec(GroupModule,
    max_depth=0)``) so requests route up to one authoritative copy, or
    everywhere if each level should answer reads locally from the
    update events it has seen.
    """

    name = "group"

    def __init__(self, broker):
        super().__init__(broker)
        self.groups: dict[str, list[list]] = {}

    def start(self) -> None:
        self.broker.subscribe("group.update", self._on_update)

    # ------------------------------------------------------------------
    @request_handler(required=("name", "rank", "client"))
    def req_join(self, msg: Message) -> None:
        name = msg.payload["name"]
        member = [msg.payload["rank"], msg.payload["client"]]
        members = self.groups.setdefault(name, [])
        if member not in members:
            members.append(member)
        self.broker.publish("group.update",
                            {"name": name, "size": len(members)})
        self.respond(msg, {"name": name, "size": len(members)})

    @request_handler(required=("name", "rank", "client"))
    def req_leave(self, msg: Message) -> None:
        name = msg.payload["name"]
        member = [msg.payload["rank"], msg.payload["client"]]
        members = self.groups.get(name, [])
        if member in members:
            members.remove(member)
        self.broker.publish("group.update",
                            {"name": name, "size": len(members)})
        self.respond(msg, {"name": name, "size": len(members)})

    @request_handler(required=("name",))
    def req_list(self, msg: Message) -> None:
        name = msg.payload["name"]
        members = self.groups.get(name, [])
        self.respond(msg, {"name": name,
                           "members": [list(m) for m in members],
                           "size": len(members)})

    @request_handler(required=("name",))
    def req_size(self, msg: Message) -> None:
        name = msg.payload["name"]
        self.respond(msg, {"name": name,
                           "size": len(self.groups.get(name, []))})

    # ------------------------------------------------------------------
    def _on_update(self, msg: Message) -> None:
        # Non-authoritative instances remember announced sizes so local
        # reads stay cheap.
        if not self.is_root:
            self.groups.setdefault(msg.payload["name"], [])
