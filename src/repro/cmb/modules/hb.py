"""``hb`` — session heartbeat (Table I).

"A periodic heartbeat event multicast across the comms session
synchronizes background activity to reduce scheduling jitter."

The root broker's instance publishes ``hb.pulse {epoch}`` events at a
configurable period; every other module that wants synchronized
background work (``live`` hellos, ``mon`` sampling, KVS cache expiry)
subscribes to the pulse instead of running free timers.
"""

from __future__ import annotations

from typing import Optional

from ..message import Message
from ..module import CommsModule

__all__ = ["HeartbeatModule"]


class HeartbeatModule(CommsModule):
    """Heartbeat generator (root) / observer (everywhere).

    Config
    ------
    period:
        Seconds between pulses (default 0.1 s).
    max_epochs:
        Stop after this many pulses (``None`` = run forever); tests and
        bounded simulations set this so the event heap drains.
    """

    name = "hb"

    def __init__(self, broker, *, period: float = 0.1,
                 max_epochs: Optional[int] = None):
        super().__init__(broker, period=period, max_epochs=max_epochs)
        self.period = period
        self.max_epochs = max_epochs
        self.epoch = 0
        self._beating = False

    def start(self) -> None:
        self.broker.subscribe("hb.pulse", self._on_pulse)
        if self.is_root:
            self._beating = True
            self.broker.after(self.period, self._beat)

    def ensure_beating(self) -> None:
        """Adopt the pulse-generator role — called by the ``live``
        module when this broker becomes the acting overlay root after
        the static root died (the heartbeat must not die with it).
        Idempotent; picks up from this broker's observed epoch."""
        if self._beating or not self.broker.alive:
            return
        self._beating = True
        self.broker.after(self.period, self._beat)

    def _beat(self) -> None:
        if not self.broker.alive:
            return
        next_epoch = self.epoch + 1
        self.broker.publish("hb.pulse", {"epoch": next_epoch})
        if self.max_epochs is None or next_epoch < self.max_epochs:
            self.broker.after(self.period, self._beat)

    def _on_pulse(self, msg: Message) -> None:
        self.epoch = max(self.epoch, msg.payload["epoch"])

    def req_get(self, msg: Message) -> None:
        """Report the last observed epoch (``hb.get`` RPC)."""
        self.respond(msg, {"epoch": self.epoch, "period": self.period})
