"""``health`` — tree-reduced cluster health (live observability plane).

Zhang et al.'s monitoring study (PAPERS.md) argues hierarchical
information services must be bounded-overhead and tree-aggregated;
this module applies that to *self*-monitoring.  Once activated
(``health.activate``), every broker samples its own vitals at each
``hb.pulse`` — inbox depth/peak, in-flight forwarded RPCs, retry
amplification over the last epoch, KVS dirty ops / held fences /
version waiters, wexec respawn burn, flight-ring pressure — classifies
itself ``ok`` / ``degraded`` / ``overloaded`` against configurable
thresholds, and reduces the classification census up the tree exactly
like :mod:`~repro.cmb.modules.mon` (one message per broker per epoch).

The root folds the census into a cluster state (worst state with at
least ``quorum_frac`` of one broker, i.e. any non-ok broker degrades
the cluster) and publishes a ``health.update`` event *only on state
transitions*, so a healthy session pays one reduction per heartbeat
and zero event fanouts.

Like ``mon``, the module is passive until activated: loading it adds
subscriptions only, so fault-free event streams (and their replay
fingerprints) are untouched.
"""

from __future__ import annotations

from typing import Optional

from ..message import Message
from ..module import CommsModule, request_handler

__all__ = ["HealthModule", "HEALTH_STATES"]

#: Classification ladder; index = severity.
HEALTH_STATES = ("ok", "degraded", "overloaded")


def _merge(a: dict, b: dict) -> dict:
    """Fold two partial health aggregates (associative/commutative)."""
    return {
        "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
        "inbox_sum": a["inbox_sum"] + b["inbox_sum"],
        "inbox_max": max(a["inbox_max"], b["inbox_max"]),
        "pending_max": max(a["pending_max"], b["pending_max"]),
        "retry_amp_max": max(a["retry_amp_max"], b["retry_amp_max"]),
        "dirty_sum": a["dirty_sum"] + b["dirty_sum"],
        "respawn_sum": a["respawn_sum"] + b["respawn_sum"],
        "worst": max(a["worst"], b["worst"]),
    }


class HealthModule(CommsModule):
    """Periodic self-health snapshots, tree-reduced to a cluster view.

    Config
    ------
    thresholds:
        Overrides for the classification thresholds (see
        ``DEFAULT_THRESHOLDS``); partial dicts merge over defaults.
    view_cap:
        Completed cluster views retained at the root (default 64).
    """

    name = "health"

    #: Pending epochs older than this many pulses are dropped (same
    #: rationale as ``MonModule.STALE_EPOCHS``).
    STALE_EPOCHS = 8

    DEFAULT_THRESHOLDS = {
        "inbox_degraded": 16, "inbox_overloaded": 64,
        "pending_degraded": 32, "pending_overloaded": 128,
        "retry_amp_degraded": 0.5, "retry_amp_overloaded": 2.0,
    }

    def __init__(self, broker, *, thresholds: Optional[dict] = None,
                 view_cap: int = 64):
        super().__init__(broker, thresholds=thresholds,
                         view_cap=view_cap)
        self.thresholds = dict(self.DEFAULT_THRESHOLDS)
        if thresholds:
            self.thresholds.update(thresholds)
        self.view_cap = view_cap
        self.active = False
        # epoch -> {"acc": acc, "contrib": count}
        self._pending: dict[int, dict] = {}
        # Root only: completed cluster views, newest last.
        self.views: list[dict] = []
        self.cluster_state = "unknown"
        # Baselines for per-epoch deltas (retry amplification).
        self._base = {"retransmits": 0, "reroutes": 0, "requests": 0,
                      "respawns": 0}
        self._g_state = broker.registry.gauge("health_state")
        self._c_transitions = broker.registry.counter(
            "health_transitions_total")

    def start(self) -> None:
        self.broker.subscribe("hb.pulse", self._on_pulse)
        self.broker.subscribe("health.activate", self._on_activate)
        self.broker.subscribe("health.deactivate", self._on_deactivate)
        self.broker.subscribe("live.down", self._on_down)

    # ------------------------------------------------------------------
    # activation (root RPCs -> session-wide events)
    # ------------------------------------------------------------------
    def req_activate(self, msg: Message) -> None:
        """Root RPC: start health sampling session-wide.  A
        ``thresholds`` dict in the payload overrides the module
        defaults on every broker (partial dicts merge)."""
        th = dict(self.thresholds)
        th.update(msg.payload.get("thresholds") or {})
        self.broker.publish("health.activate", {"thresholds": th})
        self.respond(msg, {"active": True, "thresholds": th})

    def req_deactivate(self, msg: Message) -> None:
        self.broker.publish("health.deactivate", {})
        self.respond(msg, {"active": False})

    def _on_activate(self, msg: Message) -> None:
        th = msg.payload.get("thresholds")
        if th:
            self.thresholds.update(th)
        if not self.active:
            self.active = True
            self._rebase()

    def _on_deactivate(self, msg: Message) -> None:
        self.active = False
        self._pending.clear()

    def _rebase(self) -> None:
        """Reset delta baselines so the first epoch after activation
        reports activity *since* activation, not since boot."""
        b = self.broker
        self._base = {"retransmits": b.retransmits,
                      "reroutes": b.reroutes,
                      "requests": b.requests_handled,
                      "respawns": self._respawns()}

    def _respawns(self) -> int:
        wexec = self.broker.modules.get("wexec")
        return wexec.respawns if wexec is not None else 0

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def local_sample(self) -> dict:
        """This broker's vitals right now (deltas since last epoch)."""
        b = self.broker
        depth = len(b._inbox._items)
        peak, b.inbox_peak = max(b.inbox_peak, depth), 0
        d_rt = b.retransmits - self._base["retransmits"]
        d_rr = b.reroutes - self._base["reroutes"]
        d_req = b.requests_handled - self._base["requests"]
        d_spawn = self._respawns() - self._base["respawns"]
        self._rebase()
        retry_amp = (d_rt + d_rr) / max(1, d_req)
        sample = {
            "inbox_depth": depth,
            "inbox_peak": peak,
            "pending_rpcs": len(b._pending),
            "retry_amp": retry_amp,
            "respawn_delta": d_spawn,
            "flight_dropped": b.flight.dropped,
            "dirty_ops": 0, "held_fences": 0, "version_waiters": 0,
        }
        kvs = b.modules.get("kvs")
        if kvs is not None:
            sample["dirty_ops"] = sum(len(d.ops)
                                      for d in kvs._dirty.values())
            sample["held_fences"] = sum(len(agg.held)
                                        for agg in kvs._fences.values())
            sample["version_waiters"] = len(kvs._version_waiters)
        sample["state"] = HEALTH_STATES[self.classify(sample)]
        return sample

    def classify(self, sample: dict) -> int:
        """Threshold ladder over one local sample -> state index."""
        th = self.thresholds
        peak = sample["inbox_peak"]
        pend = sample["pending_rpcs"]
        amp = sample["retry_amp"]
        if (peak >= th["inbox_overloaded"]
                or pend >= th["pending_overloaded"]
                or amp >= th["retry_amp_overloaded"]):
            return 2
        if (peak >= th["inbox_degraded"]
                or pend >= th["pending_degraded"]
                or amp >= th["retry_amp_degraded"]):
            return 1
        return 0

    def _acc_of(self, sample: dict, state: int) -> dict:
        counts = [0, 0, 0]
        counts[state] = 1
        return {"counts": counts,
                "inbox_sum": sample["inbox_depth"],
                "inbox_max": sample["inbox_peak"],
                "pending_max": sample["pending_rpcs"],
                "retry_amp_max": sample["retry_amp"],
                "dirty_sum": sample["dirty_ops"],
                "respawn_sum": sample["respawn_delta"],
                "worst": state}

    # ------------------------------------------------------------------
    # reduction (mon-style epoch aggregation)
    # ------------------------------------------------------------------
    def _expected(self) -> int:
        return 1 + sum(1 for c in self.broker.children
                       if self.broker.session.brokers[c].alive)

    def _on_pulse(self, msg: Message) -> None:
        if not self.active:
            return
        epoch = msg.payload["epoch"]
        sample = self.local_sample()
        state = HEALTH_STATES.index(sample["state"])
        self._g_state.set(state)
        self._contribute(epoch, self._acc_of(sample, state))
        for old in [e for e in self._pending
                    if e <= epoch - self.STALE_EPOCHS]:
            del self._pending[old]

    def _on_down(self, msg: Message) -> None:
        if not self.active:
            return

        def recheck() -> None:
            for epoch in list(self._pending):
                self._maybe_complete(epoch)
        self.broker.after(0.0, recheck)

    @request_handler(required=("epoch", "acc", "contrib"))
    def req_sample(self, msg: Message) -> None:
        """A child subtree's partial health aggregate."""
        p = msg.payload
        self.respond(msg, {})
        if not self.active:
            return
        self._contribute(p["epoch"], p["acc"], count=p["contrib"])

    def _contribute(self, epoch: int, acc: dict, count: int = 1) -> None:
        slot = self._pending.get(epoch)
        if slot is None:
            self._pending[epoch] = {"acc": acc, "contrib": count}
        else:
            slot["acc"] = _merge(slot["acc"], acc)
            slot["contrib"] += count
        self._maybe_complete(epoch)

    def _maybe_complete(self, epoch: int) -> None:
        slot = self._pending.get(epoch)
        if slot is None or slot["contrib"] < self._expected():
            return
        del self._pending[epoch]
        if not self.is_root:
            # One message (= one contribution toward the parent's
            # ``_expected``) per completed subtree; broker totals ride
            # inside the acc's state census.
            self.broker.rpc_parent_cb(
                "health.sample",
                {"epoch": epoch, "acc": slot["acc"], "contrib": 1},
                lambda resp: None)
            return
        self._complete_root(epoch, slot["acc"])

    def _complete_root(self, epoch: int, acc: dict) -> None:
        state = HEALTH_STATES[acc["worst"]]
        view = {"epoch": epoch, "t": self.broker.sim.now,
                "state": state, "brokers": sum(acc["counts"]),
                "counts": dict(zip(HEALTH_STATES, acc["counts"])),
                "inbox_sum": acc["inbox_sum"],
                "inbox_max": acc["inbox_max"],
                "pending_max": acc["pending_max"],
                "retry_amp_max": acc["retry_amp_max"],
                "dirty_sum": acc["dirty_sum"],
                "respawn_sum": acc["respawn_sum"]}
        self.views.append(view)
        if len(self.views) > self.view_cap:
            del self.views[:len(self.views) - self.view_cap]
        if state != self.cluster_state:
            self.cluster_state = state
            self._c_transitions.inc()
            self.broker.publish("health.update",
                                {"state": state, "epoch": epoch,
                                 "counts": view["counts"]})

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def cluster_view(self) -> dict:
        """Latest cluster view (root; post-mortem bundles call this)."""
        if self.views:
            return dict(self.views[-1], cluster_state=self.cluster_state)
        return {"state": self.cluster_state, "epoch": -1,
                "cluster_state": self.cluster_state}

    def req_view(self, msg: Message) -> None:
        """Root RPC: the latest reduced cluster health view."""
        self.respond(msg, {"view": self.cluster_view(),
                           "n_views": len(self.views)})

    def req_local(self, msg: Message) -> None:
        """Any rank: this broker's local vitals, classified."""
        self.respond(msg, dict(self.local_sample()))

    def sync_metrics(self) -> None:
        if self.is_root and self.views:
            reg = self.broker.registry
            view = self.views[-1]
            reg.gauge("health_cluster_state").set(
                HEALTH_STATES.index(view["state"]))
            reg.gauge("health_brokers_reporting").set(view["brokers"])
