"""``job`` — in-band job submission (the flux-submit path).

The unified job model makes every Flux instance "an independent RJMS
instance that ... can run its own job management services, which then
can recursively accept and schedule (sub-)jobs".  This module is that
acceptance surface: programs running *inside* a session submit work to
the owning instance over the CMB instead of through out-of-band Python
calls — which is how real workflows (and nested instances) feed jobs
into Flux.

Requests route upstream to the root broker, whose instance hook
enqueues the spec; job state lands in the KVS (``lwj.<id>.state``, via
the instance's job-record path) and a ``job.state`` event announces
every transition so submitters can wait without polling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..errors import EINVAL, ENOENT, ENOSYS
from ..message import Message
from ..module import CommsModule, request_handler

if TYPE_CHECKING:  # pragma: no cover
    from ...core.job import Job

__all__ = ["JobManagerModule"]


class JobManagerModule(CommsModule):
    """CMB front-end for an instance's scheduler.

    The hosting :class:`~repro.core.instance.FluxInstance` attaches
    itself via :meth:`bind` on the root broker's module; submissions
    arriving anywhere in the session route upstream to it.

    Accepted spec fields (JSON): ``ncores`` (required), ``duration``,
    ``walltime``, ``name``, ``task``, ``ntasks``, ``task_args``,
    ``min_cores``, ``max_cores``, ``malleable``, ``serial_fraction``.
    """

    name = "job"

    def __init__(self, broker):
        super().__init__(broker)
        self._submit_hook: Optional[Callable[[dict], "Job"]] = None
        self._jobs: dict[int, "Job"] = {}

    def bind(self, submit_hook: Callable[[dict], "Job"]) -> None:
        """Attach the owning instance's submit function (root only)."""
        self._submit_hook = submit_hook

    # ------------------------------------------------------------------
    def req_submit(self, msg: Message) -> None:
        if self._submit_hook is None:
            # Not the root (or no instance attached): let the request
            # keep climbing by re-routing through the parent.
            if self.broker.parent is not None:
                self.proxy_upstream(msg)
                return
            self.respond(msg, error="no job manager bound at the root",
                         code=ENOSYS)
            return
        try:
            job = self._submit_hook(dict(msg.payload))
        except (ValueError, TypeError, RuntimeError) as exc:
            self.respond(msg, error=f"rejected: {exc}", code=EINVAL)
            return
        self._jobs[job.jobid] = job
        self.broker.publish("job.state", {"jobid": job.jobid,
                                          "state": "pending",
                                          "name": job.spec.name})
        self.respond(msg, {"jobid": job.jobid})

    def announce(self, job: "Job") -> None:
        """Publish a state transition (called by the instance hook)."""
        self.broker.publish("job.state", {"jobid": job.jobid,
                                          "state": job.state.value,
                                          "name": job.spec.name})

    @request_handler(required=("jobid",))
    def req_info(self, msg: Message) -> None:
        """Query one submitted job's current state (root)."""
        if self._submit_hook is None and self.broker.parent is not None:
            self.proxy_upstream(msg)
            return
        job = self._jobs.get(msg.payload.get("jobid"))
        if job is None:
            self.respond(msg,
                         error=f"unknown job {msg.payload.get('jobid')}",
                         code=ENOENT)
            return
        self.respond(msg, {
            "jobid": job.jobid,
            "state": job.state.value,
            "name": job.spec.name,
            "ncores": job.spec.ncores,
            "submit_time": job.submit_time,
            "start_time": job.start_time,
            "end_time": job.end_time,
            "error": job.error,
        })

    def req_list(self, msg: Message) -> None:
        """List jobs submitted through this module (root)."""
        if self._submit_hook is None and self.broker.parent is not None:
            self.proxy_upstream(msg)
            return
        self.respond(msg, {"jobs": [
            {"jobid": j.jobid, "state": j.state.value,
             "name": j.spec.name}
            for j in self._jobs.values()]})
