"""``job`` — in-band job submission (the flux-submit path).

The unified job model makes every Flux instance "an independent RJMS
instance that ... can run its own job management services, which then
can recursively accept and schedule (sub-)jobs".  This module is that
acceptance surface: programs running *inside* a session submit work to
the owning instance over the CMB instead of through out-of-band Python
calls — which is how real workflows (and nested instances) feed jobs
into Flux.

Requests route upstream to the root broker, whose instance hook
enqueues the spec; a ``job.state`` event announces every transition so
submitters can wait without polling.

Durability & failover
---------------------
The paper's resiliency story is that job state lives in the KVS so any
part of the instance can be reconstructed after a failure.  This
module is the journaling point: every lifecycle transition (``pending
→ scheduled → running → complete/failed/timeout/cancelled``) is
committed under ``lwj.<jobid>.state`` with a one-time ``lwj.<jobid>.
spec`` record beside it.  Every broker additionally mirrors the
``job.state`` event stream into a local record table.

When the root dies, the overlay elects an acting root (PR 6's
``live`` takeover).  The acting root's ``job`` module holds a
*standby* copy of the instance's submit hook: on takeover it activates
the hook (new submissions keep flowing into the scheduler), serves
``job.info`` / ``job.list`` from the event-sourced mirror, and runs a
recovery pass over the KVS journal to restore any record the event
stream missed — the durable store, not the dead broker's memory, is
the source of truth.

Overload guardrail
------------------
``bind(..., max_pending=N)`` bounds the instance's pending queue at
the admission boundary: an over-limit submission is rejected with a
*retryable* ``EAGAIN`` error, so well-behaved clients back off and
retry through the standard retry machinery instead of growing an
unbounded backlog (graceful degradation under demand spikes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import EAGAIN, EINVAL, ENOENT, ENOSYS, RpcError
from ..message import Message
from ..module import CommsModule, request_handler

if TYPE_CHECKING:  # pragma: no cover
    from ...core.job import Job

__all__ = ["JobManagerModule"]

#: Record fields served by ``job.info`` (and mirrored/recovered).
_INFO_FIELDS = ("jobid", "state", "name", "ncores", "submit_time",
                "start_time", "end_time", "error")


class JobManagerModule(CommsModule):
    """CMB front-end for an instance's scheduler.

    The hosting :class:`~repro.core.instance.FluxInstance` attaches
    itself via :meth:`bind` on the root broker's module (and in
    standby mode on every other broker, arming failover); submissions
    arriving anywhere in the session route upstream to the active one.

    Accepted spec fields (JSON): ``ncores`` (required), ``duration``,
    ``walltime``, ``name``, ``task``, ``ntasks``, ``task_args``,
    ``min_cores``, ``max_cores``, ``malleable``, ``serial_fraction``.
    """

    name = "job"

    #: JobSpec fields journalled into ``lwj.<jobid>.spec``.
    _SPEC_FIELDS = ("ncores", "duration", "walltime", "name", "task",
                    "ntasks")

    #: Per-RPC deadline for the takeover recovery reads.  A dead or
    #: mid-election KVS peer then answers ``ETIMEDOUT`` (retryable)
    #: instead of parking the recovery proc forever; the backoff loop
    #: absorbs the retries.
    RECOVER_RPC_TIMEOUT = 5.0

    def __init__(self, broker):
        super().__init__(broker)
        self._submit_hook: Optional[Callable[[dict], "Job"]] = None
        self._standby_hook: Optional[Callable[[dict], "Job"]] = None
        self._depth_fn: Optional[Callable[[], int]] = None
        self._max_pending = 0
        self._on_takeover: Optional[Callable[["JobManagerModule"],
                                             None]] = None
        self._jobs: dict[int, "Job"] = {}
        #: Promoted acting root: announce *every* journaled transition,
        #: not just its own in-band submissions — jobs accepted by the
        #: dead root still have waiters listening for their terminal
        #: ``job.state`` event.
        self._announce_all = False
        #: Event-sourced mirror of every announced transition (all
        #: brokers), upserted by the KVS recovery pass on takeover.
        self._records: dict[int, dict] = {}
        self._spec_written: set[int] = set()
        self.rejected = 0
        self.takeovers = 0
        self.recovered_jobs = 0

    def bind(self, submit_hook: Callable[[dict], "Job"], *,
             depth_fn: Optional[Callable[[], int]] = None,
             max_pending: int = 0,
             standby: bool = False,
             on_takeover: Optional[Callable[["JobManagerModule"],
                                            None]] = None) -> None:
        """Attach the owning instance's submit function.

        ``standby=True`` arms the hook without activating it — the
        module serves nothing extra until a root takeover promotes it.
        ``depth_fn``/``max_pending`` configure admission control;
        ``on_takeover`` is invoked (with this module) at promotion so
        the instance can re-home its journaling.
        """
        if standby:
            self._standby_hook = submit_hook
        else:
            self._submit_hook = submit_hook
        self._depth_fn = depth_fn
        self._max_pending = max_pending
        self._on_takeover = on_takeover

    def start(self) -> None:
        self.broker.subscribe("job.state", self._on_state_event)
        self.broker.subscribe("live.down", self._on_live_down)

    def sync_metrics(self) -> None:
        reg = self.broker.registry
        reg.gauge("job_rejected_total", ns=self.name).set(self.rejected)
        reg.gauge("job_takeovers_total", ns=self.name).set(self.takeovers)

    # ------------------------------------------------------------------
    # submission (with the EAGAIN admission guardrail)
    # ------------------------------------------------------------------
    @request_handler(required=("ncores",))
    def req_submit(self, msg: Message) -> None:
        if self._submit_hook is None:
            # Not the active manager: let the request keep climbing by
            # re-routing through the parent.
            if self.broker.parent is not None:
                self.proxy_upstream(msg)
                return
            self.respond(msg, error="no job manager bound at the root",
                         code=ENOSYS)
            return
        if self._max_pending and self._depth_fn is not None \
                and self._depth_fn() >= self._max_pending:
            # Bounded backlog: shed load with a *retryable* error so
            # clients back off and re-offer instead of queue-stuffing.
            self.rejected += 1
            self.respond(
                msg, error=(f"pending queue full "
                            f"({self._max_pending} jobs); try again"),
                code=EAGAIN)
            return
        try:
            job = self._submit_hook(dict(msg.payload))
        except (ValueError, TypeError, RuntimeError) as exc:
            self.respond(msg, error=f"rejected: {exc}", code=EINVAL)
            return
        self._jobs[job.jobid] = job
        self.broker.publish("job.state", {"jobid": job.jobid,
                                          "state": "pending",
                                          "name": job.spec.name})
        self.respond(msg, {"jobid": job.jobid})

    # ------------------------------------------------------------------
    # durable journal
    # ------------------------------------------------------------------
    def announce(self, job: "Job") -> None:
        """Publish a state transition (called by the instance hook)."""
        self.broker.publish("job.state", {"jobid": job.jobid,
                                          "state": job.state.value,
                                          "name": job.spec.name})

    def journal(self, job: "Job", state: str, t: float) -> None:
        """Durably record ``job``'s transition to ``state``: KVS
        journal + local record mirror + (for in-band submissions) a
        ``job.state`` event.  Called by the owning instance on every
        lifecycle edge."""
        self.broker._frec(self.broker.sim.now, "job_state",
                          job.jobid, state, None)
        rec = self._records.setdefault(job.jobid, {})
        rec.update(jobid=job.jobid, state=state, name=job.spec.name,
                   ncores=job.spec.ncores, submit_time=job.submit_time,
                   start_time=job.start_time, end_time=job.end_time,
                   error=job.error)
        kvs = self.broker.modules.get("kvs")
        if kvs is not None and self.broker.alive:
            sender = ("job-manager", job.jobid)
            if job.jobid not in self._spec_written:
                self._spec_written.add(job.jobid)
                kvs.local_put(sender, f"lwj.{job.jobid}.spec",
                              {f: getattr(job.spec, f)
                               for f in self._SPEC_FIELDS})
            kvs.local_put(sender, f"lwj.{job.jobid}.state",
                          {"state": state, "t": t,
                           "ncores": job.spec.ncores,
                           "name": job.spec.name,
                           "submit_time": job.submit_time,
                           "start_time": job.start_time,
                           "end_time": job.end_time,
                           "error": job.error})
            kvs.local_commit(sender)
        if self.broker.alive \
                and (job.jobid in self._jobs or self._announce_all):
            self.broker.publish("job.state", {"jobid": job.jobid,
                                              "state": state,
                                              "name": job.spec.name})

    def _on_state_event(self, msg: Message) -> None:
        p = msg.payload
        rec = self._records.setdefault(p["jobid"], {})
        rec.setdefault("jobid", p["jobid"])
        rec["state"] = p["state"]
        rec.setdefault("name", p.get("name", ""))

    # ------------------------------------------------------------------
    # root-death failover
    # ------------------------------------------------------------------
    def _on_live_down(self, msg: Message) -> None:
        if self._submit_hook is not None or self._standby_hook is None:
            return
        # Defer one tick: the live module's own handler (later in the
        # module start order) heals the overlay first, so the
        # parent-pointer test below sees the post-takeover shape.
        self.broker.after(0.0, self._maybe_take_over)

    def _maybe_take_over(self) -> None:
        if (not self.broker.alive or self.broker.parent is not None
                or self._submit_hook is not None
                or self._standby_hook is None):
            return
        self._submit_hook = self._standby_hook
        self._announce_all = True
        self.takeovers += 1
        self.log("err", f"job manager failing over to rank {self.rank}")
        self.broker.sim.spawn(self._recover_proc(),
                              name=f"jobmgr-recover:{self.rank}")
        if self._on_takeover is not None:
            self._on_takeover(self)

    def _recover_proc(self):
        """Rebuild the record table from the KVS journal (acting root).

        The KVS may itself be mid-failover (replica election), so
        transient errors are retried with backoff; a definitive
        ``ENOENT`` just means no job ever ran.
        """
        delay = 0.02
        names: list = []
        for _attempt in range(8):
            try:
                resp = yield self.broker.rpc_up(
                    "kvs.get", {"key": "lwj"},
                    deadline=self.broker.sim.now
                    + self.RECOVER_RPC_TIMEOUT)
            except RpcError as exc:
                if exc.retryable:
                    yield self.broker.sim.timeout(delay)
                    delay *= 2
                    continue
                return
            names = [n for n in resp.get("dir", []) if n.isdigit()]
            break
        for jobid_name in names:
            jobid = int(jobid_name)
            try:
                st = yield self.broker.rpc_up(
                    "kvs.get", {"key": f"lwj.{jobid_name}.state"},
                    deadline=self.broker.sim.now
                    + self.RECOVER_RPC_TIMEOUT)
            except RpcError:
                continue
            val = st.get("value")
            if not isinstance(val, dict):
                continue
            rec = self._records.setdefault(jobid, {})
            # The event-sourced mirror may already be *newer* than the
            # journal read (a transition landed while we recovered):
            # only fill fields the mirror does not have.
            rec.setdefault("jobid", jobid)
            rec.setdefault("state", val.get("state"))
            rec.setdefault("name", val.get("name", ""))
            for f in ("ncores", "submit_time", "start_time", "end_time",
                      "error"):
                rec.setdefault(f, val.get(f))
            self.recovered_jobs += 1
        self.log("err", f"job manager recovered {self.recovered_jobs} "
                        f"job records from the KVS journal")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _record_view(self, jobid: int) -> Optional[dict]:
        job = self._jobs.get(jobid)
        if job is not None:
            return {
                "jobid": job.jobid,
                "state": job.state.value,
                "name": job.spec.name,
                "ncores": job.spec.ncores,
                "submit_time": job.submit_time,
                "start_time": job.start_time,
                "end_time": job.end_time,
                "error": job.error,
            }
        rec = self._records.get(jobid)
        if rec is None:
            return None
        return {f: rec.get(f) for f in _INFO_FIELDS}

    def _serves_queries(self) -> bool:
        """Whether this broker answers info/list itself: the active
        manager, or any parent-less broker (root role — possibly an
        acting root still mid-promotion, which then serves its
        mirror rather than erroring)."""
        return self._submit_hook is not None or self.broker.parent is None

    @request_handler(required=("jobid",))
    def req_info(self, msg: Message) -> None:
        """Query one submitted job's current state (root)."""
        if not self._serves_queries():
            self.proxy_upstream(msg)
            return
        view = self._record_view(msg.payload.get("jobid"))
        if view is None:
            self.respond(msg,
                         error=f"unknown job {msg.payload.get('jobid')}",
                         code=ENOENT)
            return
        self.respond(msg, view)

    def req_list(self, msg: Message) -> None:
        """List jobs submitted through this module (root)."""
        if not self._serves_queries():
            self.proxy_upstream(msg)
            return
        seen: dict[int, dict] = {}
        for jobid in list(self._jobs) + list(self._records):
            if jobid not in seen:
                view = self._record_view(jobid)
                if view is not None:
                    seen[jobid] = {"jobid": view["jobid"],
                                   "state": view["state"],
                                   "name": view["name"]}
        self.respond(msg, {"jobs": list(seen.values())})
