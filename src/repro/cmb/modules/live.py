"""``live`` — liveness detection and overlay self-healing (Table I).

"Each tree node receives heartbeat-synchronized hello messages from
its children.  After a configurable number of missed messages, a
liveliness event is issued for a dead child."

On every ``hb.pulse`` each non-root broker sends ``live.hello`` to its
current tree parent; parents track the last epoch heard from each
child.  A child silent for ``missed_max`` consecutive epochs is
declared dead via a session-wide ``live.down`` event, upon which every
broker rewires around the corpse (orphans re-attach to their
grandparent — the paper's "self-heal when interior nodes fail").
"""

from __future__ import annotations

from ..message import Message
from ..module import CommsModule, request_handler

__all__ = ["LiveModule"]


class LiveModule(CommsModule):
    """Liveness tracking driven by the heartbeat.

    Config
    ------
    missed_max:
        Consecutive missed hellos before a child is declared dead
        (default 3).
    """

    name = "live"

    def __init__(self, broker, *, missed_max: int = 3):
        super().__init__(broker, missed_max=missed_max)
        self.missed_max = missed_max
        self.last_heard: dict[int, int] = {}
        self.epoch = 0
        self.announced: set[int] = set()

    def start(self) -> None:
        self.broker.subscribe("hb.pulse", self._on_pulse)
        self.broker.subscribe("live.down", self._on_down)
        for child in self.broker.children:
            self.last_heard[child] = 0

    # ------------------------------------------------------------------
    def _on_pulse(self, msg: Message) -> None:
        epoch = msg.payload["epoch"]
        if epoch > self.epoch + 1:
            # We were partitioned from the root (e.g. our parent died and
            # the overlay just healed): our children were equally cut off,
            # so restart their clocks rather than declaring them dead.
            for child in self.last_heard:
                self.last_heard[child] = epoch
        self.epoch = epoch
        if self.broker.parent is not None:
            self.broker.send_parent("live.hello",
                                    {"rank": self.rank,
                                     "epoch": self.epoch})
        self._check_children()

    @request_handler(required=("rank", "epoch"))
    def req_hello(self, msg: Message) -> None:
        child = msg.payload["rank"]
        epoch = msg.payload["epoch"]
        prev = self.last_heard.get(child, 0)
        self.last_heard[child] = max(prev, epoch)

    def _check_children(self) -> None:
        for child in list(self.broker.children):
            if child in self.announced:
                continue
            heard = self.last_heard.get(child)
            if heard is None:
                # Newly adopted orphan: start the clock now.
                self.last_heard[child] = self.epoch
                continue
            if self.epoch - heard >= self.missed_max:
                self.announced.add(child)
                self.log("err", f"child {child} missed "
                                f"{self.epoch - heard} hellos; declaring down")
                self.broker.publish("live.down", {"rank": child,
                                                  "epoch": self.epoch})

    def _on_down(self, msg: Message) -> None:
        dead = msg.payload["rank"]
        self.announced.add(dead)
        self.last_heard.pop(dead, None)
        self.broker.handle_peer_down(dead)
        self.broker.session._subtree_procs_cache = None
        # Children may have been unreachable while the overlay was broken;
        # give every surviving child a fresh grace period.
        for child in self.broker.children:
            self.last_heard[child] = max(self.last_heard.get(child, 0),
                                         self.epoch)

    # ------------------------------------------------------------------
    def req_status(self, msg: Message) -> None:
        """Report this broker's liveness view (``live.status`` RPC)."""
        self.respond(msg, {
            "rank": self.rank,
            "parent": self.broker.parent,
            "children": list(self.broker.children),
            "last_heard": {str(k): v for k, v in self.last_heard.items()},
            "down": sorted(self.announced),
        })
