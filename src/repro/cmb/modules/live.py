"""``live`` — liveness detection and overlay self-healing (Table I).

"Each tree node receives heartbeat-synchronized hello messages from
its children.  After a configurable number of missed messages, a
liveliness event is issued for a dead child."

On every ``hb.pulse`` each non-root broker sends ``live.hello`` to its
current tree parent; parents track the last epoch heard from each
child.  A child silent for ``missed_max`` consecutive epochs is
declared dead via a session-wide ``live.down`` event, upon which every
broker rewires around the corpse (orphans re-attach to their
grandparent — the paper's "self-heal when interior nodes fail").
"""

from __future__ import annotations

from ..message import Message
from ..module import CommsModule, request_handler

__all__ = ["LiveModule"]


class LiveModule(CommsModule):
    """Liveness tracking driven by the heartbeat.

    Config
    ------
    missed_max:
        Consecutive missed hellos before a child is declared dead
        (default 3).
    """

    name = "live"

    def __init__(self, broker, *, missed_max: int = 3):
        super().__init__(broker, missed_max=missed_max)
        self.missed_max = missed_max
        self.last_heard: dict[int, int] = {}
        self.epoch = 0
        self.announced: set[int] = set()
        self._last_pulse = 0.0
        self._watchdog_armed = False

    def start(self) -> None:
        self.broker.subscribe("hb.pulse", self._on_pulse)
        self.broker.subscribe("live.down", self._on_down)
        self.broker.subscribe("live.reattach", self._on_reattach)
        for child in self.broker.children:
            self.last_heard[child] = 0
        self._last_pulse = self.broker.sim.now
        self._arm_watchdog()

    # ------------------------------------------------------------------
    # pulse-starvation watchdog (orphan-side self-healing)
    #
    # Heartbeat pulses flood down the tree, so a broker whose parent
    # died — or silently dropped it from its children — receives
    # *nothing*: no pulses, hence no hello sends, no gossip, no chance
    # to ever learn of the failure from the (equally cut off) event
    # plane.  Detection cannot be left to inbound traffic alone; this
    # local timer notices the starvation and re-attaches from below.
    # ------------------------------------------------------------------
    def _watchdog_interval(self) -> float:
        hb = self.broker.modules.get("hb")
        if hb is None:
            return 0.0
        return hb.period * (self.missed_max + 2)

    def _arm_watchdog(self) -> None:
        # Armed only while a fault plan is installed: on a loss-free
        # fabric the live.down flood (plus mid-flood adoption) reaches
        # every orphan reliably, and a perpetually re-arming timer
        # would keep an otherwise drained simulation alive — changing
        # end times of fault-free runs that must stay byte-identical.
        if self.broker.network.fault_plan is None:
            return
        interval = self._watchdog_interval()
        if interval <= 0.0 or self._watchdog_armed:
            return
        hb = self.broker.modules.get("hb")
        if (hb is not None and hb.max_epochs is not None
                and self.epoch >= hb.max_epochs):
            return                  # heartbeat has finished for good
        self._watchdog_armed = True
        self.broker.after(interval, self._watchdog_fire)

    def _watchdog_fire(self) -> None:
        self._watchdog_armed = False
        if not self.broker.alive:
            return
        interval = self._watchdog_interval()
        now = self.broker.sim.now
        parent = self.broker.parent
        if now - self._last_pulse > interval and parent is not None:
            if not self.broker.session.brokers[parent].alive:
                self._reattach_upward(parent)
            else:
                # The parent is alive but nothing flows down: it has
                # likely declared *us* dead and pruned us from its
                # children.  Nudge it — req_hello on the other side
                # reattaches a falsely-buried child.
                self.broker.send_parent("live.hello",
                                        {"rank": self.rank,
                                         "epoch": self.epoch})
        self._arm_watchdog()

    def _reattach_upward(self, dead_parent: int) -> None:
        """Our parent is dead and no live.down flood ever reached us
        (it would have had to route through the corpse).  Climb to the
        nearest live ancestor ourselves and register with it."""
        session = self.broker.session
        target = session.nearest_live_ancestor(self.rank)
        if target is None:
            # Our entire ancestor chain — the static root included —
            # is dead.  The minimum live rank takes the root's place;
            # everyone else attaches to it.
            acting = session.acting_root()
            if acting is None:
                return
            if acting == self.rank:
                self._become_acting_root(dead_parent)
                return
            target = acting
        self.log("err", f"parent {dead_parent} silent and dead; "
                        f"re-attaching to {target}")
        self.announced.add(dead_parent)
        self.broker.parent = target
        adopter = session.brokers[target]
        if self.rank not in adopter.children:
            adopter.children.append(self.rank)
        adopter_live = adopter.modules.get("live")
        if adopter_live is not None:
            # Fresh hello grace at the adopter for its new child.
            adopter_live.last_heard[self.rank] = adopter_live.epoch
        session._subtree_procs_cache = None
        # Re-route or fail anything we still had in flight via the corpse.
        self.broker._fail_pending_via(dead_parent)
        self.broker.send_parent("live.hello", {"rank": self.rank,
                                               "epoch": self.epoch})

    def _become_acting_root(self, dead_parent: int) -> None:
        """Take over the overlay root role: the static root (and every
        ancestor between it and us) is dead, and we are the minimum
        live rank.  Detach upward, restart the heartbeat so liveness
        detection and pulse-synchronized services keep running, and
        announce the death from the new event-plane flood point —
        ``handle_peer_down`` then runs *here first* (floods deliver
        locally before forwarding), so the orphan adoption scan has
        re-parented every cut-off peer before the flood fans out."""
        broker = self.broker
        self.log("err", f"ancestor chain dead via {dead_parent}; "
                        f"rank {self.rank} becomes acting overlay root")
        self.announced.add(dead_parent)
        broker.parent = None
        broker.session._subtree_procs_cache = None
        broker._fail_pending_via(dead_parent)
        hb = broker.modules.get("hb")
        if hb is not None:
            hb.ensure_beating()
        broker.publish("live.down", {"rank": dead_parent,
                                     "epoch": self.epoch})

    # ------------------------------------------------------------------
    def _on_pulse(self, msg: Message) -> None:
        self._last_pulse = self.broker.sim.now
        self._arm_watchdog()
        epoch = msg.payload["epoch"]
        if epoch > self.epoch + 1:
            # We were partitioned from the root (e.g. our parent died and
            # the overlay just healed): our children were equally cut off,
            # so restart their clocks rather than declaring them dead.
            for child in self.last_heard:
                self.last_heard[child] = epoch
        self.epoch = epoch
        if self.broker.parent is not None:
            self.broker.send_parent("live.hello",
                                    {"rank": self.rank,
                                     "epoch": self.epoch})
        self._check_children()

    # Hellos arrive via send_parent (one-way, no pending entry at the
    # child), so by protocol contract no response is owed or awaited.
    @request_handler(required=("rank", "epoch"))
    def req_hello(self, msg: Message) -> None:  # repro: noqa[REPLY001]
        child = msg.payload["rank"]
        epoch = msg.payload["epoch"]
        prev = self.last_heard.get(child, 0)
        self.last_heard[child] = max(prev, epoch)
        if (child in self.announced
                and self.broker.session.brokers[child].alive):
            # A child we declared dead is talking again: on a lossy
            # fabric consecutive hello drops cause false positives, and
            # without this the "corpse" would stay partitioned from
            # downward floods forever.  (The alive check rejects
            # delayed hellos from a rank that really died since.)
            self.log("err", f"child {child} resumed hellos; reattaching")
            self.broker.publish("live.reattach", {"rank": child})

    def _check_children(self) -> None:
        for child in list(self.broker.children):
            if child in self.announced:
                continue
            heard = self.last_heard.get(child)
            if heard is None:
                # Newly adopted orphan: start the clock now.
                self.last_heard[child] = self.epoch
                continue
            if self.epoch - heard >= self.missed_max:
                self.announced.add(child)
                self.log("err", f"child {child} missed "
                                f"{self.epoch - heard} hellos; declaring down")
                self.broker.publish("live.down", {"rank": child,
                                                  "epoch": self.epoch})

    def _on_down(self, msg: Message) -> None:
        dead = msg.payload["rank"]
        self.announced.add(dead)
        self.last_heard.pop(dead, None)
        self.broker.handle_peer_down(dead)
        self.broker.session._subtree_procs_cache = None
        # Children may have been unreachable while the overlay was broken;
        # give every surviving child a fresh grace period.
        for child in self.broker.children:
            self.last_heard[child] = max(self.last_heard.get(child, 0),
                                         self.epoch)

    def _on_reattach(self, msg: Message) -> None:
        """A previously dead rank rejoined (``live.reattach``): prune it
        from the dead-set so a later death is re-announced, restore the
        original topology edges around it, and restart hello clocks —
        both for the returnee and for children whose hellos may have
        been lost while the overlay re-converged."""
        rank = msg.payload["rank"]
        self.announced.discard(rank)
        self.broker.handle_peer_up(rank)
        self.broker.session._subtree_procs_cache = None
        self.last_heard.pop(rank, None)
        for child in self.broker.children:
            self.last_heard[child] = max(self.last_heard.get(child, 0),
                                         self.epoch)

    # ------------------------------------------------------------------
    def req_status(self, msg: Message) -> None:
        """Report this broker's liveness view (``live.status`` RPC)."""
        self.respond(msg, {
            "rank": self.rank,
            "parent": self.broker.parent,
            "children": list(self.broker.children),
            "last_heard": {str(k): v for k, v in self.last_heard.items()},
            "down": sorted(self.announced),
        })
