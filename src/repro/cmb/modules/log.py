"""``log`` — reduced, filtered session logging (Table I).

"Log messages are reduced and filtered before being placed in a log
file at the session root.  A circular debug buffer provides log
context in response to a fault event."

Every broker's instance keeps a circular buffer of *all* local records;
records at or above ``forward_level`` are batched and forwarded
upstream (the reduction: one message per batch rather than per record),
landing in the root instance's ``sink`` list — the session "log file".
A ``fault`` event makes every instance dump its circular buffer
upstream so the root log gains full context around the failure.
"""

from __future__ import annotations

from collections import deque

from ..message import Message
from ..module import CommsModule, request_handler

__all__ = ["LogModule", "LEVELS"]

#: Severity order (syslog-flavoured subset).
LEVELS = {"debug": 0, "info": 1, "warn": 2, "err": 3, "crit": 4}


class LogModule(CommsModule):
    """Hierarchical log reduction.

    Config
    ------
    forward_level:
        Minimum severity forwarded toward the root (default ``"info"``;
        lower records stay in the local circular buffer only).
    buffer_size:
        Circular debug-buffer capacity per broker (default 128).
    batch_window:
        Seconds to accumulate records before forwarding one combined
        message upstream (default 1 ms) — the "reduce" in Table I.
    """

    name = "log"

    def __init__(self, broker, *, forward_level: str = "info",
                 buffer_size: int = 128, batch_window: float = 1e-3):
        super().__init__(broker, forward_level=forward_level,
                         buffer_size=buffer_size, batch_window=batch_window)
        if forward_level not in LEVELS:
            raise ValueError(f"unknown log level {forward_level!r}")
        self.forward_level = LEVELS[forward_level]
        self.circular: deque = deque(maxlen=buffer_size)
        self.batch_window = batch_window
        self._batch: list[dict] = []
        self._flush_scheduled = False
        # Root only: the session log "file".
        self.sink: list[dict] = []

    def start(self) -> None:
        self.broker.subscribe("fault", self._on_fault)

    # ------------------------------------------------------------------
    # local producer API (used via broker.log / module.log)
    # ------------------------------------------------------------------
    def append(self, level: str, text: str) -> None:
        """Record a log message originating on this broker."""
        rec = {"t": self.broker.sim.now, "rank": self.rank,
               "level": level, "text": text}
        self.circular.append(rec)
        if LEVELS.get(level, 0) >= self.forward_level:
            self._enqueue([rec])

    # ------------------------------------------------------------------
    # reduction path
    # ------------------------------------------------------------------
    def _enqueue(self, records: list[dict]) -> None:
        if self.is_root:
            self.sink.extend(records)
            return
        self._batch.extend(records)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.broker.after(self.batch_window, self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._batch:
            return
        batch, self._batch = self._batch, []
        if self.broker.parent is None:
            # We became the acting overlay root after the static root
            # died: there is no upstream, so our sink *is* the session
            # log now.
            self.sink.extend(batch)
            return
        self.broker.rpc_parent_cb("log.append", {"records": batch},
                                  lambda resp: None)

    @request_handler(required=("records",))
    def req_append(self, msg: Message) -> None:
        """Records forwarded from a downstream instance."""
        self._enqueue(msg.payload["records"])
        self.respond(msg, {})

    # ------------------------------------------------------------------
    # fault-triggered context dump
    # ------------------------------------------------------------------
    def _on_fault(self, _msg: Message) -> None:
        if self.circular:
            self._enqueue([dict(r, dumped=True) for r in self.circular])

    def req_dump(self, msg: Message) -> None:
        """Return this broker's circular buffer (``log.dump`` RPC)."""
        self.respond(msg, {"records": list(self.circular)})

    def req_sink(self, msg: Message) -> None:
        """Return the root log sink (only meaningful at the root)."""
        self.respond(msg, {"records": list(self.sink)})
