"""``mon`` — heartbeat-synchronized monitoring (Table I).

"Linux scripts stored in the KVS activate heartbeat-synchronized
sampling.  Samples are reduced and stored in the KVS."

Our simulated stand-in for "Linux scripts" is a registry of named
Python sampler callables (e.g. per-node power draw, core utilization).
``mon.activate {name, op}`` at the root announces the metric; from then
on every broker samples locally at each ``hb.pulse`` and the values are
reduced up the tree (sum/min/max/avg) — each broker combines its own
sample with one aggregate per child before forwarding a single message.
Completed per-epoch results are stored at the root: into the KVS under
``mon.<name>.<epoch>`` when the ``kvs`` module is loaded, and always in
the in-memory ``results`` table.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import EINVAL, ENOENT
from ..message import Message
from ..module import CommsModule, request_handler

__all__ = ["MonModule", "REDUCE_OPS"]


def _avg_merge(a: dict, b: dict) -> dict:
    return {"sum": a["sum"] + b["sum"], "n": a["n"] + b["n"]}


#: Supported reduction operators: (merge(acc, x), finalize(acc)).
REDUCE_OPS: dict[str, tuple] = {
    "sum": (lambda a, b: {"sum": a["sum"] + b["sum"], "n": a["n"] + b["n"]},
            lambda a: a["sum"]),
    "max": (lambda a, b: {"sum": max(a["sum"], b["sum"]), "n": a["n"] + b["n"]},
            lambda a: a["sum"]),
    "min": (lambda a, b: {"sum": min(a["sum"], b["sum"]), "n": a["n"] + b["n"]},
            lambda a: a["sum"]),
    "avg": (_avg_merge, lambda a: a["sum"] / max(a["n"], 1)),
}


class _Metric:
    __slots__ = ("name", "op", "pending")

    def __init__(self, name: str, op: str):
        self.name = name
        self.op = op
        # epoch -> {"acc": acc-dict, "contrib": count}
        self.pending: dict[int, dict] = {}


class MonModule(CommsModule):
    """Distributed metric sampling with tree reduction.

    Config
    ------
    samplers:
        ``{name: fn(broker) -> float}`` — the local sampling functions
        (the simulated equivalent of the paper's KVS-stored scripts).
    """

    name = "mon"

    #: Pending epochs older than this many pulses are dropped: their
    #: missing contributions are never coming (lost to a crash that
    #: predates ``live.down``, or to a deactivate racing the pulse).
    STALE_EPOCHS = 8

    def __init__(self, broker, *,
                 samplers: Optional[dict[str, Callable]] = None):
        super().__init__(broker, samplers=samplers)
        self.samplers = samplers or {}
        self.active: dict[str, _Metric] = {}
        # Root only: completed reductions {(name, epoch): value}.
        self.results: dict[tuple[str, int], float] = {}
        self._c_stale = broker.registry.counter(
            "mon_stale_epochs_dropped_total")

    def start(self) -> None:
        self.broker.subscribe("hb.pulse", self._on_pulse)
        self.broker.subscribe("mon.activate", self._on_activate)
        self.broker.subscribe("mon.deactivate", self._on_deactivate)
        self.broker.subscribe("live.down", self._on_down)

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    @request_handler(required=("name",))
    def req_activate(self, msg: Message) -> None:
        """Root RPC: start sampling ``{name, op}`` session-wide."""
        name = msg.payload["name"]
        op = msg.payload.get("op", "sum")
        if op not in REDUCE_OPS:
            self.respond(msg, error=f"unknown reduce op {op!r}",
                         code=EINVAL)
            return
        if name not in self.samplers:
            self.respond(msg, error=f"unknown sampler {name!r}",
                         code=ENOENT)
            return
        self.broker.publish("mon.activate", {"name": name, "op": op})
        self.respond(msg, {"name": name, "op": op})

    @request_handler(required=("name",))
    def req_deactivate(self, msg: Message) -> None:
        """Stop sampling a metric."""
        self.broker.publish("mon.deactivate", {"name": msg.payload["name"]})
        self.respond(msg, {})

    def _on_activate(self, msg: Message) -> None:
        name = msg.payload["name"]
        if name not in self.active:
            self.active[name] = _Metric(name, msg.payload["op"])

    def _on_deactivate(self, msg: Message) -> None:
        self.active.pop(msg.payload["name"], None)

    # ------------------------------------------------------------------
    # sampling + reduction
    # ------------------------------------------------------------------
    def _expected(self) -> int:
        """Contributions to wait for: our sample + one per live child."""
        return 1 + sum(1 for c in self.broker.children
                       if self.broker.session.brokers[c].alive)

    def _on_pulse(self, msg: Message) -> None:
        epoch = msg.payload["epoch"]
        for metric in self.active.values():
            fn = self.samplers.get(metric.name)
            if fn is not None:
                value = float(fn(self.broker))
                self._contribute(metric, epoch, {"sum": value, "n": 1})
            # GC epochs whose stragglers can no longer arrive; without
            # this, one crashed-before-detection child leaks a pending
            # slot per metric per pulse forever.
            for old in [e for e in metric.pending
                        if e <= epoch - self.STALE_EPOCHS]:
                del metric.pending[old]
                self._c_stale.inc()

    def _on_down(self, msg: Message) -> None:
        # A child died: every pending epoch that was only waiting for
        # its contribution is now complete.  Deferred one tick so the
        # liveness fanout (and any in-flight samples already queued
        # locally) settle before we re-evaluate.
        def recheck() -> None:
            for metric in list(self.active.values()):
                for epoch in list(metric.pending):
                    self._maybe_complete(metric, epoch)
        self.broker.after(0.0, recheck)

    @request_handler(required=("name", "epoch", "acc", "contrib"))
    def req_sample(self, msg: Message) -> None:
        """A child's partial aggregate for (name, epoch)."""
        p = msg.payload
        metric = self.active.get(p["name"])
        self.respond(msg, {})
        if metric is None:
            return
        self._contribute(metric, p["epoch"], p["acc"], count=p["contrib"])

    def _contribute(self, metric: _Metric, epoch: int, acc: dict,
                    count: int = 1) -> None:
        merge, _ = REDUCE_OPS[metric.op]
        slot = metric.pending.get(epoch)
        if slot is None:
            metric.pending[epoch] = {"acc": acc, "contrib": count}
        else:
            slot["acc"] = merge(slot["acc"], acc)
            slot["contrib"] += count
        self._maybe_complete(metric, epoch)

    def _maybe_complete(self, metric: _Metric, epoch: int) -> None:
        slot = metric.pending.get(epoch)
        if slot is None or slot["contrib"] < self._expected():
            return
        del metric.pending[epoch]
        if self.is_root:
            _, finalize = REDUCE_OPS[metric.op]
            value = finalize(slot["acc"])
            self.results[(metric.name, epoch)] = value
            self._store_kvs(metric.name, epoch, value)
        else:
            self.broker.rpc_parent_cb(
                "mon.sample",
                {"name": metric.name, "epoch": epoch,
                 "acc": slot["acc"], "contrib": 1},
                lambda resp: None)

    def _store_kvs(self, name: str, epoch: int, value: float) -> None:
        kvs = self.broker.modules.get("kvs")
        if kvs is None or kvs.master is None:
            return
        from ...jsonutil import sha1_of
        from ...kvs.store import make_val_obj
        obj = make_val_obj(value)
        sha = sha1_of(obj)
        kvs.master.ingest_objects({sha: obj})
        res = kvs.master.commit([(f"mon.{name}.{epoch}", sha)])
        kvs._apply_root(res.version, res.root_sha)
        kvs._publish_setroot(res.version, res.root_sha)

    # ------------------------------------------------------------------
    @request_handler(required=("name",))
    def req_results(self, msg: Message) -> None:
        """Root RPC: completed reductions for a metric."""
        name = msg.payload["name"]
        vals = {str(epoch): v for (n, epoch), v in self.results.items()
                if n == name}
        self.respond(msg, {"name": name, "results": vals})
