"""``resvc`` — the per-session resource service (Table I).

"Resources are enumerated in the KVS and allocated when the scheduler
runs an application."

The root instance owns the authoritative free/allocated state for the
session's node-local resources (cores per session rank).  At start it
enumerates them into the KVS (``resource.rank.<r> = {...}``) when the
``kvs`` module is loaded.  ``resvc.alloc``/``resvc.free`` RPCs reserve
and release cores; the Flux-instance scheduler (:mod:`repro.sched`)
sits above this service.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import EEXIST, ENOENT, EOVERFLOW
from ..message import Message
from ..module import CommsModule, request_handler

__all__ = ["ResvcModule"]


class ResvcModule(CommsModule):
    """Session resource enumeration and core-level allocation.

    Requests route upstream to the root instance, which is
    authoritative; loading the module only at the root
    (``ModuleSpec(ResvcModule, max_depth=0)``) is equivalent and saves
    leaf memory, per the paper's configurable-depth loading.
    """

    name = "resvc"

    def __init__(self, broker, *, cores_per_rank: Optional[int] = None):
        super().__init__(broker, cores_per_rank=cores_per_rank)
        session = broker.session
        if cores_per_rank is None:
            cores_per_rank = session.cluster.node(
                session.node_of_rank(0)).spec.cores
        self.cores_per_rank = cores_per_rank
        # rank -> free cores (root instance only is authoritative).
        self.free: dict[int, int] = {
            r: cores_per_rank for r in range(session.size)}
        # jobid -> {rank: cores}
        self.allocations: dict[Any, dict[int, int]] = {}

    def start(self) -> None:
        if self.is_root:
            self._enumerate()

    def _enumerate(self) -> None:
        kvs = self.broker.modules.get("kvs")
        if kvs is None:
            return
        for r in range(self.broker.session.size):
            node = self.broker.session.cluster.node(
                self.broker.session.node_of_rank(r))
            kvs.local_put("resvc", f"resource.rank.{r}", {
                "cores": node.spec.cores,
                "sockets": node.spec.sockets,
                "memory": node.spec.memory_bytes,
                "hostname": node.hostname,
            })
        kvs.local_commit("resvc")

    # ------------------------------------------------------------------
    @request_handler(required=("jobid", "cores"))
    def req_alloc(self, msg: Message) -> None:
        """Allocate {jobid, cores, ranks?}: ``cores`` total, optionally
        restricted to a candidate rank list; first-fit across ranks."""
        p = msg.payload
        jobid = p["jobid"]
        want = p["cores"]
        candidates = p.get("ranks") or list(range(self.broker.session.size))
        if jobid in self.allocations:
            self.respond(msg, error=f"job {jobid!r} already allocated",
                         code=EEXIST)
            return
        plan: dict[int, int] = {}
        remaining = want
        for r in candidates:
            if remaining <= 0:
                break
            take = min(self.free.get(r, 0), remaining)
            if take > 0:
                plan[r] = take
                remaining -= take
        if remaining > 0:
            self.respond(msg, error=f"insufficient cores for {want}",
                         code=EOVERFLOW)
            return
        for r, n in plan.items():
            self.free[r] -= n
        self.allocations[jobid] = plan
        self.respond(msg, {"jobid": jobid,
                           "alloc": {str(r): n for r, n in plan.items()}})

    @request_handler(required=("jobid",))
    def req_free(self, msg: Message) -> None:
        """Release a job's allocation."""
        jobid = msg.payload["jobid"]
        plan = self.allocations.pop(jobid, None)
        if plan is None:
            self.respond(msg, error=f"no allocation for job {jobid!r}",
                         code=ENOENT)
            return
        for r, n in plan.items():
            self.free[r] += n
        self.respond(msg, {"jobid": jobid})

    def req_status(self, msg: Message) -> None:
        """Free-core inventory and live allocations."""
        self.respond(msg, {
            "free": {str(r): n for r, n in self.free.items()},
            "jobs": sorted(str(j) for j in self.allocations),
        })
