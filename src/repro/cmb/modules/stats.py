"""``stats`` — broker introspection over the wire.

Mirrors real Flux's ``module.stats.get``: any client can snapshot any
broker's metrics registry by RPC, and — because registries are
mergeable (counters sum, log-bucketed histograms add bucket-wise) — a
single ``stats.aggregate`` RPC at the root tree-reduces a session-wide
aggregate without ever shipping raw samples:

- ``stats.get`` — the local broker's registry snapshot (route with
  ``Handle.rpc_rank``/``rpc_rank_tree`` to reach a specific rank, or
  plain ``rpc`` for the first broker on the upstream path).
- ``stats.aggregate`` — recursive: each instance fans out to its live
  tree children, merges their subtree aggregates with its own
  snapshot, and answers one merged snapshot upward.  Asking rank 0
  yields the whole session; asking an interior rank yields its
  subtree.

:func:`registry_samplers` additionally exposes headline registry
values as ``mon`` sampler callables, so activating them captures a
heartbeat-synchronized time series of e.g. request throughput for
free (stored in the KVS by the ``mon`` reduction, as per Table I).
"""

from __future__ import annotations

from typing import Callable

from ...obs import merge_snapshots
from ..message import Message
from ..module import CommsModule

__all__ = ["StatsModule", "registry_samplers"]


def registry_samplers() -> dict[str, Callable]:
    """``mon`` samplers over the broker's metrics registry.

    Names are ``stats.<what>``; activate with
    ``handle.rpc("mon.activate", {"name": "stats.requests", "op":
    "sum"})`` to get per-epoch session totals in the KVS.
    """
    return {
        "stats.requests":
            lambda broker: float(broker.requests_handled),
        "stats.events":
            lambda broker: float(broker.events_seen),
        "stats.retransmits":
            lambda broker: float(broker.retransmits),
        "stats.inbox_p95":
            lambda broker: broker._h_inbox.quantile(0.95),
    }


class StatsModule(CommsModule):
    """Registry snapshot / tree-reduced aggregate service.

    Loaded everywhere by :func:`repro.standard_session`.  Completely
    passive until queried: it subscribes to nothing, arms no timers,
    and sends no messages on its own, so loading it cannot perturb a
    simulation.
    """

    name = "stats"

    def req_get(self, msg: Message) -> None:
        """Snapshot this broker's registry (module counters synced)."""
        self.respond(msg, {"rank": self.rank,
                           "stats": self.broker.metrics_snapshot()})

    def req_aggregate(self, msg: Message) -> None:
        """Tree-reduced registry aggregate over this broker's subtree."""
        broker = self.broker
        children = [c for c in broker.children
                    if broker.session.brokers[c].alive]
        local = broker.metrics_snapshot()
        if not children:
            self.respond(msg, {"ranks": 1,
                               "agg": merge_snapshots([local])})
            return

        parts = [local]
        state = {"remaining": len(children), "ranks": 1,
                 "answered": False}

        def finish() -> None:
            if state["answered"]:
                return
            state["answered"] = True
            self.respond(msg, {"ranks": state["ranks"],
                               "agg": merge_snapshots(parts)})

        def child_done(resp: Message) -> None:
            state["remaining"] -= 1
            if resp.error is None:
                # Child aggregates carry no rank labels; merging an
                # aggregate with raw snapshots is well-defined because
                # merge keys ignore the dropped labels either way.
                parts.append(resp.payload["agg"])
                state["ranks"] += resp.payload["ranks"]
            if state["remaining"] == 0:
                finish()

        for child in children:
            broker.rpc_hop_cb(child, f"{self.name}.aggregate", {},
                              child_done, ctx=msg.ctx, span=msg.span)
