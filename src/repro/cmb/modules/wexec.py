"""``wexec`` — bulk remote execution (Table I) with node-loss recovery.

"Remote processes can be launched in bulk, monitored, receive signals,
and have standard I/O captured in the KVS."

Launch: a ``wexec.run`` RPC reaches the root, which validates the job
spec and publishes a ``wexec.start`` event.  Every broker computes its
own task set from the spec — task rank *r* runs on session rank
``ranks[r % len(ranks)]``, the cyclic distribution KAP describes
("consecutive rank processes are distributed to consecutive nodes") —
and spawns the tasks as simulated processes.

Monitoring: when all of a broker's local tasks finish, a completion
tally is reduced up the tree (each broker waits for its whole subtree
before forwarding one message); the root publishes ``wexec.done`` when
the job's full ``nprocs`` have completed.

I/O: each task's stdout lines are committed to the KVS under
``lwj.<jobid>.<taskrank>.stdout`` when the ``kvs`` module is loaded.

Signals: ``wexec.signal`` broadcasts an event; brokers interrupt the
targeted local tasks.  Signals arriving before the (possibly delayed)
``wexec.start`` are buffered and re-applied at start.

Fault model (node loss)
-----------------------
Tasks die with their node.  On a ``live.down`` event the root-role
broker (``broker.parent is None`` — the static root, or the acting
root after a PR 6 takeover) recomputes the *lost* taskranks — those
assigned to the dead rank with no recorded completion — and, after an
exponential backoff, re-publishes them in a ``wexec.respawn`` event
pinned to the surviving ranks.  The respawn carries a monotonically
increasing per-job *epoch*; every broker applies the event in event
total order, so assignment maps stay consistent session-wide.

Completion is **exactly-once** per ``(jobid, taskrank)``: the rc table
is a first-wins union keyed by taskrank (tallies carry the spawning
epoch, so late duplicates from a falsely-buried rank and respawned
re-executions are distinguishable but never double-counted), and
subtree tallies are re-based against the live rank set and re-forwarded
on ``live.down`` / ``live.reattach`` — idempotent at every hop.

A per-task retry budget (``max_restarts``) bounds re-execution: a task
lost more often than the budget allows — or left with no surviving
rank to run on — fails the whole job via a ``wexec.lost`` event
instead of hanging the completion reduction forever.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ...sim.kernel import Interrupt, Process
from ..errors import EEXIST, EINVAL, ENOENT
from ..message import Message
from ..module import CommsModule, request_handler

__all__ = ["WexecModule", "TaskContext"]

#: Signal numbers used by the escalation ladder.
_SIGTERM = 15
_SIGKILL = 9


class TaskContext:
    """Execution context handed to each launched task.

    A task factory has signature ``factory(ctx) -> generator``; the
    generator may yield simulation events (e.g. ``ctx.sim.timeout``)
    to model work, and use :meth:`print` for captured stdout or
    :meth:`connect` for a CMB handle (PMI, KVS, barriers).
    """

    def __init__(self, module: "WexecModule", jobid: Any, taskrank: int,
                 nprocs: int, args: dict, epoch: int = 0):
        self.module = module
        self.jobid = jobid
        self.taskrank = taskrank
        self.nprocs = nprocs
        self.args = args
        #: Respawn epoch this incarnation was spawned under (0 = the
        #: original ``wexec.start`` launch); rides the completion tally
        #: so duplicate completions are attributable.
        self.epoch = epoch
        self.stdout: list[str] = []
        self.signal: Optional[int] = None
        #: Free-form task status, visible to attached tools via the
        #: ``wexec.query`` RPC (the paper's "secure third-party access
        #: to running jobs" for debuggers/profilers).
        self.status: str = "starting"

    @property
    def sim(self):
        """The simulation clock/event factory."""
        return self.module.broker.sim

    @property
    def broker_rank(self) -> int:
        """Session rank of the hosting broker."""
        return self.module.rank

    def print(self, text: str) -> None:
        """Capture one line of standard output."""
        self.stdout.append(text)

    def connect(self):
        """Open a CMB handle on the local broker (closed automatically
        when the task ends)."""
        handle = self.module.broker.session.connect(self.module.rank)
        self.module._task_handles.setdefault(
            (self.jobid, self.taskrank), []).append(handle)
        return handle


class _JobState:
    __slots__ = ("spec", "assign", "epoch", "retries", "rcs", "rc_epochs",
                 "forwarded", "failed", "procs", "ctxs")

    def __init__(self, spec: dict):
        self.spec = spec
        #: Current taskrank -> session rank placement.  Initialized to
        #: the cyclic distribution; rewritten (identically on every
        #: broker) by totally-ordered ``wexec.respawn`` events.
        self.assign: dict[int, int] = {}
        #: Highest respawn epoch applied (0 = no respawns yet).
        self.epoch = 0
        #: Per-task respawn counts (from applied respawn events, so
        #: every broker — including a future acting root — agrees).
        self.retries: dict[int, int] = {}
        #: First-wins rc per completed taskrank (exactly-once record).
        self.rcs: dict[int, int] = {}
        #: Epoch each recorded rc was produced under.
        self.rc_epochs: dict[int, int] = {}
        self.forwarded = False
        #: Set when a ``wexec.lost`` terminated the job.
        self.failed = False
        self.procs: dict[int, Process] = {}
        self.ctxs: dict[int, "TaskContext"] = {}


class WexecModule(CommsModule):
    """Bulk launcher / monitor for simulated remote processes.

    Config
    ------
    registry:
        ``{task_name: factory(ctx) -> generator}`` — the launchable
        programs (the simulated equivalent of executables on disk).
    max_restarts:
        Per-task respawn budget after node loss (default 2).  A task
        lost more than this drives the job to a ``wexec.lost`` failure
        instead of hanging.
    respawn_backoff:
        Base delay before the first respawn of a lost task; doubles
        per prior restart (exponential backoff, default 0.05 s).
    """

    name = "wexec"

    def __init__(self, broker, *,
                 registry: Optional[dict[str, Callable]] = None,
                 max_restarts: int = 2,
                 respawn_backoff: float = 0.05):
        super().__init__(broker, registry=registry,
                         max_restarts=max_restarts,
                         respawn_backoff=respawn_backoff)
        self.registry = registry or {}
        self.max_restarts = max_restarts
        self.respawn_backoff = respawn_backoff
        self.jobs: dict[Any, _JobState] = {}
        self.output: dict[tuple, list[str]] = {}
        self._task_handles: dict[tuple, list] = {}
        self.done_jobs: list[Any] = []
        #: Jobs terminated by ``wexec.lost`` (retry budget exhausted).
        self.lost_jobs: list[Any] = []
        #: rcs of tasks that finished after their job record was
        #: already retired (late finishers must not lose accounting).
        self.late_rcs: dict[tuple, int] = {}
        #: Signals buffered for jobs whose ``wexec.start`` has not
        #: arrived yet (event delay/duplication under chaos).
        self._pending_signals: dict[Any, list[int]] = {}
        #: Ranks declared dead by ``live.down`` (pruned on reattach).
        self._dead: set[int] = set()
        self._subtree: frozenset = frozenset()
        #: Respawn telemetry: tasks this broker re-spawned locally.
        self.respawns = 0

    def start(self) -> None:
        self.broker.subscribe("wexec.start", self._on_start)
        self.broker.subscribe("wexec.signal", self._on_signal)
        self.broker.subscribe("wexec.done", self._on_done)
        self.broker.subscribe("wexec.respawn", self._on_respawn)
        self.broker.subscribe("wexec.lost", self._on_lost)
        self.broker.subscribe("live.down", self._on_live_down)
        self.broker.subscribe("live.reattach", self._on_live_reattach)
        self._subtree = frozenset(
            self.broker.session.topology.subtree(self.rank))

    def sync_metrics(self) -> None:
        reg = self.broker.registry
        reg.gauge("wexec_respawns_total", ns=self.name).set(self.respawns)
        reg.gauge("wexec_jobs_lost_total",
                  ns=self.name).set(len(self.lost_jobs))

    # ------------------------------------------------------------------
    # launch path
    # ------------------------------------------------------------------
    @request_handler(required=("jobid",))
    def req_run(self, msg: Message) -> None:
        """Client RPC: run {jobid, task, nprocs, ranks?, args?}."""
        if self.broker.parent is not None:
            self.proxy_upstream(msg)
            return
        p = msg.payload
        jobid = p["jobid"]
        task = p.get("task")
        nprocs = p.get("nprocs", 1)
        ranks = p.get("ranks") or list(range(self.broker.session.size))
        if task not in self.registry:
            self.respond(msg, error=f"unknown task {task!r}", code=ENOENT)
            return
        if nprocs < 1 or not ranks:
            self.respond(msg, error="bad job shape", code=EINVAL)
            return
        if jobid in self.jobs:
            # A *distinct* request reusing an active jobid (a replayed
            # duplicate of the same request is absorbed by the broker's
            # replay cache before ever reaching this handler).
            self.respond(msg, error=f"job {jobid!r} is already running",
                         code=EEXIST)
            return
        spec = {"jobid": jobid, "task": task, "nprocs": nprocs,
                "ranks": list(ranks), "args": p.get("args", {})}
        self.broker.publish("wexec.start", spec)
        self.respond(msg, {"jobid": jobid, "nprocs": nprocs})

    def _taskranks_for(self, spec: dict, rank: int) -> list[int]:
        ranks = spec["ranks"]
        return [r for r in range(spec["nprocs"])
                if ranks[r % len(ranks)] == rank]

    def _on_start(self, msg: Message) -> None:
        spec = msg.payload
        jobid = spec["jobid"]
        state = _JobState(spec)
        self.jobs[jobid] = state
        ranks = spec["ranks"]
        state.assign = {t: ranks[t % len(ranks)]
                        for t in range(spec["nprocs"])}
        factory = self.registry.get(spec["task"])
        for taskrank in self._taskranks_for(spec, self.rank):
            self._spawn_task(state, taskrank, factory)
        pending = self._pending_signals.pop(jobid, [])
        if pending:
            # One tick later: the task processes spawned above have not
            # taken their first step yet, and a process cannot absorb
            # an interrupt before it starts.
            self.broker.after(0.0, lambda: self._apply_pending(jobid,
                                                               pending))
        self._maybe_forward(state)

    def _apply_pending(self, jobid: Any, signums: list[int]) -> None:
        state = self.jobs.get(jobid)
        if state is None:
            return
        for signum in signums:
            self._signal_local(state, signum)

    def _spawn_task(self, state: _JobState, taskrank: int,
                    factory: Callable) -> None:
        spec = state.spec
        ctx = TaskContext(self, spec["jobid"], taskrank, spec["nprocs"],
                          spec["args"], epoch=state.epoch)
        state.ctxs[taskrank] = ctx
        proc = self.broker.sim.spawn(
            self._run_task(ctx, factory),
            name=f"task[{spec['jobid']}:{taskrank}]")
        state.procs[taskrank] = proc

    def _run_task(self, ctx: TaskContext, factory: Callable):
        rc = 0
        body = self.broker.sim.spawn(
            factory(ctx), name=f"body[{ctx.jobid}:{ctx.taskrank}]",
            contain=True)
        try:
            yield body
        except Interrupt as it:
            ctx.signal = it.cause if isinstance(it.cause, int) else _SIGTERM
            if body.is_alive:
                body.interrupt(it.cause)
            rc = 128 + ctx.signal
        except Exception:
            rc = 1
        self._task_finished(ctx, rc)

    def _task_finished(self, ctx: TaskContext, rc: int) -> None:
        key = (ctx.jobid, ctx.taskrank)
        for handle in self._task_handles.pop(key, []):
            handle.close()
        if not self.broker.alive:
            # The hosting node died mid-task: a real process dies with
            # its node, so nothing is recorded or forwarded — the
            # root's respawn path re-executes the task elsewhere.
            return
        state = self.jobs.get(ctx.jobid)
        if state is not None \
                and state.assign.get(ctx.taskrank) != self.rank:
            # The task was reassigned away from this rank (respawned
            # elsewhere after we were falsely declared dead, or this
            # incarnation was canceled by the move): the current
            # owner's completion is the one that counts.
            if state.procs.get(ctx.taskrank) is not None \
                    and not state.procs[ctx.taskrank].is_alive:
                state.procs.pop(ctx.taskrank, None)
            return
        self.output[key] = list(ctx.stdout)
        self._store_stdout(ctx)
        if state is None:
            # Late finisher: the job record was already retired
            # (wexec.done / wexec.lost).  Keep the rc anyway so the
            # accounting survives the race.
            self.late_rcs[key] = rc
            return
        if ctx.taskrank not in state.rcs:
            state.rcs[ctx.taskrank] = rc
            state.rc_epochs[ctx.taskrank] = ctx.epoch
        state.procs.pop(ctx.taskrank, None)
        self._maybe_forward(state)

    def _store_stdout(self, ctx: TaskContext) -> None:
        kvs = self.broker.modules.get("kvs")
        if kvs is None or not ctx.stdout:
            return
        key = f"lwj.{ctx.jobid}.{ctx.taskrank}.stdout"
        kvs.local_put(("wexec", ctx.jobid, ctx.taskrank), key, ctx.stdout)
        kvs.local_commit(("wexec", ctx.jobid, ctx.taskrank))

    # ------------------------------------------------------------------
    # completion reduction
    # ------------------------------------------------------------------
    @request_handler(required=("jobid", "count", "rcs"))
    def req_complete(self, msg: Message) -> None:
        """A child subtree's (cumulative, idempotent) completion tally."""
        p = msg.payload
        self.respond(msg, {})
        state = self.jobs.get(p["jobid"])
        if state is None:
            return
        epochs = p.get("epochs") or {}
        for taskrank, rc in p["rcs"].items():
            t = int(taskrank)
            if t not in state.rcs:
                state.rcs[t] = rc
                state.rc_epochs[t] = int(epochs.get(taskrank, 0))
        self._maybe_forward(state)

    def _expected(self, state: _JobState) -> list[int]:
        """Taskranks this broker's (static) subtree owes, re-based
        against the live rank set: tasks assigned to a dead rank are
        the root's respawn problem, not a reason to hold the tally."""
        brokers = self.broker.session.brokers
        return [t for t, r in state.assign.items()
                if r in self._subtree and brokers[r].alive]

    def _maybe_forward(self, state: _JobState) -> None:
        if state.forwarded or state.failed:
            return
        if self.broker.parent is None:
            # Root role (static root, or the acting root after a
            # takeover): completion is job-wide — every taskrank.
            if len(state.rcs) >= state.spec["nprocs"]:
                state.forwarded = True
                self._publish_done(state)
            return
        if not state.rcs:
            return
        rcs = state.rcs
        for t in self._expected(state):
            if t not in rcs:
                return
        state.forwarded = True
        payload = {"jobid": state.spec["jobid"], "count": len(rcs),
                   "rcs": {str(k): v for k, v in rcs.items()}}
        epochs = {str(k): e for k, e in state.rc_epochs.items() if e}
        if epochs:
            payload["epochs"] = epochs
        self.broker.rpc_parent_cb("wexec.complete", payload,
                                  lambda resp: None)

    def _publish_done(self, state: _JobState) -> None:
        jobid = state.spec["jobid"]
        status = max(state.rcs.values(), default=0)
        self.broker.publish("wexec.done",
                            {"jobid": jobid, "status": status,
                             "rcs": {str(k): v
                                     for k, v in state.rcs.items()}})

    def _on_done(self, msg: Message) -> None:
        jobid = msg.payload["jobid"]
        self.jobs.pop(jobid, None)
        self._pending_signals.pop(jobid, None)
        self.done_jobs.append(jobid)

    # ------------------------------------------------------------------
    # node-loss recovery
    # ------------------------------------------------------------------
    def node_failed(self) -> None:
        """Physical teardown: this broker's node just died, taking its
        task processes with it (called by the fault injector, *not* a
        protocol message — a corpse cannot run recovery code)."""
        for state in self.jobs.values():
            for proc in list(state.procs.values()):
                if proc.is_alive:
                    proc.interrupt(_SIGKILL)

    def _on_live_down(self, msg: Message) -> None:
        dead = msg.payload["rank"]
        self._dead.add(dead)
        if not self.jobs:
            return
        # Defer one tick: the live module's own live.down handler runs
        # after ours (module start order) and heals the overlay's
        # parent pointers — recovery must route over the healed tree.
        self.broker.after(0.0, lambda: self._recover_after_down(dead))

    def _recover_after_down(self, dead: int) -> None:
        if not self.broker.alive:
            return
        for jobid in list(self.jobs):
            state = self.jobs.get(jobid)
            if state is None or state.failed:
                continue
            # Re-base the tally against the shrunken live set and
            # re-forward (idempotent first-wins union upstream).
            state.forwarded = False
            if self.broker.parent is None:
                self._respawn_lost(jobid, state, dead)
            self._maybe_forward(state)

    def _on_live_reattach(self, msg: Message) -> None:
        self._dead.discard(msg.payload["rank"])
        if not self.jobs:
            return
        self.broker.after(0.0, self._rebase_after_reattach)

    def _rebase_after_reattach(self) -> None:
        if not self.broker.alive:
            return
        for jobid in list(self.jobs):
            state = self.jobs.get(jobid)
            if state is None or state.failed:
                continue
            # The returnee re-forwards its cumulative tally; interior
            # brokers re-evaluate against the restored expected set.
            state.forwarded = False
            self._maybe_forward(state)

    def _respawn_lost(self, jobid: Any, state: _JobState,
                      dead: int) -> None:
        """Root role: re-execute the dead rank's unfinished tasks."""
        lost = [t for t, r in state.assign.items()
                if r == dead and t not in state.rcs]
        if not lost:
            return
        over = [t for t in lost
                if state.retries.get(t, 0) >= self.max_restarts]
        if over:
            self._publish_lost(
                jobid, state, lost,
                f"retry budget exhausted (max_restarts="
                f"{self.max_restarts})")
            return
        epoch = state.epoch + 1
        worst = max(state.retries.get(t, 0) for t in lost)
        delay = self.respawn_backoff * (2 ** worst)
        self.broker.after(
            delay, lambda: self._publish_respawn(jobid, epoch, lost))

    def _publish_respawn(self, jobid: Any, epoch: int,
                         lost: list[int]) -> None:
        if not self.broker.alive or self.broker.parent is not None:
            return
        state = self.jobs.get(jobid)
        if state is None or state.failed or epoch != state.epoch + 1:
            return          # job finished / failed / superseded meanwhile
        lost = [t for t in lost if t not in state.rcs]
        if not lost:
            return
        survivors = [r for r in state.spec["ranks"]
                     if r not in self._dead
                     and self.broker.session.brokers[r].alive]
        if not survivors:
            self._publish_lost(jobid, state, lost,
                               "no surviving ranks to respawn on")
            return
        self.log("err", f"job {jobid!r}: respawning tasks {lost} "
                        f"(epoch {epoch}) on ranks {survivors}")
        self.broker._frec(self.broker.sim.now, "wexec_respawn",
                          jobid, epoch, tuple(lost))
        tr = self.broker.session.span_tracer
        span = None
        if tr is not None:
            root = tr.start_trace("wexec_respawn", self.rank,
                                  jobid=jobid, epoch=epoch,
                                  tasks=list(lost))
            span = (root.trace_id, root.span_id)
            tr.finish(root)  # fire-and-forget: deliveries are children
        self.broker.publish("wexec.respawn",
                            {"jobid": jobid, "epoch": epoch,
                             "taskranks": lost, "ranks": survivors},
                            span=span)

    def _publish_lost(self, jobid: Any, state: _JobState,
                      taskranks: list[int], reason: str) -> None:
        state.failed = True
        self.log("err", f"job {jobid!r} lost tasks "
                        f"{sorted(taskranks)}: {reason}")
        self.broker._frec(self.broker.sim.now, "wexec_lost",
                          jobid, reason, tuple(sorted(taskranks)))
        self.broker.publish("wexec.lost",
                            {"jobid": jobid,
                             "taskranks": sorted(taskranks),
                             "reason": reason})

    def _on_respawn(self, msg: Message) -> None:
        """Apply a respawn epoch (same event order on every broker, so
        every broker rewrites its assignment map identically)."""
        p = msg.payload
        state = self.jobs.get(p["jobid"])
        if state is None:
            return
        epoch = p["epoch"]
        if epoch <= state.epoch:
            return                       # duplicate / stale respawn
        state.epoch = epoch
        ranks = p["ranks"]
        factory = self.registry.get(state.spec["task"])
        for i, t in enumerate(p["taskranks"]):
            state.retries[t] = state.retries.get(t, 0) + 1
            old = state.assign.get(t)
            tgt = ranks[i % len(ranks)]
            state.assign[t] = tgt
            if t in state.rcs:
                continue                 # completed while the event flew
            if tgt == self.rank:
                proc = state.procs.get(t)
                if proc is not None and proc.is_alive:
                    continue             # still running here (false death)
                self.respawns += 1
                self._spawn_task(state, t, factory)
            elif old == self.rank:
                # Moved away from us: cancel the (superseded) local
                # incarnation; _task_finished drops non-owner rcs.
                proc = state.procs.pop(t, None)
                if proc is not None and proc.is_alive:
                    proc.interrupt(_SIGKILL)
        self._maybe_forward(state)

    def _on_lost(self, msg: Message) -> None:
        jobid = msg.payload["jobid"]
        state = self.jobs.pop(jobid, None)
        self._pending_signals.pop(jobid, None)
        if state is None:
            return
        self.lost_jobs.append(jobid)
        for proc in list(state.procs.values()):
            if proc.is_alive:
                proc.interrupt(_SIGKILL)

    # ------------------------------------------------------------------
    # tool access (Challenge 4: debugger/profiler attachment)
    # ------------------------------------------------------------------
    @request_handler(required=("jobid",))
    def req_query(self, msg: Message) -> None:
        """Report this broker's live tasks for a job: rank-addressed
        tools (ring/tree overlays) call this on every broker to build a
        job-wide snapshot without touching the application."""
        jobid = msg.payload["jobid"]
        state = self.jobs.get(jobid)
        tasks = []
        if state is not None:
            for taskrank, ctx in state.ctxs.items():
                proc = state.procs.get(taskrank)
                tasks.append({
                    "taskrank": taskrank,
                    "alive": bool(proc is not None and proc.is_alive),
                    "status": ctx.status,
                    "stdout_lines": len(ctx.stdout),
                })
        self.respond(msg, {"rank": self.rank, "jobid": jobid,
                           "tasks": tasks})

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    @request_handler(required=("jobid",))
    def req_signal(self, msg: Message) -> None:
        """Client RPC: deliver ``signum`` to every task of a job."""
        if self.broker.parent is not None:
            self.proxy_upstream(msg)
            return
        jobid = msg.payload["jobid"]
        if jobid not in self.jobs:
            # Answer definitively instead of publishing blindly: the
            # root always holds state for an active job.
            self.respond(msg, error=f"unknown job {jobid!r}",
                         code=ENOENT)
            return
        self.broker.publish("wexec.signal", dict(msg.payload))
        self.respond(msg, {})

    def _on_signal(self, msg: Message) -> None:
        jobid = msg.payload["jobid"]
        signum = msg.payload.get("signum", _SIGTERM)
        state = self.jobs.get(jobid)
        if state is None:
            if jobid not in self.done_jobs and jobid not in self.lost_jobs:
                # wexec.start may be delayed or reordered behind the
                # signal under chaos: buffer and re-apply at start.
                self._pending_signals.setdefault(jobid, []).append(signum)
            return
        self._signal_local(state, signum)

    def _signal_local(self, state: _JobState, signum: int) -> None:
        for taskrank, proc in list(state.procs.items()):
            if proc.is_alive:
                proc.interrupt(signum)
