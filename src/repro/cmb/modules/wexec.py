"""``wexec`` — bulk remote execution (Table I).

"Remote processes can be launched in bulk, monitored, receive signals,
and have standard I/O captured in the KVS."

Launch: a ``wexec.run`` RPC reaches the root, which validates the job
spec and publishes a ``wexec.start`` event.  Every broker computes its
own task set from the spec — task rank *r* runs on session rank
``ranks[r % len(ranks)]``, the cyclic distribution KAP describes
("consecutive rank processes are distributed to consecutive nodes") —
and spawns the tasks as simulated processes.

Monitoring: when all of a broker's local tasks finish, a completion
tally is reduced up the tree (each broker waits for its whole subtree
before forwarding one message); the root publishes ``wexec.done`` when
the job's full ``nprocs`` have completed.

I/O: each task's stdout lines are committed to the KVS under
``lwj.<jobid>.<taskrank>.stdout`` when the ``kvs`` module is loaded.

Signals: ``wexec.signal`` broadcasts an event; brokers interrupt the
targeted local tasks.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ...sim.kernel import Interrupt, Process
from ..errors import EINVAL, ENOENT
from ..message import Message
from ..module import CommsModule, request_handler

__all__ = ["WexecModule", "TaskContext"]


class TaskContext:
    """Execution context handed to each launched task.

    A task factory has signature ``factory(ctx) -> generator``; the
    generator may yield simulation events (e.g. ``ctx.sim.timeout``)
    to model work, and use :meth:`print` for captured stdout or
    :meth:`connect` for a CMB handle (PMI, KVS, barriers).
    """

    def __init__(self, module: "WexecModule", jobid: Any, taskrank: int,
                 nprocs: int, args: dict):
        self.module = module
        self.jobid = jobid
        self.taskrank = taskrank
        self.nprocs = nprocs
        self.args = args
        self.stdout: list[str] = []
        self.signal: Optional[int] = None
        #: Free-form task status, visible to attached tools via the
        #: ``wexec.query`` RPC (the paper's "secure third-party access
        #: to running jobs" for debuggers/profilers).
        self.status: str = "starting"

    @property
    def sim(self):
        """The simulation clock/event factory."""
        return self.module.broker.sim

    @property
    def broker_rank(self) -> int:
        """Session rank of the hosting broker."""
        return self.module.rank

    def print(self, text: str) -> None:
        """Capture one line of standard output."""
        self.stdout.append(text)

    def connect(self):
        """Open a CMB handle on the local broker (closed automatically
        when the task ends)."""
        handle = self.module.broker.session.connect(self.module.rank)
        self.module._task_handles.setdefault(
            (self.jobid, self.taskrank), []).append(handle)
        return handle


class _JobState:
    __slots__ = ("spec", "local_left", "subtree_expected", "subtree_done",
                 "rcs", "forwarded", "procs", "ctxs")

    def __init__(self, spec: dict):
        self.spec = spec
        self.local_left = 0
        self.subtree_expected = 0
        self.subtree_done = 0
        self.rcs: dict[int, int] = {}
        self.forwarded = False
        self.procs: dict[int, Process] = {}
        self.ctxs: dict[int, "TaskContext"] = {}


class WexecModule(CommsModule):
    """Bulk launcher / monitor for simulated remote processes.

    Config
    ------
    registry:
        ``{task_name: factory(ctx) -> generator}`` — the launchable
        programs (the simulated equivalent of executables on disk).
    """

    name = "wexec"

    def __init__(self, broker, *,
                 registry: Optional[dict[str, Callable]] = None):
        super().__init__(broker, registry=registry)
        self.registry = registry or {}
        self.jobs: dict[Any, _JobState] = {}
        self.output: dict[tuple, list[str]] = {}
        self._task_handles: dict[tuple, list] = {}
        self.done_jobs: list[Any] = []

    def start(self) -> None:
        self.broker.subscribe("wexec.start", self._on_start)
        self.broker.subscribe("wexec.signal", self._on_signal)
        self.broker.subscribe("wexec.done", self._on_done)

    # ------------------------------------------------------------------
    # launch path
    # ------------------------------------------------------------------
    @request_handler(required=("jobid",))
    def req_run(self, msg: Message) -> None:
        """Client RPC: run {jobid, task, nprocs, ranks?, args?}."""
        if not self.is_root:
            self.proxy_upstream(msg)
            return
        p = msg.payload
        task = p.get("task")
        nprocs = p.get("nprocs", 1)
        ranks = p.get("ranks") or list(range(self.broker.session.size))
        if task not in self.registry:
            self.respond(msg, error=f"unknown task {task!r}", code=ENOENT)
            return
        if nprocs < 1 or not ranks:
            self.respond(msg, error="bad job shape", code=EINVAL)
            return
        spec = {"jobid": p["jobid"], "task": task, "nprocs": nprocs,
                "ranks": list(ranks), "args": p.get("args", {})}
        self.broker.publish("wexec.start", spec)
        self.respond(msg, {"jobid": p["jobid"], "nprocs": nprocs})

    def _taskranks_for(self, spec: dict, rank: int) -> list[int]:
        ranks = spec["ranks"]
        return [r for r in range(spec["nprocs"])
                if ranks[r % len(ranks)] == rank]

    def _subtree_taskcount(self, spec: dict) -> int:
        topo = self.broker.session.topology
        return sum(len(self._taskranks_for(spec, r))
                   for r in topo.subtree(self.rank))

    def _on_start(self, msg: Message) -> None:
        spec = msg.payload
        jobid = spec["jobid"]
        state = _JobState(spec)
        self.jobs[jobid] = state
        mine = self._taskranks_for(spec, self.rank)
        state.local_left = len(mine)
        state.subtree_expected = self._subtree_taskcount(spec)
        if state.subtree_expected == 0:
            return
        factory = self.registry.get(spec["task"])
        for taskrank in mine:
            ctx = TaskContext(self, jobid, taskrank, spec["nprocs"],
                              spec["args"])
            state.ctxs[taskrank] = ctx
            proc = self.broker.sim.spawn(
                self._run_task(ctx, factory),
                name=f"task[{jobid}:{taskrank}]")
            state.procs[taskrank] = proc
        if state.local_left == 0:
            self._maybe_forward(state)

    def _run_task(self, ctx: TaskContext, factory: Callable):
        rc = 0
        body = self.broker.sim.spawn(
            factory(ctx), name=f"body[{ctx.jobid}:{ctx.taskrank}]",
            contain=True)
        try:
            yield body
        except Interrupt as it:
            ctx.signal = it.cause if isinstance(it.cause, int) else 15
            if body.is_alive:
                body.interrupt(it.cause)
            rc = 128 + ctx.signal
        except Exception:
            rc = 1
        self._task_finished(ctx, rc)

    def _task_finished(self, ctx: TaskContext, rc: int) -> None:
        key = (ctx.jobid, ctx.taskrank)
        self.output[key] = list(ctx.stdout)
        for handle in self._task_handles.pop(key, []):
            handle.close()
        self._store_stdout(ctx)
        state = self.jobs.get(ctx.jobid)
        if state is None:
            return
        state.rcs[ctx.taskrank] = rc
        state.local_left -= 1
        state.subtree_done += 1
        state.procs.pop(ctx.taskrank, None)
        self._maybe_forward(state)

    def _store_stdout(self, ctx: TaskContext) -> None:
        kvs = self.broker.modules.get("kvs")
        if kvs is None or not ctx.stdout:
            return
        key = f"lwj.{ctx.jobid}.{ctx.taskrank}.stdout"
        kvs.local_put(("wexec", ctx.jobid, ctx.taskrank), key, ctx.stdout)
        kvs.local_commit(("wexec", ctx.jobid, ctx.taskrank))

    # ------------------------------------------------------------------
    # completion reduction
    # ------------------------------------------------------------------
    @request_handler(required=("jobid", "count", "rcs"))
    def req_complete(self, msg: Message) -> None:
        """A child subtree's completion tally."""
        p = msg.payload
        self.respond(msg, {})
        state = self.jobs.get(p["jobid"])
        if state is None:
            return
        state.subtree_done += p["count"]
        for taskrank, rc in p["rcs"].items():
            state.rcs[int(taskrank)] = rc
        self._maybe_forward(state)

    def _maybe_forward(self, state: _JobState) -> None:
        if (state.forwarded or state.local_left > 0
                or state.subtree_done < state.subtree_expected):
            return
        state.forwarded = True
        jobid = state.spec["jobid"]
        if self.is_root:
            status = max(state.rcs.values(), default=0)
            self.broker.publish("wexec.done",
                                {"jobid": jobid, "status": status,
                                 "rcs": {str(k): v
                                         for k, v in state.rcs.items()}})
            return
        self.broker.rpc_parent_cb(
            "wexec.complete",
            {"jobid": jobid, "count": state.subtree_done,
             "rcs": {str(k): v for k, v in state.rcs.items()}},
            lambda resp: None)

    def _on_done(self, msg: Message) -> None:
        jobid = msg.payload["jobid"]
        self.jobs.pop(jobid, None)
        self.done_jobs.append(jobid)

    # ------------------------------------------------------------------
    # tool access (Challenge 4: debugger/profiler attachment)
    # ------------------------------------------------------------------
    @request_handler(required=("jobid",))
    def req_query(self, msg: Message) -> None:
        """Report this broker's live tasks for a job: rank-addressed
        tools (ring/tree overlays) call this on every broker to build a
        job-wide snapshot without touching the application."""
        jobid = msg.payload["jobid"]
        state = self.jobs.get(jobid)
        tasks = []
        if state is not None:
            for taskrank, ctx in state.ctxs.items():
                proc = state.procs.get(taskrank)
                tasks.append({
                    "taskrank": taskrank,
                    "alive": bool(proc is not None and proc.is_alive),
                    "status": ctx.status,
                    "stdout_lines": len(ctx.stdout),
                })
        self.respond(msg, {"rank": self.rank, "jobid": jobid,
                           "tasks": tasks})

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    @request_handler(required=("jobid",))
    def req_signal(self, msg: Message) -> None:
        """Client RPC: deliver ``signum`` to every task of a job."""
        if not self.is_root:
            self.proxy_upstream(msg)
            return
        self.broker.publish("wexec.signal", dict(msg.payload))
        self.respond(msg, {})

    def _on_signal(self, msg: Message) -> None:
        jobid = msg.payload["jobid"]
        signum = msg.payload.get("signum", 15)
        state = self.jobs.get(jobid)
        if state is None:
            return
        for taskrank, proc in list(state.procs.items()):
            if proc.is_alive:
                proc.interrupt(signum)
