"""PMI over the CMB — the MPI bootstrap interface.

The paper: "a custom PMI library allows MPI run-times to access the
Flux KVS and collective barrier modules over this transport".  This is
the classic wire-up pattern: every MPI rank *puts* its connection
endpoint into the KVS, all ranks *fence*, then each rank *gets* the
endpoints of its peers — exactly the access pattern KAP generalizes.

:class:`PmiClient` implements the PMI-1 style calls (init, put, get,
fence/commit, finalize) on top of :class:`~repro.kvs.api.KvsClient`
and the barrier module.
"""

from __future__ import annotations

from typing import Any

from ..kvs.api import KvsClient
from ..sim.kernel import Event
from .api import Handle

__all__ = ["PmiClient"]


class PmiClient:
    """PMI bindings for one simulated MPI process.

    Parameters
    ----------
    handle:
        CMB handle of the process.
    jobid:
        Namespace for this job's KVS keys (``pmi.<jobid>.…``).
    rank / size:
        The process's PMI rank and the job size.
    """

    def __init__(self, handle: Handle, jobid: Any, rank: int, size: int):
        self.handle = handle
        self.kvs = KvsClient(handle)
        self.jobid = jobid
        self.rank = rank
        self.size = size
        self._fence_seq = 0

    @property
    def kvsname(self) -> str:
        """The PMI KVS namespace for this job."""
        return f"pmi.{self.jobid}"

    def put(self, key: str, value: Any) -> Event:
        """``PMI_KVS_Put``: stage ``key=value`` (visible after fence)."""
        return self.kvs.put(f"{self.kvsname}.{key}", value)

    def fence(self) -> Event:
        """``PMI_KVS_Commit`` + ``PMI_Barrier`` fused, as Flux does it:
        a collective ``kvs_fence`` across all ``size`` ranks."""
        self._fence_seq += 1
        return self.kvs.fence(f"{self.kvsname}.fence.{self._fence_seq}",
                              self.size)

    def get(self, key: str) -> Event:
        """``PMI_KVS_Get``: read a peer's staged value."""
        return self.kvs.get(f"{self.kvsname}.{key}")

    def barrier(self) -> Event:
        """``PMI_Barrier`` without a KVS flush (pure synchronization)."""
        self._fence_seq += 1
        return self.handle.barrier(
            f"{self.kvsname}.barrier.{self._fence_seq}", self.size)

    def exchange_business_cards(self, card: Any):
        """The canonical MPI wire-up: publish this rank's ``card``,
        fence, and return all peers' cards in rank order.

        A generator — run it inside a simulated process:
        ``cards = yield from pmi.exchange_business_cards(my_card)``.
        """
        yield self.put(f"card.{self.rank}", card)
        yield self.fence()
        cards = []
        for peer in range(self.size):
            value = yield self.get(f"card.{peer}")
            cards.append(value)
        return cards
