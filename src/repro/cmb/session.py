"""Comms sessions: the per-job overlay network.

A :class:`CommsSession` corresponds to the paper's *comms session*: the
set of CMB daemons (one per node of a Flux job's allocation) wired into
the tree/event/ring planes, loaded with comms modules, and serving
local clients.  Sessions are created per Flux instance; a child job's
session is bootstrapped over a subset of its parent's nodes (see
:mod:`repro.core.instance`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Type

from ..obs import SpanTracer, merge_snapshots
from ..sim.cluster import Cluster
from ..sim.trace import Tracer
from .api import Handle
from .broker import Broker
from .module import CommsModule
from .topology import RingTopology, TreeTopology

__all__ = ["CommsSession", "ModuleSpec"]

_session_counter = iter(range(1, 1 << 31))


class ModuleSpec:
    """How to instantiate one comms module across the session.

    Parameters
    ----------
    factory:
        The :class:`CommsModule` subclass (or factory callable).
    max_depth:
        Load the module only at tree depth <= ``max_depth``.  The paper:
        "a comms module may be loaded at a configurable tree depth to
        tune its level of distribution or to conserve node resources".
        ``None`` loads everywhere.
    config:
        Keyword configuration forwarded to the module constructor.
    """

    def __init__(self, factory: Type[CommsModule] | Callable[..., CommsModule],
                 *, max_depth: Optional[int] = None, **config):
        self.factory = factory
        self.max_depth = max_depth
        self.config = config


class CommsSession:
    """The overlay network and daemons for one Flux instance.

    Parameters
    ----------
    cluster:
        The simulated cluster supplying nodes/network/clock.
    node_ids:
        Which cluster nodes participate; session rank ``i`` runs on
        ``node_ids[i]`` and rank 0 is the session root.
    topology:
        Shape of the tree plane (default: binary, as in the paper's
        experiments).
    modules:
        Comms modules to load at wire-up.
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; when set, the
        session's per-module/per-plane message-count breakdown is
        recorded into it at :meth:`stop` time (category
        ``cmb.msgcounts``) so benchmark harnesses can report message
        counts alongside latencies.
    """

    def __init__(self, cluster: Cluster,
                 node_ids: Optional[Sequence[int]] = None,
                 topology: Optional[TreeTopology] = None,
                 modules: Iterable[ModuleSpec] = (),
                 tracer: Optional[Tracer] = None):
        self.cluster = cluster
        self.tracer = tracer
        self.sim = cluster.sim
        self.network = cluster.network
        self.node_ids = list(node_ids if node_ids is not None
                             else range(len(cluster)))
        if not self.node_ids:
            raise ValueError("session needs at least one node")
        self.size = len(self.node_ids)
        self.topology = topology or TreeTopology(self.size, arity=2)
        if self.topology.size != self.size:
            raise ValueError(
                f"topology size {self.topology.size} != session size "
                f"{self.size}")
        self.ring = RingTopology(self.size)
        #: Fabric port for this session's brokers: every Flux job's
        #: overlay network gets its own endpoints on the shared NICs.
        self.port_key = f"cmb{next(_session_counter)}"
        self.parent_map = self.topology.parent_map()
        self.local_procs: dict[int, int] = {r: 0 for r in range(self.size)}
        #: Per-hop retransmission policy for pending requests, active
        #: only while a :class:`~repro.sim.faults.FaultPlan` is
        #: installed on the network (lossy-fabric recovery); base
        #: timeout doubles per attempt.  ``retransmit_max = 0``
        #: disables broker-level retransmission entirely.
        self.retransmit_timeout = 5e-3
        self.retransmit_max = 4
        #: Flight-recorder ring capacity per broker (rounded up to a
        #: power of two).  The recorder is always on — it is a pure
        #: observer, so it cannot perturb a run (see
        #: :mod:`repro.obs.flight`).
        self.flight_capacity = 1024
        #: Terminal client RpcErrors noted by Handle retry loops —
        #: bounded bookkeeping the post-mortem dump triggers consult.
        self.terminal_errors: list = []
        self._next_client_id = 1
        self._subtree_procs_cache: Optional[list[int]] = None
        #: Distributed-tracing collector (``None`` = tracing off, the
        #: default; see :meth:`enable_tracing`).  Pure bookkeeping —
        #: it schedules no events and draws no randomness, so enabling
        #: it cannot change simulated behavior.
        self.span_tracer: Optional[SpanTracer] = None
        #: Runtime sanitizer hub (``None`` = sanitizers off, the
        #: default; see :meth:`enable_sanitizers`).  Like the span
        #: tracer, a pure observer: enabling it cannot change a run.
        self.sanitizers = None
        self.brokers: list[Broker] = [Broker(self, r)
                                      for r in range(self.size)]
        self._started = False
        for spec in modules:
            self.load_module(spec)

    # ------------------------------------------------------------------
    # wiring helpers used by brokers
    # ------------------------------------------------------------------
    def node_of_rank(self, rank: int) -> int:
        """Cluster node hosting session rank ``rank``."""
        return self.node_ids[rank]

    def parent_of(self, rank: int) -> Optional[int]:
        """Original-topology parent (used to compute heal targets)."""
        return self.topology.parent(rank)

    def children_of(self, rank: int) -> list[int]:
        """Original-topology children of ``rank``."""
        return self.topology.children(rank)

    def nearest_live_ancestor(self, rank: int) -> Optional[int]:
        """First *live* broker on ``rank``'s original ancestor chain —
        where orphans re-attach when ``rank`` dies (walks past earlier
        corpses, so cascading failures still heal toward the root)."""
        p = self.parent_of(rank)
        while p is not None and not self.brokers[p].alive:
            p = self.parent_of(p)
        return p

    def acting_root(self) -> Optional[int]:
        """The deterministic acting overlay root: the minimum live
        rank.  When the static root (or a rank's whole ancestor chain)
        is dead, every live broker heals toward this rank — it takes
        over the event-plane flood point and the heartbeat."""
        for broker in self.brokers:
            if broker.alive:
                return broker.rank
        return None

    # ------------------------------------------------------------------
    # module management
    # ------------------------------------------------------------------
    def load_module(self, spec: ModuleSpec) -> None:
        """Instantiate ``spec`` on every eligible broker."""
        for broker in self.brokers:
            depth = self.topology.depth(broker.rank)
            if spec.max_depth is not None and depth > spec.max_depth:
                continue
            mod = spec.factory(broker, **spec.config)
            broker.load_module(mod)
            if self._started:
                mod.start()

    def module_at(self, rank: int, name: str) -> CommsModule:
        """The instance of module ``name`` loaded at ``rank``."""
        return self.brokers[rank].modules[name]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CommsSession":
        """Start every broker's inbox loop and module set."""
        if self._started:
            raise RuntimeError("session already started")
        self._started = True
        for broker in self.brokers:
            broker.start()
        return self

    def stop(self) -> None:
        """Tear the session down (recording message counts if traced)."""
        if self.sanitizers is not None:
            self.sanitizers.finish()
        if self.span_tracer is not None:
            self.span_tracer.close_open()
        if self.tracer is not None:
            self.trace_message_counts(self.tracer)
            plan = self.network.fault_plan
            if plan is not None:
                self.tracer.record(self.sim.now, "net.faults",
                                   plan.stats())
        for broker in self.brokers:
            if broker.alive:
                broker.stop()
        self._started = False

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_tracing(self, *, sample_every: int = 1,
                       span_budget: int | None = None) -> SpanTracer:
        """Turn on distributed tracing; returns the session tracer.

        Every client API call then becomes one trace whose spans cover
        each forwarding hop, module dispatch, retry, and KVS protocol
        step.  Export with
        ``session.span_tracer.to_chrome_trace()`` (Perfetto-loadable).

        ``sample_every`` head-samples: only every N-th trace is
        retained — except traces recording an error, which are always
        kept (tail sampling).  ``span_budget`` makes the stride
        adaptive: when retained spans exceed the budget, the stride
        doubles.  Defaults record everything (pre-sampling behavior).
        """
        if self.span_tracer is None:
            self.span_tracer = SpanTracer(lambda: self.sim.now,
                                          sample_every=sample_every,
                                          span_budget=span_budget)
        return self.span_tracer

    def enable_sanitizers(self, *, span_check: bool = True):
        """Turn on the runtime sanitizer suite; returns the
        :class:`~repro.analysis.sanitizers.SanitizerSet`.

        Installs the hub on this session (KVS consistency hooks) and
        on the shared network fabric (FIFO link checking).  With
        ``span_check=True`` tracing is enabled too and the span-forest
        checker validates the causal forest at ``finish()`` time.
        Sanitizers are pure observers — they schedule no events and
        draw no randomness — so the run stays event-identical.
        """
        if self.sanitizers is None:
            from ..analysis.sanitizers import SanitizerSet
            self.sanitizers = SanitizerSet(lambda: self.sim.now)
            self.network.sanitizers = self.sanitizers
            if span_check:
                self.sanitizers.attach_tracer(self.enable_tracing())
        return self.sanitizers

    def metrics_snapshot(self, rank: int) -> dict:
        """The metrics-registry snapshot of the broker at ``rank``."""
        return self.brokers[rank].metrics_snapshot()

    def metrics_aggregate(self) -> dict:
        """Session-wide aggregate of every broker's registry, merged
        in-process (the ``stats`` comms module computes the same thing
        over the wire via tree reduction)."""
        return merge_snapshots(b.metrics_snapshot()
                               for b in self.brokers)

    def message_counts(self) -> dict[tuple[str, str, str], int]:
        """Session-wide message counts keyed by (module, plane, kind).

        Kinds are ``request`` / ``response`` / ``error`` / ``event`` /
        ``ring``; planes are the fabric planes plus the ``ipc`` and
        ``local`` pseudo-planes (client deliveries / in-broker
        dispatches).  Each forwarding hop counts once — the per-hop
        accounting behind the benchmarks' message-count breakdowns.
        """
        totals: dict[tuple[str, str, str], int] = {}
        for broker in self.brokers:
            for key, n in broker.msg_counts.items():
                totals[key] = totals.get(key, 0) + n
        return totals

    def trace_message_counts(self, tracer: Tracer) -> None:
        """Record the current message-count breakdown into ``tracer``
        as one ``cmb.msgcounts`` record with a deterministic layout."""
        counts = self.message_counts()
        tracer.record(self.sim.now, "cmb.msgcounts", {
            f"{mod}/{plane}/{kind}": counts[(mod, plane, kind)]
            for mod, plane, kind in sorted(counts)})

    def fail_rank(self, rank: int) -> None:
        """Kill the broker at ``rank`` along with its node (fault
        injection for the self-healing / liveness tests)."""
        broker = self.brokers[rank]
        broker.alive = False
        self.cluster.fail_node(self.node_of_rank(rank))
        # Physical teardown: processes hosted by the dead node (wexec
        # tasks, ...) die with it.
        for mod in broker.modules.values():
            mod.node_failed()
        self._subtree_procs_cache = None

    def heal_around(self, dead_rank: int) -> None:
        """Rewire all live brokers around ``dead_rank`` (invoked by the
        ``live`` module after it detects the failure)."""
        for broker in self.brokers:
            if broker.alive and broker.rank != dead_rank:
                broker.handle_peer_down(dead_rank)
        self._subtree_procs_cache = None

    def revive_rank(self, rank: int) -> None:
        """Bring a previously failed broker back into the session.

        Restores the node on the fabric, re-wires the revived broker
        from the original topology (parent = nearest live original
        ancestor; children = its live original children), and publishes
        ``live.reattach`` so every peer prunes the rank from its
        dead-set and hands back adopted orphans.
        """
        broker = self.brokers[rank]
        if broker.alive:
            return
        self.cluster.revive_node(self.node_of_rank(rank))
        broker.alive = True
        broker.parent = self.nearest_live_ancestor(rank) \
            if self.parent_of(rank) is not None else None
        broker.children = [c for c in self.children_of(rank)
                           if self.brokers[c].alive]
        self._subtree_procs_cache = None
        broker.publish("live.reattach", {"rank": rank})

    def note_terminal_error(self, topic: str, code: str,
                            rank: int, detail: str = "") -> None:
        """Record a terminal (non-retryable / retries-exhausted) client
        RpcError.  Pure bookkeeping: a bounded list append, consulted
        by the post-mortem dump triggers — never by the protocol."""
        if len(self.terminal_errors) < 256:
            self.terminal_errors.append(
                {"t": self.sim.now, "topic": topic, "code": code,
                 "rank": rank, "detail": detail[:200]})

    def flight_snapshots(self) -> dict[int, dict]:
        """Every broker's flight-recorder snapshot, keyed by rank
        (dead brokers included — their rings hold the era that killed
        them, which is exactly what a post-mortem wants)."""
        return {b.rank: b.flight.snapshot() for b in self.brokers}

    def plane_bytes(self) -> dict[str, int]:
        """Session-wide payload bytes sent per fabric plane."""
        totals: dict[str, int] = {}
        for broker in self.brokers:
            for plane, n in broker.plane_bytes.items():
                totals[plane] = totals.get(plane, 0) + n
        return totals

    def flight_peak(self) -> int:
        """Highest flight-ring occupancy across brokers."""
        return max((b.flight.peak for b in self.brokers), default=0)

    def level_bytes(self) -> dict[int, int]:
        """Payload bytes sent per *tree level*: all planes, grouped by
        the sending broker's static topology depth (root = 0).  The
        per-level view shows where aggregation payloads concentrate —
        the Figure 3 pathology is a byte bulge at the low depths."""
        totals: dict[int, int] = {}
        for broker in self.brokers:
            d = self.topology.depth(broker.rank)
            n = sum(broker.plane_bytes.values())
            if n:
                totals[d] = totals.get(d, 0) + n
        return totals

    def retry_stats(self) -> dict[str, int]:
        """Aggregate chaos-recovery counters across every broker:
        retransmissions, reroutes around dead hops, replay-cache hits,
        and duplicates parked behind in-flight originals."""
        out = {"retransmits": 0, "reroutes": 0, "replay_hits": 0,
               "dups_parked": 0}
        for broker in self.brokers:
            out["retransmits"] += broker.retransmits
            out["reroutes"] += broker.reroutes
            out["replay_hits"] += broker.replay_hits
            out["dups_parked"] += broker.dups_parked
        return out

    # ------------------------------------------------------------------
    # client service
    # ------------------------------------------------------------------
    def connect(self, rank: int, *, collective: bool = True) -> Handle:
        """Create a client :class:`Handle` bound to the broker at
        ``rank`` (the paper's UNIX-domain-socket client transport).

        ``collective=True`` registers the client as a participant in
        collective operations (fence), updating the per-subtree
        process counts the KVS reduction logic relies on.
        """
        handle = Handle(self, rank)
        if collective:
            self.local_procs[rank] += 1
            self._subtree_procs_cache = None
        return handle

    def disconnect(self, handle: Handle) -> None:
        """Release a handle created with ``collective=True``."""
        if self.local_procs[handle.rank] > 0:
            self.local_procs[handle.rank] -= 1
            self._subtree_procs_cache = None

    def subtree_procs(self, rank: int) -> int:
        """Number of collective participants in the subtree at ``rank``."""
        if self._subtree_procs_cache is None:
            counts = [0] * self.size
            # Ranks in reverse order: children have higher indices in a
            # heap-layout tree, so one backward pass accumulates bottom-up.
            for r in range(self.size - 1, -1, -1):
                counts[r] = self.local_procs[r] + sum(
                    counts[c] for c in self.brokers[r].children
                    if self.brokers[c].alive)
            self._subtree_procs_cache = counts
        return self._subtree_procs_cache[rank]

    @property
    def total_procs(self) -> int:
        """Total registered collective participants."""
        return sum(self.local_procs.values())
