"""Overlay topologies for a comms session.

The paper wires each session with three persistent planes:

- a pub-sub *event* bus (we broadcast down the same tree shape),
- a request-response *tree* for RPCs, barriers and reductions
  ("although a binary tree is pictured, the tree shape is configurable"),
- a rank-addressed *ring* used for debugging tools, "where the high
  latency of a ring is manageable".

:class:`TreeTopology` supports any arity including ``flat`` (arity =
nranks-1, a star) so the ablation benches can sweep fan-out.  The
mutable ``parent_map`` owned by each session supports self-healing:
when an interior node dies, its orphaned children are re-parented to
their grandparent.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["TreeTopology", "RingTopology", "flat_topology"]


class TreeTopology:
    """A complete k-ary tree over ranks ``0 .. size-1`` rooted at 0.

    Rank numbering follows the standard heap layout: the children of
    rank ``r`` are ``k*r + 1 .. k*r + k``.
    """

    def __init__(self, size: int, arity: int = 2):
        if size <= 0:
            raise ValueError("topology size must be positive")
        if arity < 1:
            raise ValueError("tree arity must be >= 1")
        self.size = size
        self.arity = arity

    def parent(self, rank: int) -> Optional[int]:
        """Parent of ``rank``; ``None`` for the root."""
        self._check(rank)
        if rank == 0:
            return None
        return (rank - 1) // self.arity

    def children(self, rank: int) -> list[int]:
        """Children of ``rank`` (possibly empty at the leaves)."""
        self._check(rank)
        lo = self.arity * rank + 1
        return [c for c in range(lo, min(lo + self.arity, self.size))]

    def depth(self, rank: int) -> int:
        """Distance from the root (root is depth 0)."""
        self._check(rank)
        d = 0
        while rank != 0:
            rank = (rank - 1) // self.arity
            d += 1
        return d

    def max_depth(self) -> int:
        """Depth of the deepest rank."""
        return self.depth(self.size - 1) if self.size > 1 else 0

    def subtree(self, rank: int) -> Iterator[int]:
        """Iterate ``rank`` and every descendant (preorder)."""
        self._check(rank)
        stack = [rank]
        while stack:
            r = stack.pop()
            yield r
            stack.extend(reversed(self.children(r)))

    def subtree_size(self, rank: int) -> int:
        """Number of ranks in the subtree rooted at ``rank``."""
        return sum(1 for _ in self.subtree(rank))

    def parent_map(self) -> dict[int, Optional[int]]:
        """Mutable ``rank -> parent`` map seeding a session's live wiring."""
        return {r: self.parent(r) for r in range(self.size)}

    def is_in_subtree(self, rank: int, root: int) -> bool:
        """True if ``rank`` lies in the subtree rooted at ``root``."""
        self._check(rank)
        self._check(root)
        while rank >= root:
            if rank == root:
                return True
            rank = (rank - 1) // self.arity
        return False

    def next_hop_toward(self, here: int, dst: int) -> int:
        """The neighbour of ``here`` on the unique tree path to ``dst``.

        Used by the tree-routed rank-addressing extension (a
        low-latency alternative to the ring for point-to-point RPCs)
        and by the distributed-KVS-master extension to route flushes
        and faults toward a non-root master.
        """
        self._check(here)
        self._check(dst)
        if here == dst:
            raise ValueError("already at destination")
        if not self.is_in_subtree(dst, here):
            parent = self.parent(here)
            assert parent is not None  # root's subtree contains everyone
            return parent
        # Walk dst's ancestry until the child of `here` on the path.
        hop = dst
        while (hop - 1) // self.arity != here:
            hop = (hop - 1) // self.arity
        return hop

    def path(self, src: int, dst: int) -> list[int]:
        """Ranks on the tree path from ``src`` to ``dst``, inclusive."""
        hops = [src]
        cur = src
        while cur != dst:
            cur = self.next_hop_toward(cur, dst)
            hops.append(cur)
        return hops

    def _check(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} outside topology of {self.size}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TreeTopology size={self.size} arity={self.arity}>"


def flat_topology(size: int) -> TreeTopology:
    """A star: every rank is a direct child of the root.

    This models the traditional centralized daemon layout the paper's
    hierarchical design replaces; the ablation benches compare it
    against trees of increasing arity.
    """
    return TreeTopology(size, arity=max(1, size - 1))


class RingTopology:
    """The secondary rank-addressed overlay: a unidirectional ring."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("topology size must be positive")
        self.size = size

    def next_rank(self, rank: int) -> int:
        """Successor of ``rank`` on the ring."""
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} outside ring of {self.size}")
        return (rank + 1) % self.size

    def distance(self, src: int, dst: int) -> int:
        """Hops from ``src`` to ``dst`` travelling forward."""
        return (dst - src) % self.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RingTopology size={self.size}>"
