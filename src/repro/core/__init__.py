"""The Flux conceptual design (paper Section III): unified job model,
job hierarchy, and multilevel elasticity.

:mod:`.job` defines the unified job model (a job is a program *or* a
nested RJMS instance); :mod:`.instance` is the execution engine with
hierarchical scheduling and the grow/shrink consent chain;
:mod:`.hierarchy` has tree helpers and invariant checks.
"""

from .hierarchy import (check_parent_bounding, instance_tree_depth,
                        make_ensemble_spec, partitioned_specs,
                        walk_instances)
from .comms import CommsConfig
from .instance import FluxInstance
from .jobclient import JobClient
from .job import Job, JobKind, JobSpec, JobState

__all__ = [
    "check_parent_bounding", "instance_tree_depth", "make_ensemble_spec",
    "partitioned_specs", "walk_instances", "CommsConfig",
    "FluxInstance", "Job", "JobClient", "JobKind", "JobSpec", "JobState",
]
