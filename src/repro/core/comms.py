"""Per-job comms sessions for Flux instances.

Section III's communication model: "When a Flux job is created, a
secure, scalable overlay network with common communication service is
established across its allocated nodes.  Except for the root-level
job, the existing communication session of the parent job assists the
child job with rapid creation of its own session."

:class:`CommsConfig` tells a :class:`~repro.core.instance.FluxInstance`
how to build these sessions: which cluster carries them, which comms
modules to load, and how much simulated time session bring-up costs —
cheaper when a parent session assists (the paper's rapid creation)
than for a cold root-level bootstrap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cmb.modules import (BarrierModule, GroupModule, HeartbeatModule,
                           LiveModule, LogModule, ResvcModule,
                           WexecModule)
from ..cmb.modules.jobmgr import JobManagerModule
from ..cmb.session import CommsSession, ModuleSpec
from ..cmb.topology import TreeTopology
from ..kvs.module import KvsModule
from ..sim.cluster import Cluster
from ..sim.trace import Tracer

__all__ = ["CommsConfig"]


@dataclass
class CommsConfig:
    """How an instance hierarchy builds its per-job overlay networks.

    Attributes
    ----------
    cluster:
        The simulated cluster whose nodes host the brokers.
    task_registry:
        ``{name: factory(ctx) -> generator}`` for ``wexec``-launched
        program jobs (:attr:`JobSpec.task`).
    tree_arity:
        Fan-out of each session's tree plane.
    cold_boot_base / cold_boot_per_node:
        Bring-up cost of a *root-level* session: daemons start without
        an assisting parent (think: ssh fan-out), so the cost scales
        with node count.
    assisted_boot_base / assisted_boot_per_level:
        Bring-up cost when a parent session assists: the parent's
        overlay broadcasts the wire-up in one tree sweep, so the cost
        scales with tree depth — the paper's "rapid creation".
    tracer:
        Optional :class:`~repro.sim.trace.Tracer` handed to every
        session built from this config; each session records its
        per-module/per-plane message-count breakdown into it at stop
        time.
    with_heartbeat / hb_period / hb_max_epochs:
        Load the ``hb`` + ``live`` modules (liveness detection, tree
        self-healing, acting-root takeover).  Off by default so
        bounded simulations drain naturally.
    kvs_replicas:
        Ranks holding standby replicas of the KVS root master
        (multi-master failover); empty keeps single-master.
    wexec_max_restarts / wexec_respawn_backoff:
        Node-loss recovery knobs for the bulk launcher (per-task
        respawn budget and backoff base).
    """

    cluster: Cluster
    task_registry: dict = field(default_factory=dict)
    tree_arity: int = 2
    cold_boot_base: float = 5e-3
    cold_boot_per_node: float = 2e-4
    assisted_boot_base: float = 5e-4
    assisted_boot_per_level: float = 1e-4
    extra_modules: Optional[Callable[[int], list[ModuleSpec]]] = None
    tracer: Optional[Tracer] = None
    with_heartbeat: bool = False
    hb_period: float = 0.1
    hb_max_epochs: Optional[int] = None
    kvs_replicas: tuple = ()
    wexec_max_restarts: int = 2
    wexec_respawn_backoff: float = 0.05

    def bootstrap_delay(self, n_nodes: int, *, assisted: bool) -> float:
        """Simulated seconds to bring a session up over ``n_nodes``."""
        if assisted:
            depth = max(1.0, math.log2(max(n_nodes, 2)))
            return self.assisted_boot_base + self.assisted_boot_per_level * depth
        return self.cold_boot_base + self.cold_boot_per_node * n_nodes

    def build_session(self, node_ids: list[int]) -> CommsSession:
        """Construct (but not start) a session over ``node_ids`` with
        the standard service module set."""
        size = len(node_ids)
        replicas = tuple(r for r in self.kvs_replicas if r < size)
        modules = [
            ModuleSpec(KvsModule, replicas=replicas),
            ModuleSpec(BarrierModule),
            ModuleSpec(LogModule),
            ModuleSpec(GroupModule, max_depth=0),
            ModuleSpec(ResvcModule, max_depth=0),
            ModuleSpec(WexecModule, registry=self.task_registry,
                       max_restarts=self.wexec_max_restarts,
                       respawn_backoff=self.wexec_respawn_backoff),
            ModuleSpec(JobManagerModule),
        ]
        if self.with_heartbeat:
            modules.append(ModuleSpec(HeartbeatModule,
                                      period=self.hb_period,
                                      max_epochs=self.hb_max_epochs))
            modules.append(ModuleSpec(LiveModule))
        if self.extra_modules is not None:
            modules.extend(self.extra_modules(size))
        return CommsSession(
            self.cluster, node_ids=node_ids,
            topology=TreeTopology(size, arity=min(self.tree_arity,
                                                  max(1, size - 1))),
            modules=modules, tracer=self.tracer)
