"""Job-hierarchy helpers and invariant checks.

Utilities for building and inspecting trees of Flux instances, plus
validators asserting the Section III rules hold at run time — used by
tests and available to applications that want belt-and-braces checks.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..resource import types as rt
from .instance import FluxInstance
from .job import Job, JobKind, JobSpec

__all__ = ["walk_instances", "instance_tree_depth", "check_parent_bounding",
           "make_ensemble_spec", "partitioned_specs"]


def walk_instances(root: FluxInstance) -> Iterator[FluxInstance]:
    """Preorder walk of the live instance tree under ``root``."""
    yield root
    for job in root.jobs.values():
        if job.child is not None and job.child.active:
            yield from walk_instances(job.child)


def instance_tree_depth(root: FluxInstance) -> int:
    """Deepest live instance level under ``root`` (root = 0)."""
    return max((inst.depth for inst in walk_instances(root)),
               default=root.depth) - root.depth


def check_parent_bounding(parent: FluxInstance, job: Job) -> None:
    """Assert the parent bounding rule for one instance job: the
    child's total capacity never exceeds the parent's grant."""
    if job.child is None or job.allocation is None:
        return
    granted = job.allocation.ncores
    child_total = job.child.pool.total_cores()
    if child_total > granted:
        raise AssertionError(
            f"parent bounding violated: child {job.child.name!r} sees "
            f"{child_total} cores but was granted {granted}")


def make_ensemble_spec(name: str, ncores: int, member_specs: list[JobSpec],
                       child_policy: Optional[Callable] = None) -> JobSpec:
    """A nested-instance job spec for an ensemble (the paper's UQ /
    scale-bridging workloads): the parent schedules one INSTANCE job of
    ``ncores``; the child instance schedules the members within it."""
    return JobSpec(ncores=ncores, kind=JobKind.INSTANCE, name=name,
                   subjobs=list(member_specs), child_policy=child_policy,
                   walltime=sum(s.walltime or 0.0 for s in member_specs))


def partitioned_specs(total_cores: int, nchildren: int,
                      member_specs: list[JobSpec],
                      child_policy: Optional[Callable] = None
                      ) -> list[JobSpec]:
    """Split a workload into ``nchildren`` equal INSTANCE jobs — the
    two-level scheduling shape the ablation benches compare against a
    single monolithic queue."""
    if total_cores % nchildren:
        raise ValueError("total_cores must divide evenly among children")
    share = total_cores // nchildren
    buckets: list[list[JobSpec]] = [[] for _ in range(nchildren)]
    for i, spec in enumerate(member_specs):
        buckets[i % nchildren].append(spec)
    return [
        make_ensemble_spec(f"partition{i}", share, bucket,
                           child_policy=child_policy)
        for i, bucket in enumerate(buckets)
    ]
