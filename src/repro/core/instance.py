"""Flux instances: the unified job model's execution engine.

A :class:`FluxInstance` is an independent RJMS instance managing a
resource pool: it queues :class:`~repro.core.job.JobSpec` submissions,
runs a scheduler policy over them (charging simulated decision time,
so scheduler parallelism is measurable), executes PROGRAM jobs, and
recursively spawns child instances for INSTANCE jobs — realizing the
paper's hierarchy rules:

- **parent bounding** — a child's world is the projection of the
  allocation its parent granted (it cannot see, let alone use,
  anything else);
- **child empowerment** — the child schedules its own sub-jobs with
  its own policy, concurrently with its siblings;
- **parental consent** — grow/shrink requests climb the instance
  hierarchy and every level may grant, partially grant, or deny.
"""

from __future__ import annotations

from typing import Any, Optional

from ..resource.pool import (AllocationError, AllocationRequest,
                             ResourcePool)
from ..resource.projection import graft_allocation, project_allocation
from ..resource import types as rt
from ..sched.overhead import SchedCostModel, ZeroCostModel
from ..sched.policy import FcfsPolicy, SchedulerPolicy
from ..sched.queue import JobQueue
from ..sim.kernel import Event, Interrupt, Simulation
from .comms import CommsConfig
from .job import Job, JobKind, JobSpec, JobState

__all__ = ["FluxInstance"]


class FluxInstance:
    """One level of the Flux job hierarchy.

    Parameters
    ----------
    sim:
        The shared simulation.
    pool:
        The instance's resource pool (its entire visible world).
    policy:
        Scheduling policy (default FCFS).
    cost_model:
        Simulated cost of scheduling passes (default free).
    parent / host_job:
        Set when this instance *is* a job of a parent instance.
    name:
        Label for reports.
    max_pending:
        Admission-control bound on the pending queue (0 = unbounded).
        Wire submissions over the limit are rejected with a retryable
        ``EAGAIN`` at the job module; Python submissions raise.
    enforce_walltime:
        Arm the walltime watchdog: a PROGRAM job still running at its
        ``walltime`` is sent SIGTERM, then SIGKILL after
        ``term_grace``, and finishes in the TIMEOUT state.
    term_grace:
        Escalation grace between SIGTERM → SIGKILL → hard teardown.
    """

    def __init__(self, sim: Simulation, pool: ResourcePool,
                 policy: Optional[SchedulerPolicy] = None,
                 cost_model: Optional[SchedCostModel] = None,
                 parent: Optional["FluxInstance"] = None,
                 host_job: Optional[Job] = None,
                 name: str = "flux",
                 comms: Optional[CommsConfig] = None,
                 session=None,
                 max_pending: int = 0,
                 enforce_walltime: bool = False,
                 term_grace: float = 0.05):
        self.sim = sim
        self.pool = pool
        self.policy = policy or FcfsPolicy()
        self.cost_model = cost_model or ZeroCostModel()
        self.parent = parent
        self.host_job = host_job
        self.name = name
        self.max_pending = max_pending
        self.enforce_walltime = enforce_walltime
        self.term_grace = term_grace
        #: Per-job overlay network (Section III): the root instance
        #: boots its own session when a CommsConfig is given; child
        #: instances get theirs built (parent-assisted) at job start.
        self.comms = comms
        self.session = session
        self._owns_session = False
        if comms is not None and session is None:
            node_ids = self._pool_node_ids()
            self.session = comms.build_session(node_ids).start()
            self._owns_session = True
        self._jobmgr = None
        if self.session is not None:
            self._bind_job_manager()
        self.queue = JobQueue(limit=max_pending or None)
        self.jobs: dict[int, Job] = {}
        self.active = True
        self.sched_passes = 0
        self.sched_time = 0.0
        # Busy-core integrator for utilization reporting.
        self._busy_cores = 0
        self._busy_last_t = sim.now
        self._busy_area = 0.0
        self._wake: Event = sim.event(name=f"wake:{name}")
        self._drain_waiters: list[Event] = []
        self._sched_proc = sim.spawn(self._scheduler(), name=f"sched:{name}")

    def _bind_job_manager(self) -> None:
        """Attach this instance to the session's ``job`` comms modules:
        active on the root broker (in-band flux-submit), *standby* on
        every other broker — should the root die, the acting root's
        module promotes its standby hook and keeps the submission path
        and job queries alive (state recovered from the KVS journal)."""
        for rank, broker in enumerate(self.session.brokers):
            mod = broker.modules.get("job")
            if mod is None:
                continue
            mod.bind(self._submit_from_wire,
                     depth_fn=lambda: len(self.queue),
                     max_pending=self.max_pending,
                     standby=rank != 0,
                     on_takeover=self._adopt_job_manager)
            if rank == 0:
                self._jobmgr = mod

    def _adopt_job_manager(self, mod) -> None:
        """Re-home journaling onto the promoted (acting-root) module.

        Transitions that landed between the old root's death and this
        promotion were journaled into the corpse and lost — re-journal
        every known job's *current* state through the acting module so
        the KVS record, the event mirror, and any waiters listening for
        a terminal ``job.state`` all catch up."""
        self._jobmgr = mod
        for job in self.jobs.values():
            mod.journal(job, job.state.value, self.sim.now)

    #: JobSpec fields accepted over the wire (whitelist: wire specs are
    #: plain JSON and must not smuggle callables or nested instances).
    _WIRE_FIELDS = ("ncores", "duration", "walltime", "name", "task",
                    "ntasks", "task_args", "min_cores", "max_cores",
                    "malleable", "serial_fraction")

    def _submit_from_wire(self, payload: dict) -> Job:
        if "ncores" not in payload:
            raise ValueError("spec needs ncores")
        kwargs = {k: payload[k] for k in self._WIRE_FIELDS
                  if k in payload}
        return self.submit(JobSpec(**kwargs))

    def _pool_node_ids(self) -> list[int]:
        """Cluster node ids backing this instance's resource pool."""
        return sorted(node.properties.get("index", node.rid)
                      for node in self.pool.nodes())

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Levels above this instance (root = 0)."""
        d, cur = 0, self.parent
        while cur is not None:
            d, cur = d + 1, cur.parent
        return d

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a job; returns its :class:`Job` immediately."""
        if not self.active:
            raise RuntimeError(f"instance {self.name!r} is shut down")
        if self.queue.full:
            raise RuntimeError(
                f"pending queue full ({self.queue.limit} jobs)")
        job = Job(spec, self)
        self.jobs[job.jobid] = job
        self.queue.push(job)
        self._record_job_state(job, "pending")
        self._kick()
        return job

    def submit_many(self, specs: list[JobSpec]) -> list[Job]:
        """Enqueue a batch (single scheduler kick)."""
        jobs = [self.submit(s) for s in specs]
        return jobs

    def cancel(self, job: Job) -> None:
        """Cancel a pending job (running jobs run to completion)."""
        if job.state is JobState.PENDING:
            self.queue.remove(job)
            job.state = JobState.CANCELLED
            job.end_time = self.sim.now
            self._record_job_state(job, "cancelled")
            self._check_drained()

    def running_jobs(self) -> list[Job]:
        """Jobs currently executing."""
        return [j for j in self.jobs.values()
                if j.state is JobState.RUNNING]

    def completed_jobs(self) -> list[Job]:
        """Jobs in a terminal state."""
        return [j for j in self.jobs.values() if j.done]

    def drain(self) -> Event:
        """Event firing when every submitted job has reached a terminal
        state (and the queue is empty)."""
        ev = self.sim.event(name=f"drain:{self.name}")
        if self._is_drained():
            ev.succeed(self._stats())
        else:
            self._drain_waiters.append(ev)
        return ev

    def shutdown(self) -> None:
        """Stop scheduling (pending jobs are cancelled) and tear down
        this instance's comms session if it owns one."""
        for job in list(self.queue):
            self.cancel(job)
        self.active = False
        self._kick()
        if self.session is not None and self._owns_session:
            self.session.stop()

    # -- metrics ----------------------------------------------------------
    def utilization(self) -> float:
        """Busy-core-seconds over capacity-seconds since creation."""
        self._integrate()
        total = self.pool.total_cores()
        horizon = self.sim.now
        if horizon <= 0 or total == 0:
            return 0.0
        return self._busy_area / (total * horizon)

    def makespan(self) -> float:
        """Last completion time among finished jobs (0 if none)."""
        ends = [j.end_time for j in self.jobs.values()
                if j.end_time is not None]
        return max(ends) if ends else 0.0

    def mean_wait(self) -> float:
        """Average queue wait over started jobs."""
        waits = [j.wait_time for j in self.jobs.values()
                 if j.wait_time is not None]
        return sum(waits) / len(waits) if waits else 0.0

    # ------------------------------------------------------------------
    # elasticity (parental-consent chain)
    # ------------------------------------------------------------------
    def request_grow(self, job: Job, ncores: int) -> int:
        """Grow a running job's allocation by up to ``ncores``.

        Tries local free resources first; if short and this instance
        has a parent, asks the parent to grow *this instance's* grant
        (which recurses upward), grafts any new cores into the local
        graph, and retries.  Returns cores actually added.
        """
        if job.allocation is None:
            raise AllocationError(f"job {job.jobid} is not running")
        got = self.pool.grow(job.jobid, ncores)
        if got < ncores and self.parent is not None \
                and self.host_job is not None:
            granted = self.parent.grow_instance(
                self.host_job, ncores - got)
            if granted > 0:
                got += self.pool.grow(job.jobid, ncores - got)
        if got:
            self._busy_delta(got)
            self._notify_resize(job)
        return got

    def request_shrink(self, job: Job, ncores: int) -> int:
        """Give back up to ``ncores`` from a running job's allocation."""
        if job.allocation is None:
            raise AllocationError(f"job {job.jobid} is not running")
        freed = self.pool.shrink(job.jobid, ncores)
        if freed:
            self._busy_delta(-freed)
            self._notify_resize(job)
            self._kick()  # freed cores may unblock queued jobs
        return freed

    def _notify_resize(self, job: Job) -> None:
        """Wake the job's duration runner so it re-paces to the new
        allocation size."""
        ev = job._resize_ev
        if ev is not None and not ev.triggered:
            ev.succeed()

    def grow_instance(self, child_job: Job, ncores: int) -> int:
        """Parent-side consent: extend ``child_job``'s allocation and
        graft the new cores into the child instance's graph."""
        alloc = self.pool.allocations.get(child_job.jobid)
        if alloc is None or child_job.child is None:
            return 0
        before = {nrid: set(crids) for nrid, crids in alloc.cores.items()}
        got = self.pool.grow(child_job.jobid, ncores)
        if got < ncores and self.parent is not None \
                and self.host_job is not None:
            # Recurse upward: maybe the grandparent has slack for us.
            granted = self.parent.grow_instance(self.host_job, ncores - got)
            if granted > 0:
                got += self.pool.grow(child_job.jobid, ncores - got)
        if got == 0:
            return 0
        new_cores = {
            nrid: [c for c in crids if c not in before.get(nrid, set())]
            for nrid, crids in alloc.cores.items()}
        new_cores = {n: cs for n, cs in new_cores.items() if cs}
        graft_allocation(self.pool.graph, child_job.child.pool.graph,
                         new_cores)
        self._busy_delta(got)
        return got

    # ------------------------------------------------------------------
    # scheduler engine
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    def _scheduler(self):
        while True:
            if not self._wake.triggered:
                yield self._wake
            self._wake = self.sim.event(name=f"wake:{self.name}")
            if not self.active:
                return
            if len(self.queue):
                cost = self.cost_model.pass_cost(len(self.queue),
                                                 len(self.pool.nodes()))
                if cost > 0:
                    yield self.sim.timeout(cost)
                    self.sched_time += cost
                self.sched_passes += 1
                for job in self.policy.select(self, self.queue.snapshot()):
                    if job.state is JobState.PENDING:
                        self._try_start(job)
            # Runs even with an empty queue: freed cores flow back into
            # running malleable jobs.
            self._rebalance_malleable()

    def _request_for(self, spec: JobSpec,
                     ncores: Optional[int] = None) -> AllocationRequest:
        return AllocationRequest(
            ncores=ncores if ncores is not None else spec.ncores,
            memory_per_core=spec.memory_per_core,
            watts_per_core=spec.watts_per_core,
            exclusive=spec.exclusive,
            extra_charges=tuple(spec.extra_charges),
        )

    def _molded_size(self, spec: JobSpec) -> int:
        """Start size for a moldable job.

        Equal-share heuristic: offer the job ``free / queued`` cores so
        a backlog of moldable jobs divides the machine and everyone
        starts at once, rather than the first grabbing ``max_cores``
        and starving the rest.  A lone job gets everything up to its
        max.  The caller rejects grants below ``min_cores``.
        """
        free = self.pool.total_free_cores()
        lo = spec.min_cores if spec.min_cores is not None else spec.ncores
        hi = spec.max_cores if spec.max_cores is not None else spec.ncores
        fair = free // max(len(self.queue), 1)
        return min(free, max(lo, min(hi, fair)))

    def _try_start(self, job: Job) -> bool:
        spec = job.spec
        grant = None
        if spec.is_moldable:
            grant = self._molded_size(spec)
            lo = spec.min_cores if spec.min_cores is not None else spec.ncores
            if grant < lo:
                return False
        try:
            alloc = self.pool.allocate(job.jobid,
                                       self._request_for(spec, grant))
        except AllocationError:
            return False
        self.queue.remove(job)
        job.allocation = alloc
        self._record_job_state(job, "scheduled")
        job.state = JobState.RUNNING
        job.start_time = self.sim.now
        self._busy_delta(alloc.ncores)
        if job.spec.kind is JobKind.INSTANCE:
            self.sim.spawn(self._run_instance_job(job),
                           name=f"ijob:{job.jobid}")
        else:
            self.sim.spawn(self._run_program_job(job),
                           name=f"pjob:{job.jobid}")
        return True

    def _run_program_job(self, job: Job):
        spec = job.spec
        self._record_job_state(job, "running")
        runner = self.sim.spawn(self._program_body(job),
                                name=f"pbody:{job.jobid}", contain=True)
        watchdog = None
        # A rigid duration job finishes at exactly t=duration, and
        # JobSpec defaults walltime to duration — don't arm a watchdog
        # that could only ever tie with the job's own completion.
        cannot_overrun = (spec.task is None and spec.body is None
                          and not spec.is_moldable and not spec.malleable
                          and (spec.walltime or 0) >= (spec.duration or 0))
        if self.enforce_walltime and (spec.walltime or 0) > 0 \
                and not cannot_overrun:
            watchdog = self.sim.spawn(
                self._walltime_watchdog(job, runner),
                name=f"walltime:{job.jobid}", contain=True)
        try:
            yield runner
        except Exception as exc:
            if not job._timed_out:
                job.error = str(exc)
            self._finish(job, JobState.TIMEOUT if job._timed_out
                         else JobState.FAILED)
            return
        finally:
            if watchdog is not None and watchdog.is_alive:
                watchdog.interrupt()
        if job._timed_out:
            self._finish(job, JobState.TIMEOUT)
            return
        self._finish(job, JobState.COMPLETE)

    def _program_body(self, job: Job):
        """The job's actual workload, isolated in its own (contained)
        process so the walltime watchdog can tear it down."""
        spec = job.spec
        if spec.task is not None:
            rc = yield from self._run_task_job(job)
            if rc != 0:
                raise RuntimeError(f"task exited with status {rc}")
        elif spec.body is not None:
            body = self.sim.spawn(spec.body(job, self),
                                  name=f"body:{job.jobid}",
                                  contain=True)
            job._body_proc = body
            yield body
        elif spec.duration > 0:
            yield from self._run_duration(job)

    def _walltime_watchdog(self, job: Job, runner):
        """Walltime enforcement (sim-clock): SIGTERM at the limit,
        SIGKILL after ``term_grace``, then hard teardown — the job
        lands in TIMEOUT instead of running (or hanging) forever."""
        try:
            yield self.sim.timeout(job.spec.walltime)
        except Interrupt:
            return          # runner finished inside its walltime
        if not runner.is_alive:
            return
        job._timed_out = True
        job.error = f"walltime {job.spec.walltime}s exceeded"
        self._deliver_job_signal(job, runner, 15)
        yield self.sim.timeout(self.term_grace)
        if not runner.is_alive:
            return
        self._deliver_job_signal(job, runner, 9)
        yield self.sim.timeout(self.term_grace)
        if runner.is_alive:
            runner.interrupt(9)

    def _deliver_job_signal(self, job: Job, runner, signum: int) -> None:
        """Route a watchdog signal to the job's workload: task jobs
        get a session-wide ``wexec.signal`` (each task sees a real
        Interrupt and exits 128+sig), body jobs an Interrupt into the
        body process (bodies may catch it to clean up), duration jobs
        an Interrupt into the runner itself."""
        if job.spec.task is not None and self.session is not None:
            root = self.session.acting_root()
            if root is not None:
                self.session.brokers[root].publish(
                    "wexec.signal",
                    {"jobid": f"lwj{job.jobid}", "signum": signum})
            return
        target = job._body_proc
        if target is None or not target.is_alive:
            target = runner
        if target.is_alive:
            target.interrupt(signum)

    def _run_duration(self, job: Job):
        """Execute a fixed-work job, re-pacing on every resize.

        The job's total work is normalized to 1.0; running on ``n``
        cores burns it at rate ``1 / runtime_at(n)``.  A rigid job
        never resizes, so this degenerates to one ``timeout(duration)``.
        """
        spec = job.spec
        remaining = 1.0
        while remaining > 1e-12:
            assert job.allocation is not None
            n = max(job.allocation.ncores, 1)
            rate = 1.0 / spec.runtime_at(n)
            t0 = self.sim.now
            job._resize_ev = self.sim.event(name=f"resize:{job.jobid}")
            finished = self.sim.timeout(remaining / rate)
            which, _value = yield self.sim.any_of([finished,
                                                   job._resize_ev])
            remaining -= (self.sim.now - t0) * rate
            if which == 0:
                break
            # Superseded completion estimate: drop it from the event
            # heap so it neither fires nor drags the clock forward.
            finished.abandon()
        job._resize_ev = None

    def _session_ranks_of(self, job: Job) -> list[int]:
        """Session ranks hosting a job's allocated nodes."""
        assert self.session is not None and job.allocation is not None
        by_node = {nid: rank
                   for rank, nid in enumerate(self.session.node_ids)}
        return sorted(by_node[nid]
                      for nid in job.allocation.node_indices(self.pool.graph))

    def _run_task_job(self, job: Job):
        """Launch a registered wexec task across the job's allocation
        (requires an instance comms session)."""
        if self.session is None:
            raise RuntimeError(
                f"job {job.jobid}: task jobs need an instance comms "
                "session (pass CommsConfig)")
        spec = job.spec
        ranks = self._session_ranks_of(job)
        ntasks = spec.ntasks if spec.ntasks is not None else spec.ncores
        lwj = f"lwj{job.jobid}"
        handle = self.session.connect(ranks[0], collective=False)
        done_ch = self.sim.channel(name=f"wexec-done:{lwj}")
        handle.subscribe("wexec.done", done_ch.put)
        handle.subscribe("wexec.lost", done_ch.put)
        try:
            yield handle.rpc("wexec.run", {
                "jobid": lwj, "task": spec.task, "nprocs": ntasks,
                "ranks": ranks, "args": spec.task_args})
            while True:
                msg = yield done_ch.get()
                if msg.payload["jobid"] != lwj:
                    continue
                if msg.topic == "wexec.lost":
                    # Respawn budget exhausted: the job fails instead
                    # of waiting forever on a tally that cannot close.
                    raise RuntimeError(
                        f"lost tasks {msg.payload['taskranks']}: "
                        f"{msg.payload['reason']}")
                return msg.payload["status"]
        finally:
            handle.close()

    def _record_job_state(self, job: Job, state: str) -> None:
        """Journal the job's transition into the instance KVS
        (``lwj.<jobid>.state`` — the provenance store the paper's
        design calls for) and announce it on the event plane for
        in-band submitters.  Routed through the *active* job manager
        module, so after a root failover the journal keeps flowing
        from the acting root."""
        if self.session is None:
            return
        if self._jobmgr is not None:
            self._jobmgr.journal(job, state, self.sim.now)
            return
        # No job module loaded in this session: journal directly.
        kvs = self.session.brokers[0].modules.get("kvs")
        if kvs is None:
            return
        kvs.local_put(("job-manager", job.jobid),
                      f"lwj.{job.jobid}.state",
                      {"state": state, "t": self.sim.now,
                       "ncores": job.spec.ncores,
                       "name": job.spec.name})
        kvs.local_commit(("job-manager", job.jobid))

    def _run_instance_job(self, job: Job):
        spec = job.spec
        assert job.allocation is not None
        self._record_job_state(job, "running")
        child_graph = project_allocation(self.pool.graph, job.allocation,
                                         name=spec.name or f"job{job.jobid}")
        child_pool = ResourcePool(child_graph)
        policy = (spec.child_policy() if spec.child_policy is not None
                  else type(self.policy)())
        child_session = None
        if self.comms is not None:
            # Parent-assisted bring-up of the child's own overlay
            # (Section III: "the existing communication session of the
            # parent job assists the child job with rapid creation").
            node_ids = job.allocation.node_indices(self.pool.graph)
            yield self.sim.timeout(
                self.comms.bootstrap_delay(len(node_ids), assisted=True))
            child_session = self.comms.build_session(node_ids).start()
        child = FluxInstance(self.sim, child_pool, policy=policy,
                             cost_model=self.cost_model, parent=self,
                             host_job=job,
                             name=spec.name or f"child{job.jobid}",
                             comms=self.comms, session=child_session)
        child._owns_session = child_session is not None
        job.child = child
        for sub in spec.subjobs:
            child.submit(sub)
        if spec.subjobs:
            yield child.drain()
        child.shutdown()
        self._finish(job, JobState.COMPLETE)

    def _malleable_running(self) -> list[Job]:
        return [j for j in self.running_jobs()
                if j.spec.malleable and j.allocation is not None]

    def _rebalance_malleable(self) -> None:
        """Malleability (paper Challenge 3): reclaim cores from running
        malleable jobs (down to their min) to admit the queue head, and
        spread any remaining idle cores back over them (up to max)."""
        pending = self.queue.snapshot()
        if pending:
            head = pending[0]
            want = (head.spec.min_cores if head.spec.is_moldable
                    and head.spec.min_cores is not None
                    else head.spec.ncores)
            shortfall = want - self.pool.total_free_cores()
            if shortfall > 0:
                for job in self._malleable_running():
                    lo = job.spec.min_cores or job.spec.ncores
                    excess = job.allocation.ncores - lo
                    if excess <= 0:
                        continue
                    freed = self.request_shrink(job,
                                                min(excess, shortfall))
                    shortfall -= freed
                    if shortfall <= 0:
                        break
                if shortfall <= 0 and head.state is JobState.PENDING:
                    self._try_start(head)
            return
        free = self.pool.total_free_cores()
        if free <= 0:
            return
        for job in self._malleable_running():
            hi = job.spec.max_cores if job.spec.max_cores is not None \
                else job.spec.ncores
            room = hi - job.allocation.ncores
            if room <= 0:
                continue
            got = self.request_grow(job, min(room, free))
            free -= got
            if free <= 0:
                break

    def _finish(self, job: Job, state: JobState) -> None:
        job.state = state
        job.end_time = self.sim.now
        self._record_job_state(job, state.value)
        if job.allocation is not None:
            released = self.pool.release(job.jobid)
            self._busy_delta(-released.ncores)
            job.allocation = None
        self._kick()
        self._check_drained()

    # ------------------------------------------------------------------
    # drain + utilization plumbing
    # ------------------------------------------------------------------
    def _is_drained(self) -> bool:
        return (len(self.queue) == 0
                and all(j.done for j in self.jobs.values()))

    def _check_drained(self) -> None:
        if self._is_drained() and self._drain_waiters:
            stats = self._stats()
            waiters, self._drain_waiters = self._drain_waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed(stats)

    def _stats(self) -> dict[str, Any]:
        return {
            "jobs": len(self.jobs),
            "makespan": self.makespan(),
            "mean_wait": self.mean_wait(),
            "sched_passes": self.sched_passes,
            "sched_time": self.sched_time,
        }

    def _busy_delta(self, delta: int) -> None:
        self._integrate()
        self._busy_cores += delta

    def _integrate(self) -> None:
        now = self.sim.now
        self._busy_area += self._busy_cores * (now - self._busy_last_t)
        self._busy_last_t = now

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FluxInstance {self.name!r} depth={self.depth} "
                f"jobs={len(self.jobs)} queued={len(self.queue)}>")
