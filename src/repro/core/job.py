"""The unified job model (paper Section III).

"In the traditional paradigm, a job is simply defined to be a resource
allocation.  Flux, however, abstracts this notion to an independent
RJMS instance that can either be used to run a single application or
that can run its own job management services."

A :class:`JobSpec` therefore describes either a **program** (runs for
a duration, or executes a user-supplied simulated body) or a nested
**instance** (a child Flux instance with its own scheduler policy and
its own sub-jobs).  :class:`Job` tracks the lifecycle and timing of
one submitted spec.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..resource.pool import Allocation
    from .instance import FluxInstance

__all__ = ["JobKind", "JobState", "JobSpec", "Job"]

_job_ids = itertools.count(1)


class JobKind(Enum):
    """What a job *is* under the unified model."""

    PROGRAM = "program"    # a single application
    INSTANCE = "instance"  # a nested Flux instance with its own jobs


class JobState(Enum):
    """Job lifecycle."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETE = "complete"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: Killed by the instance's walltime watchdog (the job exceeded
    #: its requested walltime and did not yield to SIGTERM in time).
    TIMEOUT = "timeout"


@dataclass
class JobSpec:
    """What to run and what it needs.

    Attributes
    ----------
    ncores:
        Cores requested.
    duration:
        Actual simulated runtime of a PROGRAM job (ignored when ``body``
        is given).
    walltime:
        The user's runtime *estimate* (backfill reservations use this;
        defaults to ``duration``).
    kind:
        PROGRAM or INSTANCE.
    body:
        Optional generator factory ``body(job, instance) -> generator``
        replacing the fixed-duration run (can yield sim events, use
        CMB handles, request grows, ...).
    subjobs:
        For INSTANCE jobs: specs submitted to the child instance at
        startup.
    child_policy:
        For INSTANCE jobs: scheduler policy factory for the child
        (defaults to the parent's policy class).
    name:
        Label for reports.
    memory_per_core / watts_per_core / exclusive:
        Forwarded into the :class:`AllocationRequest`.
    """

    ncores: int
    duration: float = 0.0
    walltime: Optional[float] = None
    kind: JobKind = JobKind.PROGRAM
    body: Optional[Callable] = None
    subjobs: list["JobSpec"] = field(default_factory=list)
    child_policy: Optional[Callable] = None
    name: str = ""
    memory_per_core: float = 0.0
    watts_per_core: float = 0.0
    exclusive: bool = False
    #: Run a registered wexec task instead of a fixed duration/body —
    #: requires the instance to have a comms session (CommsConfig).
    task: Optional[str] = None
    task_args: dict = field(default_factory=dict)
    #: Processes to launch for a ``task`` job (default: one per core).
    ntasks: Optional[int] = None
    #: Moldable jobs (paper Challenge 3): the scheduler may start the
    #: job anywhere in [min_cores, max_cores], trading runtime for an
    #: earlier start; ``ncores`` remains the preferred size.  ``None``
    #: on both means rigid.
    min_cores: Optional[int] = None
    max_cores: Optional[int] = None
    #: Malleable jobs may additionally be resized *while running* —
    #: the instance grows them into idle cores and reclaims cores
    #: (down to min_cores) to admit queued work.
    malleable: bool = False
    #: Amdahl serial fraction for the runtime model of molded/resized
    #: duration jobs: T(n) = duration * (s + (1-s) * ncores / n).
    serial_fraction: float = 0.0
    #: Extra consumable reservations ``((resource_rid, amount), ...)``
    #: charged with the allocation — e.g. shared-filesystem bandwidth
    #: for I/O co-scheduling.
    extra_charges: tuple = ()

    def __post_init__(self):
        if self.ncores < 1:
            raise ValueError("ncores must be positive")
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.walltime is None:
            self.walltime = self.duration
        if self.kind == JobKind.INSTANCE and self.body is not None:
            raise ValueError("INSTANCE jobs take subjobs, not a body")
        if self.task is not None and (self.body is not None
                                      or self.kind == JobKind.INSTANCE):
            raise ValueError("task jobs cannot also have a body/subjobs")
        if self.malleable and self.min_cores is None:
            self.min_cores = self.ncores
        if self.min_cores is not None or self.max_cores is not None:
            lo = self.min_cores if self.min_cores is not None else self.ncores
            hi = self.max_cores if self.max_cores is not None else self.ncores
            if not (1 <= lo <= self.ncores <= hi):
                raise ValueError(
                    f"need 1 <= min_cores <= ncores <= max_cores, got "
                    f"{lo} <= {self.ncores} <= {hi}")
            if self.body is not None or self.task is not None \
                    or self.kind == JobKind.INSTANCE:
                raise ValueError("moldable/malleable shapes apply to "
                                 "duration jobs only")
        if not (0.0 <= self.serial_fraction <= 1.0):
            raise ValueError("serial_fraction must be in [0, 1]")

    @property
    def is_moldable(self) -> bool:
        """True when the scheduler may pick the start size."""
        return self.min_cores is not None or self.max_cores is not None

    def runtime_at(self, granted: int) -> float:
        """Modelled runtime when running on ``granted`` cores
        (Amdahl, normalized so ``runtime_at(ncores) == duration``)."""
        if granted < 1:
            raise ValueError("granted cores must be positive")
        s = self.serial_fraction
        return self.duration * (s + (1.0 - s) * self.ncores / granted)


class Job:
    """One submitted job: spec + lifecycle + timing + allocation."""

    def __init__(self, spec: JobSpec, instance: "FluxInstance"):
        self.jobid = next(_job_ids)
        self.spec = spec
        self.instance = instance
        self.state = JobState.PENDING
        self.submit_time: float = instance.sim.now
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.allocation: Optional["Allocation"] = None
        self.child: Optional["FluxInstance"] = None
        self.error: Optional[str] = None
        #: Signalled by the instance when the allocation is resized
        #: (malleability); the duration runner recomputes its finish.
        self._resize_ev = None
        #: Set by the walltime watchdog once enforcement has begun —
        #: the runner's eventual exit is then classified TIMEOUT.
        self._timed_out = False
        #: The contained body process of a body-spec job (signal
        #: delivery target for SIGTERM-with-cleanup semantics).
        self._body_proc = None

    # -- timing ------------------------------------------------------
    @property
    def wait_time(self) -> Optional[float]:
        """Queue wait (None until started)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> Optional[float]:
        """Actual runtime (None until finished)."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def estimated_end(self) -> float:
        """Walltime-estimated completion (backfill shadow computation)."""
        start = self.start_time if self.start_time is not None \
            else self.instance.sim.now
        return start + (self.spec.walltime or 0.0)

    @property
    def done(self) -> bool:
        """Terminal-state check."""
        return self.state in (JobState.COMPLETE, JobState.FAILED,
                              JobState.CANCELLED, JobState.TIMEOUT)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Job {self.jobid} {self.spec.name or self.spec.kind.value}"
                f" {self.state.value} ncores={self.spec.ncores}>")
