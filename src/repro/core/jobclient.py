"""Client-side job submission over the CMB — the ``flux submit`` path.

A :class:`JobClient` wraps a CMB handle and talks to the session's
``job`` comms module: submit a JSON job spec from *any* node, watch
state events, wait for completion.  This is how programs running inside
a Flux instance (workflow managers, ensemble drivers, nested jobs)
feed work back into the resource manager — recursion being the heart
of the unified job model.
"""

from __future__ import annotations


from ..cmb.api import Handle
from ..cmb.errors import ENOENT, RpcError
from ..cmb.message import Message
from ..sim.kernel import Event

__all__ = ["JobClient"]

#: Job states that end the lifecycle.
_TERMINAL = {"complete", "failed", "cancelled", "timeout"}


class JobClient:
    """Submit and track jobs through the ``job`` comms module."""

    def __init__(self, handle: Handle):
        self.handle = handle
        self.sim = handle.sim
        self._states: dict[int, str] = {}
        self._waiters: dict[int, list[Event]] = {}
        handle.subscribe("job.state", self._on_state)

    # ------------------------------------------------------------------
    def submit(self, spec: dict) -> Event:
        """Submit a JSON job spec; fires with ``{"jobid": ...}``.

        Accepted fields: ``ncores`` (required), ``duration``,
        ``walltime``, ``name``, ``task``, ``ntasks``, ``task_args``,
        ``min_cores``, ``max_cores``, ``malleable``,
        ``serial_fraction``.
        """
        return self.handle.rpc("job.submit", dict(spec))

    def info(self, jobid: int) -> Event:
        """Current state/timing record of a submitted job."""
        return self.handle.rpc("job.info", {"jobid": jobid})

    def list(self) -> Event:
        """All jobs submitted through the session's job manager."""
        return self.handle.rpc("job.list", {})

    def wait(self, jobid: int) -> Event:
        """Fires with the terminal state string of ``jobid``.

        Event-driven (no polling): resolves immediately if the job
        already finished, otherwise on its ``job.state`` event.
        """
        ev = self.sim.event(name=f"job-wait:{jobid}")
        state = self._states.get(jobid)
        if state in _TERMINAL:
            ev.succeed(state)
        else:
            self._waiters.setdefault(jobid, []).append(ev)
            # The job may have finished before we subscribed: confirm.
            self.info(jobid).add_callback(
                lambda e: self._check_info(jobid, e))
        return ev

    def submit_and_wait(self, spec: dict):
        """Generator: submit, then wait — ``state = yield from
        client.submit_and_wait({...})``."""
        resp = yield self.submit(spec)
        state = yield self.wait(resp["jobid"])
        return state

    # ------------------------------------------------------------------
    def _on_state(self, msg: Message) -> None:
        jobid = msg.payload["jobid"]
        state = msg.payload["state"]
        self._states[jobid] = state
        if state in _TERMINAL:
            for ev in self._waiters.pop(jobid, []):
                if not ev.triggered:
                    ev.succeed(state)

    def _check_info(self, jobid: int, resp_ev: Event) -> None:
        if not resp_ev.ok:
            exc = resp_ev._exc
            if isinstance(exc, RpcError) and exc.code == ENOENT:
                # The job manager has never heard of this job: waiting
                # on its state event would hang forever, so fail the
                # waiters with the structured error instead of
                # swallowing it.
                for ev in self._waiters.pop(jobid, []):
                    if not ev.triggered:
                        ev.fail(RpcError(exc.topic, exc.error,
                                         code=exc.code, rank=exc.rank))
            return
        state = resp_ev.value.get("state")
        if state in _TERMINAL:
            self._states[jobid] = state
            for ev in self._waiters.pop(jobid, []):
                if not ev.triggered:
                    ev.succeed(state)
