"""Canonical JSON encoding shared by the CMB and the KVS.

Every CMB message carries a JSON payload frame and every KVS object is
a JSON document; both the network cost model (message sizes) and the
content-addressed store (SHA1 of the encoding) need a *canonical*
byte encoding: deterministic key order, no whitespace.

This mirrors the paper's design, where messages have "a header frame
and a JSON frame" and KVS objects are "hashed by their SHA1 digests".
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_dumps", "canonical_size", "sha1_of", "json_loads"]


def canonical_dumps(obj: Any) -> bytes:
    """Encode ``obj`` as canonical JSON bytes (sorted keys, compact)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")


def canonical_size(obj: Any) -> int:
    """Byte length of the canonical encoding (message cost accounting)."""
    return len(canonical_dumps(obj))


def sha1_of(obj: Any) -> str:
    """Hex SHA1 digest of the canonical encoding — the KVS object id."""
    return hashlib.sha1(canonical_dumps(obj)).hexdigest()


def json_loads(data: bytes | str) -> Any:
    """Decode JSON produced by :func:`canonical_dumps`."""
    return json.loads(data)
