"""Canonical JSON encoding shared by the CMB and the KVS.

Every CMB message carries a JSON payload frame and every KVS object is
a JSON document; both the network cost model (message sizes) and the
content-addressed store (SHA1 of the encoding) need a *canonical*
byte encoding: deterministic key order, no whitespace.

This mirrors the paper's design, where messages have "a header frame
and a JSON frame" and KVS objects are "hashed by their SHA1 digests".

Hot-path discipline (see DESIGN.md "Performance engineering"): the
digest and the size of an object come from the *same* serialization
(:func:`digest_and_size`), and call sites that hash the same logical
value repeatedly (e.g. KAP's redundant-value producers) can memoize
through the keyed digest cache.  The cache maps an explicit,
caller-chosen key to ``(sha, size)`` — never ``id(obj)``, which could
alias after garbage collection — and is LRU-bounded so long test
sessions cannot grow it without limit.
"""

from __future__ import annotations

import hashlib
import json
import re
from collections import OrderedDict
from typing import Any

__all__ = ["canonical_dumps", "canonical_size", "sha1_of",
           "digest_and_size", "json_loads", "intern_fragment",
           "interned_size", "set_interning", "intern_stats",
           "clear_intern_table"]


def canonical_dumps(obj: Any) -> bytes:
    """Encode ``obj`` as canonical JSON bytes (sorted keys, compact)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")


#: Strings matching this need no JSON escaping: every byte is emitted
#: verbatim between the quotes (``ensure_ascii=False``), so the encoded
#: length is just the UTF-8 length plus the two quotes.
_PLAIN_STR = re.compile(r'[^"\\\x00-\x1f]*\Z')

#: Memoized encoded string lengths.  Payload vocabularies are small and
#: endlessly repeated (field names, topics, SHA1 hex ids), so the memo
#: turns per-string escaping analysis into one dict probe.  Append-only
#: with a generous cap; entries past the cap are computed uncached.
_str_sizes: dict[str, int] = {}
_STR_SIZE_CAP = 65536


def _str_size(s: str) -> int:
    size = _str_sizes.get(s)
    if size is None:
        if _PLAIN_STR.match(s):
            size = (len(s) if s.isascii() else len(s.encode("utf-8"))) + 2
        else:
            size = len(canonical_dumps(s))
        if len(_str_sizes) < _STR_SIZE_CAP:
            _str_sizes[s] = size
    return size


#: Fragment intern table: ``id(frozen container) -> (obj, size, sha)``.
#: Holds a *strong* reference to each interned object, so an id can
#: never be recycled while its entry is alive (the aliasing hazard the
#: keyed digest cache's docstring warns about does not apply here); the
#: ``ent[0] is obj`` identity check on probe is belt-and-braces.  Only
#: *frozen* fragments may be interned — containers that no code path
#: mutates after registration (e.g. a fence aggregate's ops list after
#: it has been swapped out for flushing).  LRU-bounded: evicting an
#: entry drops the reference and the memoized size together.
_interned: "OrderedDict[int, tuple[Any, int, Any]]" = OrderedDict()
_INTERN_CAP = 8192
_interning = True
_intern_hits = 0
_intern_bytes = 0


def intern_fragment(obj: Any, size: int = None, *, sha: str = None) -> Any:
    """Register a frozen dict/list so later sizings are one probe.

    ``size`` MUST be the object's exact canonical byte size when
    supplied (an off-by-one would silently shift every simulated
    timeline downstream); omitted, it is measured here once.  ``sha``
    optionally memoizes the canonical SHA1 for :func:`digest_and_size`.
    Returns ``obj`` for call-chaining.  No-op while interning is
    disabled (:func:`set_interning`).
    """
    if not _interning or type(obj) not in (dict, list):
        return obj
    if size is None:
        size = canonical_size(obj)
    _interned[id(obj)] = (obj, size, sha)
    if len(_interned) > _INTERN_CAP:
        _interned.popitem(last=False)
    return obj


def interned_size(obj: Any) -> "int | None":
    """Memoized canonical size of ``obj``, or None if not interned."""
    ent = _interned.get(id(obj))
    if ent is not None and ent[0] is obj:
        return ent[1]
    return None


def set_interning(enabled: bool) -> None:
    """Enable/disable the fragment intern table (A/B equivalence runs).

    Disabling clears the table, so every probe misses and every sizing
    re-walks — byte-for-byte the same results, just slower.
    """
    global _interning
    _interning = bool(enabled)
    if not enabled:
        _interned.clear()


def intern_stats() -> dict:
    """Intern-table effectiveness counters (for benches/tests)."""
    return {"entries": len(_interned), "hits": _intern_hits,
            "bytes_saved": _intern_bytes}


def clear_intern_table() -> None:
    """Drop all interned fragments (test isolation)."""
    global _intern_hits, _intern_bytes
    _interned.clear()
    _intern_hits = 0
    _intern_bytes = 0


def _intern_probe(obj: Any) -> "int | None":
    global _intern_hits, _intern_bytes
    ent = _interned.get(id(obj))
    if ent is not None and ent[0] is obj:
        _intern_hits += 1
        _intern_bytes += ent[1]
        return ent[1]
    return None


def canonical_size(obj: Any) -> int:
    """Byte length of the canonical encoding (message cost accounting).

    Computed arithmetically — container framing plus element sizes —
    without materializing the encoding; exact types it does not model
    (str/int/float subclasses, non-string dict keys, NaN/Infinity)
    fall back to measuring a real :func:`canonical_dumps`.  Exactness
    against the real encoding is asserted by the test suite: message
    latencies are derived from these sizes, so an off-by-one here
    would silently change every simulated timeline.
    """
    t = type(obj)
    sizes = _str_sizes
    if t is str:
        return sizes.get(obj) or _str_size(obj)
    if t is int:
        return len(repr(obj))
    if t is dict:
        n = len(obj)
        if n == 0:
            return 2
        if _interned:
            hit = _intern_probe(obj)
            if hit is not None:
                return hit
        total = 1 + n  # braces plus the n-1 inter-entry commas
        for k, v in obj.items():
            if type(k) is not str:
                return len(canonical_dumps(obj))
            tv = type(v)
            total += ((sizes.get(k) or _str_size(k)) + 1
                      + ((sizes.get(v) or _str_size(v)) if tv is str else
                         len(repr(v)) if tv is int else
                         canonical_size(v)))
        return total
    if t is list or t is tuple:
        n = len(obj)
        if n == 0:
            return 2
        if _interned and t is list:
            hit = _intern_probe(obj)
            if hit is not None:
                return hit
        total = 1 + n
        for v in obj:
            tv = type(v)
            total += ((sizes.get(v) or _str_size(v)) if tv is str else
                      len(repr(v)) if tv is int else
                      canonical_size(v))
        return total
    if obj is None:
        return 4
    if t is bool:
        return 4 if obj else 5
    if t is float:
        if obj != obj or obj in (float("inf"), float("-inf")):
            return len(canonical_dumps(obj))
        return len(repr(obj))
    return len(canonical_dumps(obj))


#: Keyed digest memo: explicit key -> (sha, size).  OrderedDict gives a
#: cheap LRU; iteration order is insertion order, so the cache is
#: deterministic (and it is never iterated on a hot path anyway).
_digest_cache: "OrderedDict[Any, tuple[str, int]]" = OrderedDict()
_DIGEST_CACHE_CAP = 4096


def digest_and_size(obj: Any, *, key: Any = None) -> tuple[str, int]:
    """``(sha1 hex digest, byte size)`` from one canonical serialization.

    ``key`` optionally memoizes the result under a caller-supplied
    hashable key.  The caller owns the key's meaning: two calls with
    the same key MUST describe the same canonical encoding (the KVS
    namespaces its keys, e.g. ``("v", value)`` for value objects).
    """
    if key is not None:
        hit = _digest_cache.get(key)
        if hit is not None:
            _digest_cache.move_to_end(key)
            return hit
    elif _interned:
        ent = _interned.get(id(obj))
        if ent is not None and ent[0] is obj and ent[2] is not None:
            return (ent[2], ent[1])
    data = canonical_dumps(obj)
    out = (hashlib.sha1(data).hexdigest(), len(data))
    if key is not None:
        _digest_cache[key] = out
        if len(_digest_cache) > _DIGEST_CACHE_CAP:
            _digest_cache.popitem(last=False)
    return out


def sha1_of(obj: Any, *, key: Any = None) -> str:
    """Hex SHA1 digest of the canonical encoding — the KVS object id.

    ``key`` opts into the keyed digest cache (see
    :func:`digest_and_size`).
    """
    return digest_and_size(obj, key=key)[0]


def json_loads(data: bytes | str) -> Any:
    """Decode JSON produced by :func:`canonical_dumps`."""
    return json.loads(data)
