"""KAP — the KVS Access Patterns benchmark (paper Section V).

Configuration (:mod:`.config`), key/value/access-pattern generation
(:mod:`.patterns`), the four-phase driver (:mod:`.driver`), result
collection (:mod:`.results`) and the Section V-B analytic models
(:mod:`.model`).
"""

from .analysis import (PowerLawFit, classify_scaling, fit_power_law,
                       scaling_exponents)
from .config import KapConfig, PAPER_NODE_COUNTS, PAPER_VALUE_SIZES
from .driver import run_kap
from .model import (dir_object_bytes, predict_consumer_latency,
                    predict_fence_latency, predict_producer_latency,
                    replication_time)
from .patterns import consumer_targets, make_value, object_key, proc_rank_node
from .results import KapResult, format_series_table

__all__ = [
    "PowerLawFit", "classify_scaling", "fit_power_law",
    "scaling_exponents",
    "KapConfig", "PAPER_NODE_COUNTS", "PAPER_VALUE_SIZES", "run_kap",
    "dir_object_bytes", "predict_consumer_latency",
    "predict_fence_latency", "predict_producer_latency",
    "replication_time", "consumer_targets", "make_value", "object_key",
    "proc_rank_node", "KapResult", "format_series_table",
]
