"""Command-line entry point for one KAP run.

Mirrors how the paper drove KAP "with varying arguments to its
parameters in batch mode":

    python -m repro.kap --nodes 64 --procs-per-node 16 --value-size 2048
    python -m repro.kap --nodes 32 --redundant --sync fence
    python -m repro.kap --nodes 32 --naccess 4 --dir-width 128

Prints the per-phase latency summaries (max is the paper's headline
metric) plus run accounting.
"""

from __future__ import annotations

import argparse
import sys

from .config import KapConfig
from .driver import run_kap


def build_parser() -> argparse.ArgumentParser:
    """The KAP parameter space as CLI flags."""
    p = argparse.ArgumentParser(
        prog="python -m repro.kap",
        description="Run one KVS Access Patterns (KAP) benchmark on the "
                    "simulated cluster.")
    p.add_argument("--nodes", type=int, default=64,
                   help="compute nodes in the comms session (default 64)")
    p.add_argument("--procs-per-node", type=int, default=16,
                   help="tester processes per node (default 16)")
    p.add_argument("--producers", type=int, default=None,
                   help="producer count (default: all processes)")
    p.add_argument("--consumers", type=int, default=None,
                   help="consumer count (default: all processes)")
    p.add_argument("--value-size", type=int, default=8,
                   help="bytes per stored value (default 8)")
    p.add_argument("--nputs", type=int, default=1,
                   help="puts per producer (default 1)")
    p.add_argument("--naccess", type=int, default=1,
                   help="gets per consumer (default 1)")
    p.add_argument("--stride", type=int, default=1,
                   help="consumer access stride (default 1)")
    p.add_argument("--redundant", action="store_true",
                   help="producers write identical values")
    p.add_argument("--dir-width", type=int, default=None,
                   help="max objects per KVS directory "
                        "(default: single directory)")
    p.add_argument("--sync", choices=("fence", "commit_wait"),
                   default="fence", help="synchronization primitive")
    p.add_argument("--tree-arity", type=int, default=2,
                   help="comms tree fan-out (default 2 = binary)")
    p.add_argument("--seed", type=int, default=0,
                   help="simulation seed (default 0)")
    p.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write a Chrome/Perfetto trace-event JSON of "
                        "the run's span trees")
    p.add_argument("--stats-out", metavar="FILE", default=None,
                   help="write per-broker metrics registries plus the "
                        "session aggregate as JSON")
    return p


def main(argv: list[str] | None = None) -> int:
    """Parse args, run KAP, print the phase report; returns exit code."""
    args = build_parser().parse_args(argv)
    config = KapConfig(
        nnodes=args.nodes, procs_per_node=args.procs_per_node,
        nproducers=args.producers, nconsumers=args.consumers,
        value_size=args.value_size, nputs=args.nputs,
        naccess=args.naccess, stride=args.stride,
        redundant_values=args.redundant, dir_width=args.dir_width,
        sync=args.sync, tree_arity=args.tree_arity, seed=args.seed)

    print(f"KAP: {config.nnodes} nodes x {config.procs_per_node} procs "
          f"({config.producers} producers, {config.consumers} consumers), "
          f"vsize={config.value_size}, nputs={config.nputs}, "
          f"naccess={config.naccess}, "
          f"{'redundant' if config.redundant_values else 'unique'} values, "
          f"dir_width={config.dir_width}, sync={config.sync}, "
          f"arity={config.tree_arity}")
    result = run_kap(config, trace_out=args.trace_out,
                     stats_out=args.stats_out)

    print(f"\n{'phase':<10} {'count':>7} {'max(ms)':>9} {'mean(ms)':>9} "
          f"{'p99(ms)':>9}")
    for phase, summary in result.summaries().items():
        if summary is None:
            print(f"{phase:<10} {'-':>7} {'-':>9} {'-':>9} {'-':>9}")
        else:
            print(f"{phase:<10} {summary.count:>7} "
                  f"{summary.max * 1e3:>9.3f} {summary.mean * 1e3:>9.3f} "
                  f"{summary.p99 * 1e3:>9.3f}")
    print(f"\ntotal simulated time : {result.total_time * 1e3:.3f} ms")
    print(f"simulation events    : {result.events}")
    print(f"fabric bytes moved   : {result.bytes_sent / 1e6:.2f} MB")
    if args.trace_out:
        print(f"trace written        : {args.trace_out}")
    if args.stats_out:
        print(f"stats written        : {args.stats_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
