"""Scaling analysis over KAP measurements.

The paper argues about *asymptotics* — `kvs_put` flat, unique fences
linear, redundant fences "short of logarithmic", consumer latency
linear when G grows with C.  This module turns those words into
numbers: log-log power-law fits over sweep rows, so the claims become
testable exponents (flat ≈ 0, linear ≈ 1).

Works directly on the row dicts produced by
:func:`repro.kap.sweep.run_sweep` (or anything shaped like them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "scaling_exponents",
           "classify_scaling"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = c * x^k`` in log-log space."""

    exponent: float   # k
    prefactor: float  # c
    r2: float         # goodness of fit in log space

    def predict(self, x: float) -> float:
        """Model value at ``x``."""
        return self.prefactor * x ** self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c * x^k`` through the points (all values must be > 0).

    With fewer than two distinct x values the fit is degenerate and a
    ``ValueError`` is raised.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (x, y) points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit needs positive values")
    if np.unique(x).size < 2:
        raise ValueError("need at least two distinct x values")
    lx, ly = np.log(x), np.log(y)
    k, logc = np.polyfit(lx, ly, 1)
    pred = k * lx + logc
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=float(k), prefactor=float(np.exp(logc)),
                       r2=r2)


def classify_scaling(exponent: float, *, flat_below: float = 0.2,
                     linear_above: float = 0.8) -> str:
    """Name an exponent: ``flat`` (k < 0.2), ``linear`` (k > 0.8),
    else ``sublinear`` — the vocabulary of the paper's Section V-B."""
    if exponent < flat_below:
        return "flat"
    if exponent > linear_above:
        return "linear"
    return "sublinear"


def scaling_exponents(rows: Iterable[dict], *, x_field: str,
                      y_field: str,
                      group_by: Optional[Callable[[dict], Any]] = None
                      ) -> dict[Any, PowerLawFit]:
    """Fit one power law per group of sweep rows.

    ``group_by`` maps a row to its series key (e.g.
    ``lambda r: (r["value_size"], r["redundant"])`` reproduces the
    Figure 3 plot families); ``None`` fits everything as one series.
    """
    buckets: dict[Any, list[tuple[float, float]]] = {}
    for row in rows:
        key = group_by(row) if group_by is not None else "all"
        buckets.setdefault(key, []).append(
            (float(row[x_field]), float(row[y_field])))
    out = {}
    for key, points in buckets.items():
        xs, ys = zip(*sorted(points))
        out[key] = fit_power_law(xs, ys)
    return out
