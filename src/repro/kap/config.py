"""KAP (KVS Access Patterns) configuration.

Mirrors the parameter space of Section V: producer/consumer counts,
value size, puts/gets per process, access striding, value redundancy,
directory organization, synchronization primitive, and the comms-
session topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["KapConfig", "PAPER_VALUE_SIZES", "PAPER_NODE_COUNTS"]

#: Value sizes swept in the paper (bytes).
PAPER_VALUE_SIZES = (8, 32, 128, 512, 2048, 8192, 32768)

#: Node counts swept in the paper (x16 processes per node).
PAPER_NODE_COUNTS = (64, 128, 256, 512)


@dataclass
class KapConfig:
    """One KAP run.

    Attributes
    ----------
    nnodes / procs_per_node:
        Session shape; the paper always fully populates 16-core nodes.
    nproducers / nconsumers:
        Role counts.  Process ``i`` produces iff ``i < nproducers`` and
        consumes iff ``i < nconsumers`` ("fully populated" = both equal
        to total process count).  ``None`` means all processes.
    value_size:
        Bytes per stored value (JSON string payload of that length).
    nputs:
        ``kvs_put`` calls per producer (unique keys each).
    naccess:
        ``kvs_get`` calls per consumer.
    stride:
        Consumer access pattern: consumer *i*'s k-th read targets
        object ``(i * stride + k) mod total_objects``; stride 0 makes
        every consumer read the same leading objects, stride 1 gives
        disjoint-ish windows (the paper's "different striding").
    redundant_values:
        True: every producer writes identical values (they reduce to
        one content object up the tree).  False: values are unique.
    dir_width:
        ``None``: all keys in a single KVS directory (Figure 4a).
        ``k``: split into directories of at most ``k`` entries
        (the paper uses 128 for Figure 4b).
    sync:
        ``"fence"`` (the paper's choice) or ``"commit_wait"``
        (per-process commit + ``kvs_wait_version``).
    tree_arity:
        Fan-out of the comms tree (paper fixes binary = 2).
    seed:
        Simulation seed (determinism).
    dedup:
        Wire dedup mode: per-link sha filters on objs payloads and
        remote walks for cold reads (see ``KvsModule``).  Off by
        default — the classic protocol stays byte-identical, so the
        golden SAN105 fingerprints keep reproducing.
    shards:
        Event-loop shards (``>1`` runs the KAP on a
        :class:`~repro.sim.shard.ShardedSimulation` with per-subtree
        sub-kernels under the conservative lookahead barrier).  1 (the
        default) keeps the classic single-heap kernel.
    """

    nnodes: int = 64
    procs_per_node: int = 16
    nproducers: Optional[int] = None
    nconsumers: Optional[int] = None
    value_size: int = 8
    nputs: int = 1
    naccess: int = 1
    stride: int = 1
    redundant_values: bool = False
    dir_width: Optional[int] = None
    sync: str = "fence"
    tree_arity: int = 2
    seed: int = 0
    dedup: bool = False
    shards: int = 1

    def __post_init__(self) -> None:
        if self.nnodes < 1 or self.procs_per_node < 1:
            raise ValueError("need at least one node and one proc")
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.sync not in ("fence", "commit_wait"):
            raise ValueError(f"unknown sync primitive {self.sync!r}")
        if self.dir_width is not None and self.dir_width < 1:
            raise ValueError("dir_width must be positive")
        if self.value_size < 1:
            raise ValueError("value_size must be positive")

    @property
    def nprocs(self) -> int:
        """Total tester processes."""
        return self.nnodes * self.procs_per_node

    @property
    def producers(self) -> int:
        """Effective producer count."""
        return self.nprocs if self.nproducers is None else self.nproducers

    @property
    def consumers(self) -> int:
        """Effective consumer count."""
        return self.nprocs if self.nconsumers is None else self.nconsumers

    @property
    def total_objects(self) -> int:
        """Key-value objects written in the producer phase."""
        return self.producers * self.nputs
