"""The KAP test driver (paper Section V).

KAP "allows a configurable number of producers to write key-value
objects into our KVS and a configurable number of consumers to read
these objects after ensuring the consistent KVS state", in four
phases: **setup** (launch testers, collective barrier), **producer**
(``kvs_put`` of unique keys), **synchronization** (``kvs_fence`` or
commit + ``kvs_wait_version``), and **consumer** (``kvs_get`` under a
configurable access pattern).

:func:`run_kap` builds the simulated cluster and comms session, runs
every tester process to completion, and returns per-phase latency
distributions whose maxima are the quantities plotted in Figures 2-4.

Observability hooks: ``trace_out`` writes a Chrome trace-event JSON
(load it in Perfetto / ``chrome://tracing``) of every client call's
span tree; ``stats_out`` writes the per-broker metrics registries plus
their session-wide merge.  Both are pure exports — tracing schedules
no simulation events and draws no randomness, and with both left
``None`` the run is untouched.
"""

from __future__ import annotations

import json
from typing import Optional

from ..cmb.modules.barrier import BarrierModule
from ..cmb.session import CommsSession, ModuleSpec
from ..cmb.topology import TreeTopology
from ..kvs.api import KvsClient
from ..kvs.module import KvsModule
from ..sim.kernel import paused_gc
from ..sim.cluster import make_cluster, zin_like_params
from ..sim.shard import ShardedSimulation, shard_map_from_topology
from .config import KapConfig
from .patterns import consumer_targets, make_value, object_key, proc_rank_node
from .results import KapResult

__all__ = ["run_kap"]


def run_kap(config: KapConfig,
            max_events: Optional[int] = None,
            *,
            tracing: bool = False,
            trace_out: Optional[str] = None,
            stats_out: Optional[str] = None,
            sanitize: bool = False,
            postmortem_out: Optional[str] = None) -> KapResult:
    """Execute one KAP run and return its measured latencies.

    ``max_events`` optionally bounds the simulation (guards against
    accidental huge configurations in tests).  ``trace_out`` /
    ``stats_out`` export the causal trace and the metrics registries
    as JSON; passing ``trace_out`` implies ``tracing``.

    ``sanitize=True`` enables the full runtime sanitizer suite
    (:mod:`repro.analysis.sanitizers`): FIFO link ordering, KVS
    read consistency, span-forest shape, and an event-stream
    fingerprint for replay-divergence checks.  Findings land in
    ``result.sanitizer_findings``; the checkers are pure observers,
    so the run itself is event-identical to a sanitizer-off run.

    ``postmortem_out`` arms the failure black box: if the run
    deadlocks (or sanitizers report findings), every broker's
    flight-recorder ring plus waiter/pending censuses are dumped to
    that path for ``python -m repro.obs.doctor``.
    """
    topology = TreeTopology(config.nnodes, arity=config.tree_arity)
    if config.shards > 1:
        params = zin_like_params()
        sim = ShardedSimulation(
            seed=config.seed, strict=True, nshards=config.shards,
            lookahead=params.per_message_overhead + params.latency)
        sim.set_shard_map(
            shard_map_from_topology(topology, config.shards))
        cluster = make_cluster(config.nnodes, sim=sim)
    else:
        cluster = make_cluster(config.nnodes, seed=config.seed)
        sim = cluster.sim
    session = CommsSession(
        cluster,
        topology=topology,
        modules=[ModuleSpec(KvsModule, dedup=config.dedup),
                 ModuleSpec(BarrierModule)],
    ).start()
    if tracing or trace_out:
        session.enable_tracing()
    fingerprint = None
    if sanitize:
        from ..analysis.sanitizers import replay_fingerprint_hook
        session.enable_sanitizers()
        fingerprint = replay_fingerprint_hook(sim, keep_records=False)

    result = KapResult(config)
    nprocs = config.nprocs
    setup_done: list[float] = []

    def tester(proc_id: int):
        rank = proc_rank_node(config, proc_id)
        handle = session.connect(rank)
        kvs = KvsClient(handle)
        is_producer = proc_id < config.producers
        is_consumer = proc_id < config.consumers

        # -- setup phase: synchronized start ---------------------------
        yield handle.barrier("kap.setup", nprocs)
        setup_done.append(sim.now)

        # -- producer phase --------------------------------------------
        t0 = sim.now
        if is_producer:
            for j in range(config.nputs):
                gid = proc_id * config.nputs + j
                key = object_key(gid, config.dir_width)
                value = make_value(gid, config.value_size,
                                   config.redundant_values)
                yield kvs.put(key, value)
            result.producer.add(sim.now - t0)

        # -- synchronization phase --------------------------------------
        t1 = sim.now
        if config.sync == "fence":
            yield kvs.fence("kap.sync", nprocs)
        else:
            if is_producer:
                yield kvs.commit()
            # Every producer commits exactly once, so the state is
            # complete at root version >= nproducers.
            yield kvs.wait_version(config.producers)
        result.sync.add(sim.now - t1)

        # -- consumer phase ----------------------------------------------
        if is_consumer:
            t2 = sim.now
            for gid in consumer_targets(config, proc_id):
                key = object_key(gid, config.dir_width)
                value = yield kvs.get(key)
                assert len(value) == config.value_size
            result.consumer.add(sim.now - t2)

    procs = [sim.spawn(tester(i), name=f"kap[{i}]")
             for i in range(nprocs)]
    all_done = sim.all_of(procs)
    # Cyclic GC otherwise dominates large runs (per-event cost grows
    # with live-store size); reference counting reclaims the hot path's
    # garbage, so pausing the collector is result-invisible.
    with paused_gc():
        sim.run(max_events=max_events)
    if not all_done.triggered:
        if postmortem_out:
            from ..obs.postmortem import capture_bundle, write_bundle
            write_bundle(
                capture_bundle(
                    session, "KAP deadlocked: not all testers finished",
                    kind="kap",
                    extra={"nnodes": config.nnodes,
                           "nprocs": config.nprocs,
                           "sync": config.sync, "seed": config.seed}),
                postmortem_out)
        raise RuntimeError("KAP deadlocked: not all testers finished")

    result.setup_time = max(setup_done) if setup_done else 0.0
    result.total_time = sim.now
    result.events = sim.event_count
    result.bytes_sent = cluster.network.total_bytes_sent()
    result.plane_bytes = session.plane_bytes()
    result.flight_peak = session.flight_peak()
    result.msg_counts = session.message_counts()
    result.level_bytes = session.level_bytes()
    result.interned_bytes_saved = sum(
        broker.modules["kvs"].interned_bytes_saved()
        for broker in session.brokers)
    session.stop()
    if sanitize:
        result.sanitizer_findings = list(session.sanitizers.finish())
        result.event_fingerprint = fingerprint.digest()
        if result.sanitizer_findings and postmortem_out:
            from ..obs.postmortem import capture_bundle, write_bundle
            write_bundle(
                capture_bundle(
                    session,
                    f"{len(result.sanitizer_findings)} sanitizer "
                    f"finding(s)",
                    kind="kap",
                    extra={"nnodes": config.nnodes,
                           "nprocs": config.nprocs,
                           "findings": [str(f) for f in
                                        result.sanitizer_findings[:10]]}),
                postmortem_out)

    if trace_out:
        session.span_tracer.write_chrome_trace(trace_out)
    if stats_out:
        doc = {
            "meta": {
                "kind": "kap",
                "nnodes": config.nnodes,
                "nprocs": config.nprocs,
                "sync": config.sync,
                "seed": config.seed,
                "sim_time": result.total_time,
                "sim_events": result.events,
            },
            "aggregate": session.metrics_aggregate(),
            "per_rank": [session.metrics_snapshot(r)
                         for r in range(config.nnodes)],
        }
        with open(stats_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return result
