"""Analytic performance models from Section V-B.

The paper derives the consumer-phase model

    ``max latency = log2(C) x T(G)``

where ``C`` is the consumer count and ``T(G)`` the time to replicate
the ``G``-object working set into one slave cache from its CMB-tree
parent: with a binary tree of depth ``log2`` of the node count, the
deepest cache can only fill after every ancestor has, so replication
times chain down the tree.  The companion geometric-series argument
shows that if ``G`` doubles whenever ``C`` doubles, latency doubles —
only a scale-invariant ``G`` yields true logarithmic scaling.

These functions compute the same predictions from our simulator's
fabric parameters, so benchmarks can print model-vs-measured columns
(EXPERIMENTS.md records the agreement).
"""

from __future__ import annotations

import math

from ..cmb.message import HEADER_BYTES
from ..jsonutil import canonical_size
from ..sim.network import NetworkParams
from .config import KapConfig
from .patterns import make_value

__all__ = [
    "dir_object_bytes", "replication_time", "predict_consumer_latency",
    "predict_fence_latency", "predict_producer_latency",
]

#: Approximate canonical-JSON bytes per directory entry: a name like
#: ``"o12345"`` plus a 40-hex SHA1 reference plus JSON punctuation.
_DIR_ENTRY_BYTES = 52


def dir_object_bytes(nentries: int) -> int:
    """Approximate wire size of a directory object with ``nentries``."""
    return 16 + nentries * _DIR_ENTRY_BYTES


def replication_time(nbytes: int, params: NetworkParams) -> float:
    """``T``: one parent-to-child transfer of ``nbytes`` (request +
    response hops of the fault-in RPC)."""
    request = (params.per_message_overhead + HEADER_BYTES / params.bandwidth
               + params.latency)
    response = (params.per_message_overhead
                + (HEADER_BYTES + nbytes) / params.bandwidth
                + params.latency)
    return request + response


def predict_consumer_latency(config: KapConfig,
                             params: NetworkParams) -> float:
    """The paper's ``log2(C) x T(G)`` consumer-phase model.

    ``G`` is the number of objects a consumer's directory working set
    drags through the caches: the whole key set for the single-
    directory layout, or only the directories its accesses touch for
    the ``dir_width`` layout.  Per-access local costs (IPC hops and the
    value objects themselves) are added once the directories are
    resident.
    """
    depth = max(1.0, math.log2(config.nnodes))
    total = config.total_objects
    value_bytes = canonical_size(
        make_value(0, config.value_size, config.redundant_values))

    if config.dir_width is None:
        dir_bytes = dir_object_bytes(total)
        ndirs = 1
    else:
        dir_bytes = dir_object_bytes(min(config.dir_width, total))
        ndirs = min(config.naccess,
                    max(1, math.ceil(total / config.dir_width)))

    t_dirs = replication_time(ndirs * dir_bytes, params)
    # Unique value objects also fault through the chain once each.
    t_vals = replication_time(config.naccess * (value_bytes + 16), params)
    ipc = config.naccess * 2 * (
        params.ipc_latency + params.per_message_overhead)
    return depth * (t_dirs + t_vals) + ipc


def predict_producer_latency(config: KapConfig,
                             params: NetworkParams) -> float:
    """Producer phase: pure write-back, so latency is ``nputs`` local
    IPC round-trips — independent of the producer count (Figure 2's
    flat profile)."""
    value_bytes = canonical_size(
        make_value(0, config.value_size, config.redundant_values))
    per_put = (2 * (params.ipc_latency + params.per_message_overhead)
               + (value_bytes + HEADER_BYTES) / params.ipc_bandwidth)
    return config.nputs * per_put


def predict_fence_latency(config: KapConfig,
                          params: NetworkParams) -> float:
    """Fence phase under the tree reduction.

    Unique values: each level of the tree forwards roughly the whole
    accumulated payload, so the dominant cost is the serialization of
    ~P x (value + tuple) bytes through the root's children — linear in
    the producer count.  Redundant values: content objects reduce to
    one, but the (key, SHA1) tuples still concatenate, leaving a
    linear term with a much smaller constant — "short of logarithmic",
    exactly as the paper observes.
    """
    p = config.producers * config.nputs
    value_bytes = canonical_size(
        make_value(0, config.value_size, config.redundant_values))
    tuple_bytes = 60  # ["kap.oNNN", "<40-hex sha>"] in canonical JSON
    if config.redundant_values:
        payload = value_bytes + p * tuple_bytes
    else:
        payload = p * (value_bytes + 50 + tuple_bytes)
    depth = max(1.0, math.log2(config.nnodes))
    # Each level re-serializes ~ its subtree's share; summed over the
    # root's child link this approaches 2x the root payload.
    wire = 2.0 * payload / params.bandwidth
    per_level = (params.per_message_overhead + params.latency)
    # Completion: setroot event floods back down (depth hops).
    return wire + 2 * depth * per_level
