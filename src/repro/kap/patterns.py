"""Key naming, value generation and access patterns for KAP."""

from __future__ import annotations

from typing import Optional

from .config import KapConfig

__all__ = ["object_key", "make_value", "consumer_targets", "proc_rank_node"]


def object_key(gid: int, dir_width: Optional[int]) -> str:
    """KVS key for global object id ``gid``.

    Single-directory layout puts every object directly under ``kap``;
    the multi-directory layout groups ``dir_width`` objects per
    subdirectory (the paper's "multiple directories of at most 128
    objects each").
    """
    if dir_width is None:
        return f"kap.o{gid}"
    return f"kap.d{gid // dir_width}.o{gid}"


def make_value(gid: int, value_size: int, redundant: bool) -> str:
    """A JSON-string value of exactly ``value_size`` encoded bytes.

    Unique values embed the object id (so no two producers' values
    collide in the content-addressed store); redundant values are
    identical across producers and reduce to a single object.
    """
    prefix = "R" if redundant else f"u{gid}-"
    if len(prefix) > value_size:
        prefix = prefix[:value_size]
    return prefix + "x" * (value_size - len(prefix))


def consumer_targets(config: KapConfig, consumer_id: int) -> list[int]:
    """Global object ids consumer ``consumer_id`` reads, under the
    configured stride pattern."""
    total = config.total_objects
    if total == 0:
        return []
    base = consumer_id * config.stride
    return [(base + k) % total for k in range(config.naccess)]


def proc_rank_node(config: KapConfig, proc: int) -> int:
    """Session rank hosting tester process ``proc``.

    The paper: "consecutive rank processes are distributed to
    consecutive nodes" — cyclic placement.
    """
    return proc % config.nnodes
