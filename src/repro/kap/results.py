"""KAP result collection and tabular reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.trace import StatSeries, Summary

__all__ = ["KapResult", "format_series_table"]


@dataclass
class KapResult:
    """Latency distributions for the three measured KAP phases.

    All latencies are *simulated* seconds — the quantity the paper's
    figures plot.  The headline metric is the per-phase **max** latency
    across processes ("this metric represents the critical path of the
    performance of many HPC process-management services").
    """

    config: object
    producer: StatSeries = field(default_factory=lambda: StatSeries("producer"))
    sync: StatSeries = field(default_factory=lambda: StatSeries("sync"))
    consumer: StatSeries = field(default_factory=lambda: StatSeries("consumer"))
    setup_time: float = 0.0
    total_time: float = 0.0
    events: int = 0
    bytes_sent: int = 0
    #: Payload bytes sent per fabric plane (tree / event_up /
    #: event_down / ring / tree_rank) — the per-plane attribution the
    #: ROADMAP's fence-payload investigation tabulates.
    plane_bytes: dict = field(default_factory=dict)
    #: Highest flight-recorder ring occupancy across brokers.
    flight_peak: int = 0
    #: Per-(module, plane, kind) message counts from the run's comms
    #: session (see :meth:`repro.cmb.session.CommsSession.message_counts`).
    msg_counts: dict = field(default_factory=dict)
    #: Payload bytes sent per *tree level* (topology depth of the
    #: sending broker) — the breakdown that shows where aggregation
    #: payloads concentrate.
    level_bytes: dict = field(default_factory=dict)
    #: Bytes of work the KVS interning/dedup machinery avoided, summed
    #: over ranks (``kvs_interned_bytes_saved_total``; 0 off/idle).
    interned_bytes_saved: int = 0
    #: Runtime-sanitizer findings (``run_kap(sanitize=True)``); empty
    #: on a clean run or when sanitizers were off.
    sanitizer_findings: list = field(default_factory=list)
    #: SHA1 of the processed-event stream when sanitizing — two runs
    #: of the same config must match (replay determinism).
    event_fingerprint: str = ""

    def msg_total(self, kind: Optional[str] = None) -> int:
        """Total messages counted, optionally filtered by kind
        (``request`` / ``response`` / ``error`` / ``event`` / ``ring``)."""
        return sum(n for (_, _, k), n in self.msg_counts.items()
                   if kind is None or k == kind)

    # -- headline metrics ------------------------------------------------
    @property
    def max_producer_latency(self) -> float:
        """Figure 2's y-value for this run."""
        return self.producer.summary().max if len(self.producer) else 0.0

    @property
    def max_sync_latency(self) -> float:
        """Figure 3's y-value for this run."""
        return self.sync.summary().max if len(self.sync) else 0.0

    @property
    def max_consumer_latency(self) -> float:
        """Figure 4's y-value for this run."""
        return self.consumer.summary().max if len(self.consumer) else 0.0

    def summaries(self) -> dict[str, Optional[Summary]]:
        """Per-phase summaries (None for unexercised phases)."""
        return {
            "producer": self.producer.summary() if len(self.producer) else None,
            "sync": self.sync.summary() if len(self.sync) else None,
            "consumer": self.consumer.summary() if len(self.consumer) else None,
        }


def format_series_table(title: str, xlabel: str,
                        columns: dict[str, dict[int, float]],
                        unit: str = "ms", scale: float = 1e3) -> str:
    """Render figure-style series as an aligned text table.

    ``columns`` maps series label -> {x: latency_seconds}; all series'
    x-values are unioned into the row set, matching how the paper's
    figures overlay multiple value-size/access-count plots.
    """
    xs = sorted({x for col in columns.values() for x in col})
    labels = list(columns)
    widths = [max(len(xlabel), 8)] + [max(len(lbl), 10) for lbl in labels]
    lines = [title]
    header = f"{xlabel:>{widths[0]}}" + "".join(
        f"  {lbl:>{w}}" for lbl, w in zip(labels, widths[1:]))
    lines.append(header)
    lines.append("-" * len(header))
    for x in xs:
        row = f"{x:>{widths[0]}}"
        for lbl, w in zip(labels, widths[1:]):
            v = columns[lbl].get(x)
            row += f"  {'-':>{w}}" if v is None else f"  {v * scale:>{w}.3f}"
        lines.append(row)
    lines.append(f"(values in {unit})")
    return "\n".join(lines)
