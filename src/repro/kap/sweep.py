"""Batch parameter sweeps over the KAP space.

The paper: "We ran KAP with varying arguments to its parameters in
batch mode and collected performance metrics.  Due to the huge
parameter space, however, we limited our experiments to only a subset
of the parameter set."  This module is that batch driver: a cartesian
sweep specification, a runner collecting one metrics row per
configuration, and CSV output for offline analysis.

Also runnable from the command line::

    python -m repro.kap.sweep --nodes 8,16,32 --value-size 8,512 \\
        --redundant both -o sweep.csv
"""

from __future__ import annotations

import argparse
import csv
import io
import itertools
import sys
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, TextIO

from .config import KapConfig
from .driver import run_kap

__all__ = ["SweepSpec", "run_sweep", "write_csv", "CSV_FIELDS", "main"]

#: Columns of a sweep row, in output order.
CSV_FIELDS = [
    "nnodes", "procs_per_node", "nprocs", "value_size", "nputs",
    "naccess", "stride", "redundant", "dir_width", "sync", "tree_arity",
    "seed", "max_put_s", "max_fence_s", "max_get_s", "mean_get_s",
    "total_s", "events", "bytes",
]


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian product over KAP parameters.

    Every attribute is a tuple of values to sweep; the run set is the
    full cross product (so keep the lists short, as the paper did).
    """

    nodes: Sequence[int] = (8, 16, 32)
    procs_per_node: Sequence[int] = (4,)
    value_sizes: Sequence[int] = (8, 512)
    nputs: Sequence[int] = (1,)
    naccess: Sequence[int] = (1,)
    strides: Sequence[int] = (1,)
    redundant: Sequence[bool] = (False,)
    dir_widths: Sequence[Optional[int]] = (None,)
    syncs: Sequence[str] = ("fence",)
    tree_arities: Sequence[int] = (2,)
    seeds: Sequence[int] = (0,)

    def configs(self) -> Iterable[KapConfig]:
        """Yield every configuration in the product."""
        for (nn, ppn, vs, np_, na, st, red, dw, sy, ar, seed) in \
                itertools.product(self.nodes, self.procs_per_node,
                                  self.value_sizes, self.nputs,
                                  self.naccess, self.strides,
                                  self.redundant, self.dir_widths,
                                  self.syncs, self.tree_arities,
                                  self.seeds):
            yield KapConfig(nnodes=nn, procs_per_node=ppn, value_size=vs,
                            nputs=np_, naccess=na, stride=st,
                            redundant_values=red, dir_width=dw, sync=sy,
                            tree_arity=ar, seed=seed)

    def __len__(self) -> int:
        return (len(self.nodes) * len(self.procs_per_node)
                * len(self.value_sizes) * len(self.nputs)
                * len(self.naccess) * len(self.strides)
                * len(self.redundant) * len(self.dir_widths)
                * len(self.syncs) * len(self.tree_arities)
                * len(self.seeds))


def _row(config: KapConfig, result) -> dict:
    summaries = result.summaries()
    get = summaries["consumer"]
    return {
        "nnodes": config.nnodes,
        "procs_per_node": config.procs_per_node,
        "nprocs": config.nprocs,
        "value_size": config.value_size,
        "nputs": config.nputs,
        "naccess": config.naccess,
        "stride": config.stride,
        "redundant": int(config.redundant_values),
        "dir_width": "" if config.dir_width is None else config.dir_width,
        "sync": config.sync,
        "tree_arity": config.tree_arity,
        "seed": config.seed,
        "max_put_s": result.max_producer_latency,
        "max_fence_s": result.max_sync_latency,
        "max_get_s": result.max_consumer_latency,
        "mean_get_s": get.mean if get is not None else 0.0,
        "total_s": result.total_time,
        "events": result.events,
        "bytes": result.bytes_sent,
    }


def run_sweep(spec: SweepSpec, *, progress: Optional[TextIO] = None
              ) -> list[dict]:
    """Run every configuration; returns one metrics row per config."""
    rows = []
    total = len(spec)
    for i, config in enumerate(spec.configs(), 1):
        result = run_kap(config)
        rows.append(_row(config, result))
        if progress is not None:
            print(f"[{i}/{total}] nodes={config.nnodes} "
                  f"vsize={config.value_size} "
                  f"red={int(config.redundant_values)} "
                  f"fence={result.max_sync_latency * 1e3:.3f}ms",
                  file=progress)
    return rows


def write_csv(rows: list[dict], out: TextIO) -> None:
    """Write sweep rows as CSV with the :data:`CSV_FIELDS` columns."""
    writer = csv.DictWriter(out, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)


def _parse_list(text: str, cast) -> tuple:
    return tuple(cast(x) for x in text.split(",") if x != "")


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point: build a SweepSpec from flags, run, emit CSV."""
    p = argparse.ArgumentParser(
        prog="python -m repro.kap.sweep",
        description="Batch-sweep KAP configurations; emit CSV metrics.")
    p.add_argument("--nodes", default="8,16,32")
    p.add_argument("--procs-per-node", default="4")
    p.add_argument("--value-size", default="8,512")
    p.add_argument("--nputs", default="1")
    p.add_argument("--naccess", default="1")
    p.add_argument("--stride", default="1")
    p.add_argument("--redundant", choices=("no", "yes", "both"),
                   default="no")
    p.add_argument("--dir-width", default="",
                   help="comma list; empty entry = single directory")
    p.add_argument("--sync", default="fence")
    p.add_argument("--tree-arity", default="2")
    p.add_argument("--seeds", default="0")
    p.add_argument("-o", "--output", default="-",
                   help="CSV path ('-' = stdout)")
    p.add_argument("--quiet", action="store_true")
    args = p.parse_args(argv)

    redundant = {"no": (False,), "yes": (True,),
                 "both": (False, True)}[args.redundant]
    dir_widths: tuple = ((None,) if args.dir_width == "" else tuple(
        None if x == "none" else int(x)
        for x in args.dir_width.split(",")))
    spec = SweepSpec(
        nodes=_parse_list(args.nodes, int),
        procs_per_node=_parse_list(args.procs_per_node, int),
        value_sizes=_parse_list(args.value_size, int),
        nputs=_parse_list(args.nputs, int),
        naccess=_parse_list(args.naccess, int),
        strides=_parse_list(args.stride, int),
        redundant=redundant,
        dir_widths=dir_widths,
        syncs=_parse_list(args.sync, str),
        tree_arities=_parse_list(args.tree_arity, int),
        seeds=_parse_list(args.seeds, int),
    )
    progress = None if args.quiet else sys.stderr
    rows = run_sweep(spec, progress=progress)
    if args.output == "-":
        write_csv(rows, sys.stdout)
    else:
        with open(args.output, "w", newline="") as fh:
            write_csv(rows, fh)
        if not args.quiet:
            print(f"wrote {len(rows)} rows to {args.output}",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
