"""The Flux distributed key-value store (paper Section IV-B).

Content-addressable hash-tree storage (:mod:`.store`, :mod:`.hashtree`),
the root master (:mod:`.master`), caching slaves (:mod:`.cache`), the
``kvs`` comms module binding them to the CMB (:mod:`.module`), and the
client-side ``kvs_*`` API (:mod:`.api`).
"""

from .api import KvsClient, Watcher
from .cache import CacheStats, SlaveCache
from .hashtree import (KvsPathError, apply_update, apply_updates, list_dir,
                       lookup, lookup_ref, split_key)
from .master import CommitResult, FenceState, KvsMaster
from .module import KvsModule
from .store import (EMPTY_DIR, EMPTY_DIR_SHA, ObjectStore, dir_entries,
                    is_dir_obj, is_val_obj, make_dir_obj, make_val_obj,
                    obj_size, val_of)

__all__ = [
    "KvsClient", "Watcher", "CacheStats", "SlaveCache", "KvsPathError",
    "apply_update", "apply_updates", "list_dir", "lookup", "lookup_ref",
    "split_key", "CommitResult", "FenceState", "KvsMaster", "KvsModule",
    "EMPTY_DIR", "EMPTY_DIR_SHA", "ObjectStore", "dir_entries",
    "is_dir_obj", "is_val_obj", "make_dir_obj", "make_val_obj",
    "obj_size", "val_of",
]
