"""Client-side KVS API — the paper's ``kvs_*`` function family.

A :class:`KvsClient` wraps a CMB :class:`~repro.cmb.api.Handle` and
exposes the Section IV-B calls: ``put``, ``get``, ``commit``,
``fence``, ``get_version``, ``wait_version``, ``watch`` and friends.
All calls return :class:`~repro.sim.kernel.Event` objects for use in
simulated processes (``value = yield kvs.get("a.b.c")``).

``watch`` follows the paper's described implementation: it internally
performs a get in response to each root-update event, compares the new
and old values, and fires the callback when they differ — which also
gives directory watches for free, since a directory's SHA1 changes when
anything beneath it changes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..cmb.api import Handle
from ..cmb.message import Message
from ..sim.kernel import Event

__all__ = ["KvsClient", "Watcher"]


class Watcher:
    """An active ``kvs_watch`` registration (cancel with :meth:`cancel`)."""

    def __init__(self, client: "KvsClient", key: str,
                 callback: Callable[[str, Any], None]):
        self.client = client
        self.key = key
        self.callback = callback
        self.cancelled = False
        self._last_ref: Optional[str] = None
        self._primed = False
        self._busy = False
        self._rerun = False

    def cancel(self) -> None:
        """Stop watching; no further callbacks fire."""
        self.cancelled = True

    # -- internals ------------------------------------------------------
    def _prime(self) -> None:
        """Record the key's current reference without firing."""
        self._check()

    def _on_root_update(self, _msg: Message) -> None:
        if self.cancelled:
            return
        if self._busy:
            self._rerun = True  # another root landed mid-check
        else:
            self._check()

    def _check(self) -> None:
        self._busy = True
        self.client.get_ref(self.key).add_callback(self._got_ref)

    def _got_ref(self, ev: Event) -> None:
        if self.cancelled:
            self._busy = False
            return
        ref = ev.value["ref"] if ev.ok else None  # None: key absent
        changed = self._primed and ref != self._last_ref
        self._last_ref = ref
        self._primed = True
        if changed and ref is not None:
            self.client.get(self.key).add_callback(self._got_value)
            return  # stay busy until the value arrives
        if changed:
            self.callback(self.key, None)  # key was removed
        self._finish_check()

    def _got_value(self, ev: Event) -> None:
        if not self.cancelled:
            self.callback(self.key, ev.value if ev.ok else None)
        self._finish_check()

    def _finish_check(self) -> None:
        self._busy = False
        if self._rerun and not self.cancelled:
            self._rerun = False
            self._check()


class KvsClient:
    """The ``kvs_*`` API bound to one CMB handle.

    ``module`` selects the KVS namespace's comms-module topic head:
    ``"kvs"`` for the paper's single-master store, or a shard name like
    ``"kvs2"`` under the distributed-master extension
    (:mod:`repro.kvs.sharding`).
    """

    def __init__(self, handle: Handle, module: str = "kvs",
                 timeout: Optional[float] = None, retries: int = 0):
        self.handle = handle
        self.module = module
        #: Default RPC timeout (simulated seconds) applied to every
        #: call; ``None`` waits forever.  Per-call ``timeout=`` wins.
        #: Timeouts ride the request context, so a mid-tree broker
        #: drops an expired request with ``ETIMEDOUT`` instead of
        #: forwarding it further.
        self.timeout = timeout
        #: Re-issue attempts after retryable failures (see
        #: :meth:`repro.cmb.api.Handle.rpc`); safe because every retry
        #: reuses the original request identity and the brokers replay
        #: cached responses instead of re-executing.
        self.retries = retries
        self._watchers: list[Watcher] = []
        self._subscribed = False

    def _rpc(self, topic: str, payload: Optional[dict] = None,
             timeout: Optional[float] = None) -> Event:
        return self.handle.rpc(
            topic, payload,
            timeout=timeout if timeout is not None else self.timeout,
            retries=self.retries)

    # -- write path -------------------------------------------------------
    def put(self, key: str, value: Any,
            timeout: Optional[float] = None) -> Event:
        """``kvs_put``: write-back store of ``value`` under ``key``.
        Fires with ``{"sha": ...}`` once the local slave has buffered it."""
        return self._rpc(f"{self.module}.put", {
            "key": key, "value": value, "sender": self.handle.client_id},
            timeout=timeout)

    def unlink(self, key: str, timeout: Optional[float] = None) -> Event:
        """Remove ``key`` at the next commit/fence."""
        return self._rpc(f"{self.module}.unlink", {
            "key": key, "sender": self.handle.client_id}, timeout=timeout)

    def commit(self, timeout: Optional[float] = None) -> Event:
        """``kvs_commit``: synchronously flush this client's dirty data
        to the master; fires with ``{"version", "rootref"}`` after the
        new root is applied locally (read-your-writes)."""
        return self._rpc(f"{self.module}.commit",
                         {"sender": self.handle.client_id}, timeout=timeout)

    def fence(self, name: str, nprocs: int,
              timeout: Optional[float] = None) -> Event:
        """``kvs_fence``: collective commit across ``nprocs`` clients.
        Fires once every participant entered and the combined commit's
        root reference has been applied on this client's node."""
        return self._rpc(f"{self.module}.fence", {
            "name": name, "nprocs": nprocs,
            "sender": self.handle.client_id}, timeout=timeout)

    # -- read path --------------------------------------------------------
    def get(self, key: str, timeout: Optional[float] = None) -> Event:
        """``kvs_get``: fires with the value (faulting objects in as
        needed), or fails with RpcError for a missing key."""
        ev = self._rpc(f"{self.module}.get", {"key": key}, timeout=timeout)
        out = self.handle.sim.event(name=f"kvs-get:{key}")

        def done(e: Event) -> None:
            if not e.ok:
                out.fail(e._exc)
            elif "dir" in e.value:
                out.succeed({"__dir__": e.value["dir"]})
            else:
                out.succeed(e.value["value"])

        ev.add_callback(done)
        return out

    def get_ref(self, key: str, timeout: Optional[float] = None) -> Event:
        """Resolve ``key`` to its SHA1 reference without transferring
        the terminal object."""
        return self._rpc(f"{self.module}.get", {"key": key, "ref": True},
                         timeout=timeout)

    def get_dir(self, key: str, timeout: Optional[float] = None) -> Event:
        """Names under the directory at ``key``."""
        ev = self._rpc(f"{self.module}.get", {"key": key}, timeout=timeout)
        out = self.handle.sim.event(name=f"kvs-dir:{key}")

        def done(e: Event) -> None:
            if not e.ok:
                out.fail(e._exc)
            elif "dir" not in e.value:
                out.fail(KeyError(f"{key!r} is not a directory"))
            else:
                out.succeed(e.value["dir"])

        ev.add_callback(done)
        return out

    # -- consistency ------------------------------------------------------
    def get_version(self, timeout: Optional[float] = None) -> Event:
        """``kvs_get_version``: the root version applied on this node."""
        return self._rpc(f"{self.module}.getversion", timeout=timeout)

    def wait_version(self, version: int,
                     timeout: Optional[float] = None) -> Event:
        """``kvs_wait_version``: fires once the local slave has applied
        root version >= ``version`` (the causal-consistency wait)."""
        return self._rpc(f"{self.module}.waitversion",
                         {"version": version}, timeout=timeout)

    # -- watch --------------------------------------------------------------
    def watch(self, key: str,
              callback: Callable[[str, Any], None]) -> Watcher:
        """``kvs_watch``: invoke ``callback(key, new_value)`` whenever
        the value (or anything under a watched directory) changes."""
        w = Watcher(self, key, callback)
        self._watchers.append(w)
        if not self._subscribed:
            self.handle.subscribe(f"{self.module}.setroot", self._on_setroot)
            self._subscribed = True
        w._prime()
        return w

    def _on_setroot(self, msg: Message) -> None:
        for w in list(self._watchers):
            if w.cancelled:
                self._watchers.remove(w)
            else:
                w._on_root_update(msg)

    # -- ownership delegation ----------------------------------------------
    def delegate(self, prefix: str, rank: int,
                 timeout: Optional[float] = None) -> Event:
        """Delegate ownership of the directory subtree at ``prefix`` to
        the broker at ``rank``: that broker becomes the subtree's
        master (own root reference and version sequence), and the root
        tree binds a link object so cross-subtree reads still compose.
        Fires with ``{"pfx", "rank", "version"}`` once the link commit
        has been applied at the root master."""
        return self._rpc(f"{self.module}.delegate",
                         {"pfx": prefix, "rank": rank}, timeout=timeout)

    def recall(self, prefix: str, timeout: Optional[float] = None) -> Event:
        """Undo :meth:`delegate`: fold the subtree's current state back
        into the root master's tree and drop the ownership entry.
        Fires with ``{"pfx", "version"}`` after the fold-back commit."""
        return self._rpc(f"{self.module}.recall", {"pfx": prefix},
                         timeout=timeout)

    def owners(self, timeout: Optional[float] = None) -> Event:
        """The ownership table as seen by the answering broker: fires
        with ``{"owners": {prefix: rank}, "hosted": [prefix, ...]}``
        (``hosted`` lists subtrees mastered by that broker itself)."""
        return self._rpc(f"{self.module}.owners", timeout=timeout)

    # -- diagnostics --------------------------------------------------------
    def stats(self, rank: Optional[int] = None) -> Event:
        """Cache statistics of the local (or a specific) KVS instance,
        the latter via the rank-addressed ring overlay."""
        if rank is None:
            return self.handle.rpc(f"{self.module}.stats")
        return self.handle.rpc_rank(rank, f"{self.module}.stats")
