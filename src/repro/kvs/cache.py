"""Slave-side object cache with disuse expiry.

Every broker's KVS slave keeps a cache of full objects faulted in from
its tree parent.  The paper: "Unused slave object cache entries are
expired after a period of disuse to save memory" — :meth:`expire`
implements that policy; the ``kvs`` module drives it from heartbeats
when the ``hb`` module is loaded.

Dirty (not-yet-committed) objects are pinned and never expire.
"""

from __future__ import annotations

from typing import Optional

from .store import EMPTY_DIR, EMPTY_DIR_SHA, ObjectStore

__all__ = ["CacheStats", "SlaveCache"]


class CacheStats:
    """Hit/miss/eviction counters for one slave cache."""

    __slots__ = ("hits", "misses", "evictions", "faults")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.faults = 0

    def as_dict(self) -> dict[str, int]:
        """Counter snapshot."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "faults": self.faults}


class SlaveCache:
    """An :class:`ObjectStore` augmented with last-use tracking.

    ``now_fn`` supplies the simulated clock so expiry is measured in
    simulated seconds.
    """

    def __init__(self, now_fn):
        self._store = ObjectStore()
        self._last_used: dict[str, float] = {EMPTY_DIR_SHA: 0.0}
        self._pinned: set[str] = set()
        self._now = now_fn
        self.stats = CacheStats()

    def __contains__(self, sha: str) -> bool:
        return sha in self._store

    def __len__(self) -> int:
        return len(self._store)

    def get(self, sha: str) -> Optional[dict]:
        """Cached object or None; touches the entry on hit."""
        obj = self._store.get(sha)
        if obj is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._last_used[sha] = self._now()
        return obj

    def insert(self, sha: str, obj: dict, *, pin: bool = False,
               size: Optional[int] = None) -> None:
        """Cache ``obj`` under ``sha``; ``pin`` protects it from expiry
        (used for dirty objects awaiting commit).  ``size`` records the
        canonical byte size when the caller already knows it."""
        self._store.put_with_sha(sha, obj, size=size)
        self._last_used[sha] = self._now()
        if pin:
            self._pinned.add(sha)

    def size_of(self, sha: str) -> Optional[int]:
        """Canonical byte size of a cached object (no touch), or None."""
        return self._store.size_of(sha)

    def unpin(self, sha: str) -> None:
        """Allow a previously pinned object to expire again."""
        self._pinned.discard(sha)

    def expire(self, max_idle: float) -> int:
        """Evict unpinned entries idle longer than ``max_idle`` seconds;
        returns the eviction count.  The empty directory never expires."""
        now = self._now()
        victims = [sha for sha, t in self._last_used.items()
                   if now - t > max_idle
                   and sha not in self._pinned
                   and sha != EMPTY_DIR_SHA]
        for sha in victims:
            self._store.discard(sha)
            del self._last_used[sha]
        self.stats.evictions += len(victims)
        return len(victims)
