"""Hash-tree path operations over the content-addressable store.

Implements the two walks Section IV-B illustrates:

- **lookup** — split ``a.b.c`` into path components, follow SHA1
  references from the root directory down to the terminal object;
- **update** — store the new value object, then rebuild every
  directory along the path bottom-up, producing a brand-new root SHA1
  ("any update results in a new SHA1 root reference").

These are pure functions over an :class:`~repro.kvs.store.ObjectStore`;
the master uses them to apply commits, and tests exercise them directly
against the paper's worked example.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .store import (ObjectStore, dir_entries, is_dir_obj,
                    make_dir_obj, val_of)

__all__ = ["KvsPathError", "split_key", "lookup_ref", "lookup",
           "apply_update", "apply_updates", "list_dir"]


class KvsPathError(KeyError):
    """A key path could not be resolved (missing component or a value
    object where a directory was expected).

    ``code`` carries the errnum-style RPC error code the KVS service
    reports for this failure (default ``EINVAL``; lookups that walk off
    the tree use ``ENOENT``, lost objects ``EIO``).
    """

    def __init__(self, message: str, code: Optional[str] = None):
        super().__init__(message)
        from ..cmb.errors import EINVAL
        self.code = code if code is not None else EINVAL


def split_key(key: str) -> list[str]:
    """Split ``"a.b.c"`` into components, validating non-emptiness."""
    parts = key.split(".")
    if not key or any(not p for p in parts):
        raise KvsPathError(f"malformed key {key!r}")
    return parts


def lookup_ref(store: ObjectStore, root_sha: str, key: str,
               fetch: Optional[Callable[[str], dict]] = None) -> str:
    """Resolve ``key`` to the SHA1 of its terminal object.

    ``fetch`` is called for objects missing from ``store`` (the slave
    fault-in path); omitted, a missing object raises KeyError.
    """
    def load(sha: str) -> dict:
        obj = store.get(sha)
        if obj is None:
            if fetch is None:
                raise KeyError(f"object {sha} not in store")
            obj = fetch(sha)
        return obj

    sha = root_sha
    parts = split_key(key)
    for i, part in enumerate(parts):
        obj = load(sha)
        if not is_dir_obj(obj):
            raise KvsPathError(
                f"{'.'.join(parts[:i])!r} is not a directory")
        entries = dir_entries(obj)
        if part not in entries:
            raise KvsPathError(f"key {key!r}: component {part!r} missing",
                               code="ENOENT")
        sha = entries[part]
    return sha


def lookup(store: ObjectStore, root_sha: str, key: str,
           fetch: Optional[Callable[[str], dict]] = None) -> Any:
    """Resolve ``key`` and return its value (or a directory listing
    ``{"__dir__": [names...]}`` when the terminal object is a directory).
    """
    sha = lookup_ref(store, root_sha, key, fetch)
    obj = store.get(sha)
    if obj is None and fetch is not None:
        obj = fetch(sha)
    if obj is None:
        raise KeyError(f"object {sha} not in store")
    if is_dir_obj(obj):
        return {"__dir__": sorted(dir_entries(obj))}
    return val_of(obj)


def list_dir(store: ObjectStore, root_sha: str, key: str,
             fetch: Optional[Callable[[str], dict]] = None) -> dict[str, str]:
    """Entries of the directory at ``key`` (``""``/``"."`` = root)."""
    if key in ("", "."):
        sha = root_sha
    else:
        sha = lookup_ref(store, root_sha, key, fetch)
    obj = store.get(sha)
    if obj is None and fetch is not None:
        obj = fetch(sha)
    if obj is None or not is_dir_obj(obj):
        raise KvsPathError(f"{key!r} is not a directory")
    return dict(dir_entries(obj))


def apply_update(store: ObjectStore, root_sha: str, key: str,
                 val_sha: Optional[str]) -> str:
    """Rebind ``key`` to the object ``val_sha``; returns the new root SHA1.

    Follows the paper's update walk: intermediate directories are
    created as needed; every directory on the path is re-stored with a
    new SHA1, ending in a new root reference.  Setting ``val_sha`` to
    ``None`` unlinks the key.
    """
    parts = split_key(key)
    # Load the directory chain root -> parent of leaf, creating missing
    # directories (and replacing value objects blocking the path).
    chain: list[dict[str, str]] = []
    sha: Optional[str] = root_sha
    for part in parts[:-1]:
        obj = store.get(sha) if sha is not None else None
        entries = dict(dir_entries(obj)) if obj is not None and is_dir_obj(obj) else {}
        chain.append(entries)
        sha = entries.get(part)
    obj = store.get(sha) if sha is not None else None
    leaf_entries = dict(dir_entries(obj)) if obj is not None and is_dir_obj(obj) else {}
    chain.append(leaf_entries)

    # Rebuild bottom-up.
    if val_sha is None:
        chain[-1].pop(parts[-1], None)
    else:
        chain[-1][parts[-1]] = val_sha
    child_sha = store.put_obj(make_dir_obj(chain[-1]))
    for level in range(len(parts) - 2, -1, -1):
        chain[level][parts[level]] = child_sha
        child_sha = store.put_obj(make_dir_obj(chain[level]))
    return child_sha


def apply_updates(store: ObjectStore, root_sha: str,
                  ops: list[tuple[str, Optional[str]]]) -> str:
    """Apply a batch of ``(key, val_sha)`` bindings; returns new root.

    Semantically identical to applying :func:`apply_update` op by op
    (later bindings of the same key win), but each directory touched by
    the batch is rebuilt exactly once: the bindings are merged into a
    path trie first, then directories are re-stored bottom-up.  This is
    what keeps a fence of many thousands of producers (KAP's sync
    phase) linear in the number of keys rather than quadratic.
    """
    if not ops:
        # The paper's commit always produces a new root reference; an
        # empty commit re-stores the root unchanged.
        return root_sha

    # Trie node: bind = final val_sha / None (unlink) / _UNSET (no direct
    # binding); kids = deeper writes; fresh = an in-batch binding blew
    # away whatever the store had here, so ignore the store's baseline.
    _UNSET = object()

    def new_node() -> dict:
        return {"bind": _UNSET, "kids": {}, "fresh": False}

    trie = new_node()
    for key, val_sha in ops:
        parts = split_key(key)
        node = trie
        for part in parts[:-1]:
            if node["bind"] is not _UNSET:
                # An earlier op bound this position to a value (or
                # unlinked it); writing deeper turns it into a brand-new
                # directory, destroying the store's old contents.
                node["bind"] = _UNSET
                node["fresh"] = True
            node = node["kids"].setdefault(part, new_node())
        leaf = node["kids"].setdefault(parts[-1], new_node())
        leaf["bind"] = val_sha
        leaf["kids"] = {}   # direct binding overrides earlier deeper ops
        leaf["fresh"] = False
        if node["bind"] is not _UNSET:
            node["bind"] = _UNSET
            node["fresh"] = True

    def rebuild(node: dict, dir_sha: Optional[str]) -> Optional[str]:
        """Return the sha for this position after applying the trie node."""
        if node["bind"] is not _UNSET and not node["kids"]:
            return node["bind"]  # plain (re)binding, possibly None=unlink
        obj = (store.get(dir_sha)
               if dir_sha is not None and not node["fresh"] else None)
        entries = (dict(dir_entries(obj))
                   if obj is not None and is_dir_obj(obj) else {})
        for name, kid in node["kids"].items():
            kid_sha = rebuild(kid, entries.get(name))
            if kid_sha is None:
                entries.pop(name, None)
            else:
                entries[name] = kid_sha
        return store.put_obj(make_dir_obj(entries))

    new_root = rebuild(trie, root_sha)
    assert new_root is not None
    return new_root
