"""The KVS master: authoritative store and commit engine.

One master lives at the root of the CMB tree ("all updates are applied
first on the master node at the root").  It owns the authoritative
object store, the current root SHA1 reference, and the monotonically
increasing root *version* that the consistency protocol hangs off.

Fence bookkeeping also lives here: a named fence of ``nprocs``
participants accumulates (key, SHA1) tuples and content objects until
all contributions arrive, then applies them as a single commit.

The multi-master extension reuses this same engine in two more roles:

- **delegate master** — an interior broker that was delegated a
  directory subtree instantiates its own :class:`KvsMaster` for that
  namespace (own root ref, own version sequence, own fences);
- **standby replica** — the root master streams each commit as a
  :class:`CommitRecord`; a standby applies records in version order
  via :meth:`apply_record` and can be promoted wholesale on failover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .hashtree import apply_updates, lookup_ref
from .store import EMPTY_DIR_SHA, ObjectStore, dir_entries, is_dir_obj

__all__ = ["CommitRecord", "CommitResult", "FenceState", "KvsMaster"]


@dataclass(frozen=True)
class CommitResult:
    """Outcome of one master commit: the new root reference/version."""

    root_sha: str
    version: int


@dataclass(frozen=True)
class CommitRecord:
    """One entry of the replicated commit log.

    Carries everything a standby needs to reproduce the commit's
    outcome state: the resulting version/root and the objects the
    commit *newly introduced* (ingested values plus rebuilt
    directories).  ``fence`` names the fence this commit completed, if
    any, so a promoted standby can seed its completed-fence digest.
    """

    version: int
    root_sha: str
    objs: dict
    fence: Optional[str] = None

    def to_wire(self) -> dict:
        """Wire form streamed to replicas."""
        out = {"v": self.version, "root": self.root_sha, "objs": self.objs}
        if self.fence is not None:
            out["fence"] = self.fence
        return out

    @classmethod
    def from_wire(cls, p: dict) -> "CommitRecord":
        return cls(version=p["v"], root_sha=p["root"], objs=p["objs"],
                   fence=p.get("fence"))


@dataclass
class FenceState:
    """Accumulator for one named fence at the master.

    ``objs`` is only populated by :meth:`KvsMaster.fence_add_logged`
    (replicated masters): the completing commit's record must carry
    every object any contribution brought, and the store journal only
    captures objects that were new to the store.
    """

    name: str
    nprocs: int
    count: int = 0
    ops: list = field(default_factory=list)
    objs: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True once every participant's contribution has arrived."""
        return self.count >= self.nprocs


class KvsMaster:
    """Authoritative KVS state for one namespace (root or delegated).

    ``start_version`` seeds the version sequence: a delegate master
    adopted mid-session starts at the version its namespace last held,
    keeping per-namespace versions monotonic across ownership moves.
    """

    def __init__(self, start_version: int = 0):
        self.store = ObjectStore()
        self.root_sha: str = EMPTY_DIR_SHA
        self.version: int = start_version
        self._fences: dict[str, FenceState] = {}
        self.commits: int = 0

    # ------------------------------------------------------------------
    def ingest_objects(self, objs: dict[str, dict]) -> None:
        """Accept content objects flushed from below."""
        for sha, obj in objs.items():
            self.store.put_with_sha(sha, obj)

    def commit(self, ops: list[tuple[str, Optional[str]]]) -> CommitResult:
        """Apply ``(key, val_sha)`` bindings; returns new root + version.

        Every commit produces a fresh root SHA1 and bumps the version
        even when the resulting tree is unchanged, keeping version
        numbers a reliable happens-before token.
        """
        for _key, sha in ops:
            if sha is not None and sha not in self.store:
                raise KeyError(f"commit references unknown object {sha}")
        self.root_sha = apply_updates(self.store,
                                      self.root_sha,
                                      [(k, s) for k, s in ops])
        self.version += 1
        self.commits += 1
        return CommitResult(self.root_sha, self.version)

    # ------------------------------------------------------------------
    def fence_add(self, name: str, nprocs: int, count: int,
                  ops: list[tuple[str, Optional[str]]],
                  objs: dict[str, dict]) -> Optional[CommitResult]:
        """Fold one (possibly pre-aggregated) fence contribution in.

        Returns the commit result once the fence completes, else None.
        A completed fence name can be reused afterwards (KAP re-fences
        every iteration).
        """
        st = self._fences.get(name)
        if st is None:
            st = self._fences[name] = FenceState(name, nprocs)
        elif st.nprocs != nprocs:
            raise ValueError(
                f"fence {name!r}: inconsistent nprocs "
                f"({st.nprocs} vs {nprocs})")
        self.ingest_objects(objs)
        st.ops.extend(ops)
        st.count += count
        if not st.complete:
            return None
        del self._fences[name]
        return self.commit(st.ops)

    # ------------------------------------------------------------------
    # replicated commit log (multi-master extension)
    # ------------------------------------------------------------------
    def commit_logged(self, ops: list[tuple[str, Optional[str]]],
                      objs: dict[str, dict]
                      ) -> tuple[CommitResult, CommitRecord]:
        """Ingest ``objs`` and apply ``ops`` as one commit, capturing a
        :class:`CommitRecord` of exactly the objects the commit newly
        stored (for streaming to standby replicas)."""
        self.store.begin_journal()
        try:
            self.ingest_objects(objs)
            res = self.commit(ops)
        finally:
            captured = self.store.end_journal()
        return res, CommitRecord(res.version, res.root_sha, captured)

    def fence_add_logged(self, name: str, nprocs: int, count: int,
                         ops: list[tuple[str, Optional[str]]],
                         objs: dict[str, dict]
                         ) -> tuple[Optional[CommitResult],
                                    Optional[CommitRecord]]:
        """:meth:`fence_add` with commit-log capture: returns
        ``(result, record)`` once the fence completes, else
        ``(None, None)``.

        Accumulates every contribution's objects on the fence state so
        the completing record is self-contained (the journal alone
        would miss objects already stored by earlier contributions or
        pre-ingested by the hosting module)."""
        st = self._fences.get(name)
        acc = dict(st.objs) if st is not None else {}
        acc.update(objs)
        self.store.begin_journal()
        try:
            res = self.fence_add(name, nprocs, count, ops, objs)
        finally:
            captured = self.store.end_journal()
        if res is None:
            st = self._fences.get(name)
            if st is not None:
                st.objs = acc
            return None, None
        acc.update(captured)
        return res, CommitRecord(res.version, res.root_sha, acc,
                                 fence=name)

    def apply_record(self, rec: CommitRecord) -> None:
        """Standby side: reproduce a streamed commit's outcome state.

        Records must be applied in version order (the caller buffers
        out-of-order arrivals); a record at or below the current
        version is a duplicate and is ignored.
        """
        if rec.version <= self.version:
            return
        for sha, obj in rec.objs.items():
            self.store.put_with_sha(sha, obj)
        self.root_sha = rec.root_sha
        self.version = rec.version
        self.commits += 1

    def reachable_objects(self, root_sha: Optional[str] = None
                          ) -> dict[str, dict]:
        """Every object reachable from ``root_sha`` (default: the
        current root) — a full-state snapshot for replica resync and
        subtree transfer at delegation/recall time."""
        out: dict[str, dict] = {}
        stack = [root_sha if root_sha is not None else self.root_sha]
        while stack:
            sha = stack.pop()
            if sha in out:
                continue
            obj = self.store.get(sha)
            if obj is None:
                continue
            out[sha] = obj
            if is_dir_obj(obj):
                stack.extend(sorted(dir_entries(obj).values()))
        return out

    # ------------------------------------------------------------------
    # subtree extraction (ownership delegation)
    # ------------------------------------------------------------------
    def subtree_ref(self, prefix: str) -> Optional[str]:
        """SHA1 of the directory at dotted path ``prefix``, or ``None``
        when the path does not resolve to a directory."""
        try:
            sha = lookup_ref(self.store, self.root_sha, prefix)
        except KeyError:
            return None
        obj = self.store.get(sha)
        if obj is None or not is_dir_obj(obj):
            return None
        return sha

    def pending_fences(self) -> list[str]:
        """Names of fences still waiting for contributions."""
        return list(self._fences)

    def reset_incomplete_fences(self) -> None:
        """Forget partial fence contributions (chaos recovery).

        After an overlay failure every live rank re-contributes its
        *cumulative* local fence state under a new fence epoch, so the
        master must restart incomplete counts from zero or the
        re-contributions would double-count.  The fence entries stay
        (preserving the nprocs consistency check); ingested content
        objects stay too — re-ingest is idempotent by SHA1.
        """
        for st in self._fences.values():
            st.count = 0
            st.ops = []
            st.objs = {}
