"""The KVS master: authoritative store and commit engine.

One master lives at the root of the CMB tree ("all updates are applied
first on the master node at the root").  It owns the authoritative
object store, the current root SHA1 reference, and the monotonically
increasing root *version* that the consistency protocol hangs off.

Fence bookkeeping also lives here: a named fence of ``nprocs``
participants accumulates (key, SHA1) tuples and content objects until
all contributions arrive, then applies them as a single commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .hashtree import apply_updates
from .store import EMPTY_DIR_SHA, ObjectStore

__all__ = ["CommitResult", "FenceState", "KvsMaster"]


@dataclass(frozen=True)
class CommitResult:
    """Outcome of one master commit: the new root reference/version."""

    root_sha: str
    version: int


@dataclass
class FenceState:
    """Accumulator for one named fence at the master."""

    name: str
    nprocs: int
    count: int = 0
    ops: list = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True once every participant's contribution has arrived."""
        return self.count >= self.nprocs


class KvsMaster:
    """Authoritative KVS state at the session root."""

    def __init__(self):
        self.store = ObjectStore()
        self.root_sha: str = EMPTY_DIR_SHA
        self.version: int = 0
        self._fences: dict[str, FenceState] = {}
        self.commits: int = 0

    # ------------------------------------------------------------------
    def ingest_objects(self, objs: dict[str, dict]) -> None:
        """Accept content objects flushed from below."""
        for sha, obj in objs.items():
            self.store.put_with_sha(sha, obj)

    def commit(self, ops: list[tuple[str, Optional[str]]]) -> CommitResult:
        """Apply ``(key, val_sha)`` bindings; returns new root + version.

        Every commit produces a fresh root SHA1 and bumps the version
        even when the resulting tree is unchanged, keeping version
        numbers a reliable happens-before token.
        """
        for _key, sha in ops:
            if sha is not None and sha not in self.store:
                raise KeyError(f"commit references unknown object {sha}")
        self.root_sha = apply_updates(self.store,
                                      self.root_sha,
                                      [(k, s) for k, s in ops])
        self.version += 1
        self.commits += 1
        return CommitResult(self.root_sha, self.version)

    # ------------------------------------------------------------------
    def fence_add(self, name: str, nprocs: int, count: int,
                  ops: list[tuple[str, Optional[str]]],
                  objs: dict[str, dict]) -> Optional[CommitResult]:
        """Fold one (possibly pre-aggregated) fence contribution in.

        Returns the commit result once the fence completes, else None.
        A completed fence name can be reused afterwards (KAP re-fences
        every iteration).
        """
        st = self._fences.get(name)
        if st is None:
            st = self._fences[name] = FenceState(name, nprocs)
        elif st.nprocs != nprocs:
            raise ValueError(
                f"fence {name!r}: inconsistent nprocs "
                f"({st.nprocs} vs {nprocs})")
        self.ingest_objects(objs)
        st.ops.extend(ops)
        st.count += count
        if not st.complete:
            return None
        del self._fences[name]
        return self.commit(st.ops)

    def pending_fences(self) -> list[str]:
        """Names of fences still waiting for contributions."""
        return list(self._fences)

    def reset_incomplete_fences(self) -> None:
        """Forget partial fence contributions (chaos recovery).

        After an overlay failure every live rank re-contributes its
        *cumulative* local fence state under a new fence epoch, so the
        master must restart incomplete counts from zero or the
        re-contributions would double-count.  The fence entries stay
        (preserving the nprocs consistency check); ingested content
        objects stay too — re-ingest is idempotent by SHA1.
        """
        for st in self._fences.values():
            st.count = 0
            st.ops = []
