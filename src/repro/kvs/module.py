"""The ``kvs`` comms module: master at the root, caching slaves below.

Implements the full Section IV-B protocol:

- **put** — write-back: the value object is hashed and cached locally;
  the (key, SHA1) tuple is parked per client pending commit.
- **commit** — flushes a client's dirty tuples/objects upstream hop by
  hop (each slave on the path caches what passes through) to the
  master, which applies them and answers with the new root reference;
  each hop — and finally the client's slave — applies that root before
  responding, giving read-your-writes consistency.
- **fence** — the collective commit.  Each slave waits for the fence
  contributions of its *entire subtree* (local clients plus one
  aggregate per child), merges them — content objects union by SHA1,
  so redundant values reduce; (key, SHA1) tuples concatenate, which is
  why Figure 3's redundant case still falls short of logarithmic —
  and forwards a single combined contribution to its parent.  The
  master applies the completed fence and multicasts the new root.
  When only a subset of a subtree's clients joins a fence, a short
  aggregation window flushes partial aggregates upstream so the root
  still reaches the ``nprocs`` total.
- **get** — resolves hash-tree paths against the currently applied
  root; objects missing from the slave cache are faulted in from the
  tree parent, recursively up to the master.  Whole objects transfer,
  so a small value inside a huge directory drags the whole directory
  through every cache on the path (the Figure 4a effect).
- **setroot events** — the master publishes each new root reference on
  the event plane; slaves apply versions monotonically, release
  ``wait_version`` waiters, and complete held fences.

The multi-master extension (the paper's stated future work of
"distributing the KVS master itself") adds two orthogonal mechanisms,
both inert — and event-identical to the single-master protocol — until
explicitly configured:

- **subtree ownership delegation** — ``kvs.delegate`` hands a directory
  subtree (e.g. ``job.42``) to an interior broker, which instantiates
  its own :class:`KvsMaster` for that namespace (own root ref, version
  sequence, fence bookkeeping).  Every rank keeps an ownership table
  fed by totally-ordered ``kvs.delegation`` events; writes and reads
  under a delegated prefix route hop-by-hop toward the owner
  (``rpc_hop_cb``), falling back root-ward on a miss.  The root binds a
  *link object* at the delegated path so cross-subtree reads still
  compose into one hash tree: a walk landing on a link re-routes to the
  owning rank.
- **root replication + ring-election failover** — with ``replicas``
  configured, the root master streams each commit as a
  :class:`~repro.kvs.master.CommitRecord` to the standby replicas and
  defers both the client ack and the setroot publish until the ack
  watermark covers the commit (semi-synchronous replication: an acked
  write is never lost with the master).  On the master's death
  (``live.down``), the standbys run a Chang–Roberts ring election that
  promotes the most-caught-up replica; everyone else learns the winner
  from the totally-ordered ``kvs.newmaster`` event and re-routes, and
  in-flight fences replay idempotently through the chaos-recovery
  machinery.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Optional

from ..cmb.errors import (EAGAIN, EEXIST, EHOSTUNREACH, EINVAL, EIO,
                          ENOENT, RETRYABLE_CODES)
from ..cmb.message import (HEADER_BYTES, Message, MessageType,
                           RequestContext)
from ..cmb.module import CommsModule, request_handler
from ..obs import DEFAULT_SIZE_LADDER
from ..jsonutil import (canonical_size, digest_and_size, intern_fragment,
                        interned_size)
from .cache import SlaveCache
from .hashtree import KvsPathError, apply_updates, lookup_ref, split_key
from .master import CommitRecord, KvsMaster
from .store import (EMPTY_DIR_SHA, dir_entries, is_dir_obj, is_link_obj,
                    link_of, make_link_obj, make_val_obj, val_of)

__all__ = ["KvsModule"]


class _Dirty:
    """Per-client uncommitted state (write-back buffer)."""

    __slots__ = ("ops", "objs")

    def __init__(self):
        self.ops: list[list] = []           # [key, sha|None] pairs
        self.objs: dict[str, dict] = {}     # sha -> object


class _FenceAgg:
    """Per-name fence aggregation at one slave.

    ``count``/``ops``/``objs`` hold contributions not yet flushed
    upstream; ``total_seen`` counts everything that ever arrived (the
    fast-path trigger: flush as soon as the whole subtree has
    contributed).  When only a subset of the subtree participates in a
    fence (e.g. two jobs sharing a session), a window timer flushes
    partial aggregates so the root can still complete the fence.

    ``local_count``/``local_ops``/``local_objs`` additionally keep the
    *cumulative* contributions of this rank's own clients (never
    cleared by upstream flushes): after an overlay failure resets the
    fence epoch, every rank re-emits exactly its local share, and the
    re-aggregation sums to the true total because local shares are
    disjoint.  ``created_version`` guards against a stale completion
    notice for a previous fence of the same name releasing this one.

    ``shares`` drives the *idempotent* wire mode used while a fault
    plan is installed (lossy fabric): ``shares[origin]`` is the
    ``[count, ops]`` cumulative contribution of rank ``origin``'s own
    clients, merged monotonically (larger count wins) like a G-counter.
    Re-emitting the full merged map is always safe — duplicates and
    arbitrary re-orderings cannot double-count — so lost messages are
    repaired by simply re-sending on every heartbeat pulse, with no
    epoch bookkeeping that could itself be lost.
    """

    __slots__ = ("name", "nprocs", "count", "ops", "objs", "held",
                 "total_seen", "timer_armed", "local_count", "local_ops",
                 "local_objs", "created_version", "shares", "completing",
                 "span", "ops_size")

    def __init__(self, name: str, nprocs: int, created_version: int = 0):
        self.name = name
        self.nprocs = nprocs
        self.count = 0
        self.ops: list[list] = []
        #: Running sum of the canonical byte sizes of ``ops``'s
        #: *elements* — maintained incrementally at every mutation of
        #: ``ops`` so the flush-time payload sizing never re-walks the
        #: aggregate (outgoing list size = 1 + len(ops) + ops_size).
        self.ops_size = 0
        self.objs: dict[str, dict] = {}
        self.held: list[Message] = []       # local client fence requests
        self.total_seen = 0
        self.timer_armed = False
        self.local_count = 0
        self.local_ops: list[list] = []
        self.local_objs: dict[str, dict] = {}
        self.created_version = created_version
        self.shares: dict[int, list] = {}
        self.completing = False
        #: Tracing context of the latest contribution folded in: the
        #: upstream flush (and the completing setroot publish) parent
        #: under it, keeping the whole fence inside one span tree.
        self.span = None


class KvsModule(CommsModule):
    """Distributed KVS service (see module docstring).

    Config
    ------
    expiry:
        Cache-disuse expiry in simulated seconds, applied on each
        ``hb.pulse`` event when the heartbeat module is loaded
        (``None`` disables expiry — the default).
    """

    name = "kvs"

    def __init__(self, broker, *, expiry: Optional[float] = None,
                 fence_window: float = 1e-4, name: str = "kvs",
                 master_rank: int = 0, master_commit_cost: float = 0.0,
                 master_op_cost: float = 0.0,
                 replicas: tuple = (), repl_ack_min: int = 1,
                 dedup: bool = False):
        self.name = name  # instance override: sharded namespaces load
        # several KvsModule instances under distinct topic heads.
        super().__init__(broker, expiry=expiry, fence_window=fence_window,
                         name=name, master_rank=master_rank,
                         master_commit_cost=master_commit_cost,
                         master_op_cost=master_op_cost,
                         replicas=replicas, repl_ack_min=repl_ack_min,
                         dedup=dedup)
        self.expiry = expiry
        #: Aggregation window for partial fence flushes (seconds): how
        #: long a slave waits for more subtree contributions before
        #: forwarding an incomplete aggregate upstream.
        self.fence_window = fence_window
        #: Which session rank hosts this namespace's master.  The paper
        #: places it at the tree root; the distributed-master extension
        #: (its stated future work) spreads shard masters across ranks.
        self.master_rank = master_rank
        #: Master service-time model: a commit occupies the master for
        #: ``master_commit_cost + master_op_cost * len(ops)`` simulated
        #: seconds, serialized FIFO.  Defaults to zero (the paper's
        #: evaluation is communication-bound); the distributed-master
        #: ablation sets realistic costs to expose the serialization.
        self.master_commit_cost = master_commit_cost
        self.master_op_cost = master_op_cost
        self._master_queue: list = []
        self._master_busy = False
        self.cache = SlaveCache(lambda: broker.sim.now)
        self.master: Optional[KvsMaster] = (
            KvsMaster() if broker.rank == master_rank else None)
        self.root_sha: str = EMPTY_DIR_SHA
        self.version: int = 0
        self._dirty: dict[Any, _Dirty] = {}
        self._fences: dict[str, _FenceAgg] = {}
        self._loads: dict[str, list[Callable[[Optional[dict]], None]]] = {}
        self._version_waiters: list[tuple[int, Message]] = []
        #: Fence epoch: bumped on every ``live.down`` event.  The event
        #: plane's total order makes the count identical at every live
        #: rank, so tagging re-emitted fence contributions with the
        #: epoch lets receivers drop stale in-flight duplicates from
        #: before the failure (double-count prevention).  Stays 0 in a
        #: failure-free run, in which case it is omitted from payloads
        #: entirely (wire sizes unchanged).
        self.fence_epoch = 0
        #: Recently completed fences (name -> (version, root sha)),
        #: a bounded LRU gossiped to children so a fence-completion
        #: setroot event lost in transit cannot strand held waiters.
        self._completed: "OrderedDict[str, tuple[int, str]]" = OrderedDict()
        self.completed_cap = 64
        self._sync_busy = False
        self._sync_at = -1.0
        # ---- multi-master extension (all inert when unconfigured) ----
        #: Ranks holding standby replicas of the root master's state.
        #: Empty (the default) keeps the single-master protocol
        #: event-identical to the pre-replication revision.
        self.replicas = tuple(sorted(r for r in replicas))
        #: Standby acks required before a commit is acknowledged to the
        #: client (clamped to the number of live replicas).
        self.repl_ack_min = repl_ack_min
        self._standby: Optional[KvsMaster] = (
            KvsMaster() if (self.rank in self.replicas
                            and self.rank != master_rank) else None)
        # Master-side replication: in-flight commit log suffix, per-
        # replica ack watermarks, and (version, fn) acks deferred until
        # the watermark covers them.
        self._repl_log: list[CommitRecord] = []
        self._repl_acks: dict[int, int] = {}
        self._repl_waiters: list[tuple[int, Callable[[], None]]] = []
        # Standby-side: out-of-order record buffer and the completed-
        # fence digest a promoted standby seeds ``_completed`` from.
        self._standby_buffer: dict[int, CommitRecord] = {}
        self._standby_completed: "OrderedDict[str, tuple[int, str]]" = (
            OrderedDict())
        self._repl_sync_busy = False
        self._repl_sync_at = -1.0
        #: Failover state.  ``_failed_over`` flips permanently once a
        #: promotion happened: routing then targets ``master_rank``
        #: explicitly instead of the root-ward parent chain.
        self._failed_over = False
        self._master_down = False
        self._master_down_at = 0.0
        #: Open election span at this candidate (tracing only): closed
        #: at promotion (we won) or on the ``newmaster`` event (lost).
        self._elect_span = None
        #: Ownership table: delegated prefix -> owning rank, learned
        #: from totally-ordered ``{name}.delegation`` events (every
        #: rank converges on the same table).
        self.owners: dict[str, int] = {}
        #: Delegate masters hosted at *this* rank: prefix -> KvsMaster.
        self.delegates: dict[str, KvsMaster] = {}
        #: Highest delegated-namespace version observed per prefix at
        #: this rank — a monotonic floor so an out-of-order remote-get
        #: response is not reported to the sanitizers as a read
        #: regression it is not.
        self._pfx_seen: dict[str, int] = {}
        # Fence completions deferred on in-flight delegated parts:
        # fence name -> outstanding part count / deferred finisher.
        self._fence_deleg_pending: dict[str, int] = {}
        self._fence_deferred: dict[str, Callable[[], None]] = {}
        # Per-owner commit counts (a CounterVec materializes no cells
        # until first inc, so snapshots are unchanged when delegation
        # is off).
        self._cv_owner_commits = broker.registry.counter_vec(
            "kvs_owner_commits_total", ("ns", "owner"))
        #: Wire dedup mode (off by default — the classic protocol stays
        #: byte-identical).  When on, objs-carrying payloads replace
        #: objects the uplink peer already holds with sha references
        #: ("orefs"), and cold reads walk remotely instead of faulting
        #: whole directories down the tree (see ``req_walk``).
        self.dedup = bool(dedup)
        #: Per-uplink-peer "already sent" sha filter.  Purely an
        #: optimization: a receiver missing a referenced object answers
        #: with a retryable ``{"missing": [...]}`` error and the sender
        #: re-sends in full, so stale filter state (reroute, failover,
        #: retransmit races) costs one extra round-trip, never
        #: correctness.  Cleared wholesale on every topology-visible
        #: event (live.down, promotion, newmaster).
        self._link_sent: dict[int, set] = {}
        #: Walk-get triggers already charged to the "walk" savings
        #: counter (one legacy directory fault-in avoided per distinct
        #: trigger sha per rank, mirroring ``_loads`` coalescing).
        self._walk_seen: set = set()
        # Bytes of work the interning/dedup machinery avoided, by kind:
        # "sizing" (canonical re-serialization skipped via the intern
        # table), "link" (wire bytes replaced by sha references), and
        # "walk" (directory bytes not faulted down the tree).  Cells
        # materialize on first inc, so snapshots are unchanged when the
        # machinery is idle.
        self._cv_interned = broker.registry.counter_vec(
            "kvs_interned_bytes_saved_total", ("ns", "kind"))
        self._cv_walks = broker.registry.counter_vec(
            "kvs_walk_gets_total", ("ns",))
        # Registry instruments (broker-owned registry; `ns` label keeps
        # sharded namespaces apart).  Cache hit/miss stay in the
        # SlaveCache's own hot-path counters and are synced into the
        # registry at snapshot time (see sync_metrics).
        reg = broker.registry
        self._c_cache_hits = reg.counter("kvs_cache_hits_total",
                                         ns=self.name)
        self._c_cache_misses = reg.counter("kvs_cache_misses_total",
                                           ns=self.name)
        self._c_cache_evict = reg.counter("kvs_cache_evictions_total",
                                          ns=self.name)
        self._c_cache_faults = reg.counter("kvs_cache_faults_total",
                                           ns=self.name)
        self._g_cached_objects = reg.gauge("kvs_cached_objects",
                                           ns=self.name)
        self._g_version = reg.gauge("kvs_version", ns=self.name)
        self._h_batch = reg.histogram("kvs_commit_batch_ops",
                                      bounds=DEFAULT_SIZE_LADDER,
                                      ns=self.name)
        self._h_fence_wait = reg.histogram("kvs_fence_wait_seconds",
                                           ns=self.name)
        # Pre-rendered process name for the per-get proc spawned on
        # every read (req_get is the hottest handler in KAP's consume
        # phase; the f-string per call showed up in profiles).
        self._getproc_name = "kvs-get[%d]" % self.rank

    def _san(self):
        """The session's sanitizer hub, or ``None`` when disabled.

        Notify points sit at protocol-visible moments (version reads,
        commit/fence acks, root switches) so the consistency checker
        observes exactly what clients can."""
        return self.broker.session.sanitizers

    def sync_metrics(self) -> None:
        st = self.cache.stats
        self._c_cache_hits.value = st.hits
        self._c_cache_misses.value = st.misses
        self._c_cache_evict.value = st.evictions
        self._c_cache_faults.value = st.faults
        self._g_cached_objects.set(float(len(self.cache)))
        self._g_version.set(float(self.version))

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.broker.subscribe(f"{self.name}.setroot", self._on_setroot_event)
        self.broker.subscribe(f"{self.name}.delegation",
                              self._on_delegation_event)
        self.broker.subscribe(f"{self.name}.newmaster",
                              self._on_newmaster_event)
        self.broker.subscribe("live.down", self._on_live_down)
        self.broker.subscribe("hb.pulse", self._on_pulse)

    def _toward_master_cb(self, topic: str, payload: dict, callback,
                          ctx: Optional[RequestContext] = None,
                          span: Optional[tuple] = None,
                          payload_size: Optional[int] = None) -> None:
        """Forward a module-chain request one hop toward the master.

        With the master at the root (the paper's layout) this follows
        the *live* parent pointer, so it keeps working after the
        overlay self-heals around a dead interior node.  Relocated
        masters — spread shard masters, or the survivor of a root
        failover — route on the static topology, detouring around
        corpses via :meth:`_live_hop_toward`.

        ``ctx`` (when forwarding on behalf of a client request) keeps
        the originating request's id/origin/deadline attached to every
        hop of the module chain.  ``payload_size`` is the payload's
        canonical byte size when the caller already knows it (computed
        compositionally from cached object sizes — see
        :meth:`_payload_size_with_objs`), sparing the broker a full
        re-serialization of potentially large object payloads.
        """
        if self.master_rank == 0 and not self._failed_over:
            if self.broker.parent is None:
                # Acting overlay root during a root-death window: there
                # is no parent to forward to.  Synthesize a retryable
                # failure instead of raising into the broker main loop;
                # the client retries once a new master is elected.
                self._unreachable(topic, callback)
                return
            self.broker.rpc_parent_cb(topic, payload, callback, ctx=ctx,
                                      span=span, payload_size=payload_size)
            return
        self._hop_rpc(self.master_rank, topic, payload, callback, ctx=ctx,
                      span=span, payload_size=payload_size)

    # ------------------------------------------------------------------
    # rank-addressed routing (delegation / replication / election)
    # ------------------------------------------------------------------
    def _unreachable(self, topic: str,
                     callback: Callable[[Message], None]) -> None:
        """Answer ``callback`` with a locally synthesized retryable
        EHOSTUNREACH response when no live next hop exists."""
        callback(Message(topic=topic, mtype=MessageType.RESPONSE,
                         payload={}, src_rank=self.rank,
                         error="no live route toward target",
                         errnum=EHOSTUNREACH, err_rank=self.rank))

    def _live_hop_toward(self, dst: int) -> Optional[int]:
        """Next live hop toward rank ``dst`` on the (healed) overlay.

        Prefers the static tree hop — on a healthy fabric this is
        byte-identical to pre-failover routing.  When the static hop is
        a corpse, descend into the live child whose static subtree
        holds ``dst`` (adoption attaches whole subtrees, so a healed
        grandchild edge covers it), else climb to the live parent;
        parents are always static ancestors, so the walk is monotone
        and cannot loop.  ``None`` when no live hop exists.
        """
        if dst == self.rank:
            return None
        session = self.broker.session
        topo = session.topology
        hop = topo.next_hop_toward(self.rank, dst)
        if session.brokers[hop].alive:
            return hop
        for child in sorted(self.broker.children):
            if child != hop and topo.is_in_subtree(dst, child):
                return child
        parent = self.broker.parent
        if parent is not None and session.brokers[parent].alive:
            return parent
        return None

    def _hop_rpc(self, dst: int, topic: str, payload: dict, callback,
                 ctx: Optional[RequestContext] = None,
                 span: Optional[tuple] = None,
                 payload_size: Optional[int] = None) -> None:
        """RPC toward rank ``dst`` one live hop at a time (handlers at
        intermediate ranks forward on a ``dst`` payload mismatch)."""
        hop = self._live_hop_toward(dst)
        if hop is None:
            self._unreachable(topic, callback)
            return
        self.broker.rpc_hop_cb(hop, topic, payload, callback, ctx=ctx,
                               span=span, payload_size=payload_size)

    def _relay_response(self, msg: Message, resp: Message) -> None:
        """Relay an upstream/peer response back to ``msg``'s source."""
        if resp.error is not None:
            self.respond(msg, error=resp.error, code=resp.errnum,
                         err_rank=resp.err_rank)
        else:
            self.respond(msg, dict(resp.payload))

    def _forwarded(self, msg: Message) -> bool:
        """Forward ``msg`` another hop when its ``dst`` is not us.
        Returns True when the message was passed on."""
        dst = msg.payload.get("dst")
        if dst is None or dst == self.rank:
            return False
        self._hop_rpc(dst, msg.topic, msg.payload,
                      lambda resp: self._relay_response(msg, resp),
                      ctx=msg.ctx, span=msg.span)
        return True

    def _owner_prefix(self, key: str) -> Optional[str]:
        """Longest delegated prefix owning ``key`` (component-wise
        match), or ``None`` when the key lives in the root namespace."""
        if not self.owners:
            return None
        k = key
        while True:
            if k in self.owners:
                return k
            i = k.rfind(".")
            if i < 0:
                return None
            k = k[:i]

    def _on_pulse(self, _msg: Message) -> None:
        if self.expiry is not None:
            self.cache.expire(self.expiry)
        # Anti-entropy gossip, active only under a chaos fault plan: a
        # lossy fabric can lose setroot events outright (the event
        # plane is fire-and-forget), so each heartbeat a slave pulls
        # its parent's root version and completed-fence digest.  Stale
        # roots and stranded fence waiters heal one tree level per
        # pulse.  Without a fault plan the fabric only drops traffic
        # addressed to dead nodes, and the live.down resync covers
        # that — no gossip traffic is generated.
        fault = self.broker.network.fault_plan is not None
        if (self.master is None and fault
                and (self.master_rank == 0 or self._failed_over)
                and (self.broker.parent is not None or self._failed_over)):
            self._resync_root()
            # Anti-entropy for in-progress fences too: re-emitting the
            # cumulative shares map is idempotent, so a pulse-period
            # re-send repairs any contribution lost on a lossy link.
            for name in list(self._fences):
                self._flush_fence(name)
        if self.replicas:
            # Replication re-drives (idempotent: streaming re-sends the
            # unacked log suffix, elections re-circulate tokens).  All
            # conditions are False in an unreplicated session.
            if self.master is not None and fault and self._repl_log:
                self._stream_replicas()
            if self._standby is not None and self._standby_buffer and fault:
                self._standby_sync()
            if self._master_down and self._standby is not None:
                self._start_election()

    # ------------------------------------------------------------------
    # master service-time queue
    # ------------------------------------------------------------------
    def _master_run(self, nops: int, apply_fn) -> None:
        """Run ``apply_fn`` on the master after its FIFO service time.

        With zero costs the function runs synchronously, preserving the
        communication-bound behaviour of the paper's evaluation.
        """
        self._h_batch.observe(float(nops))
        cost = self.master_commit_cost + self.master_op_cost * nops
        if cost <= 0 and not self._master_busy:
            apply_fn()
            return
        self._master_queue.append((cost, apply_fn))
        if not self._master_busy:
            self._master_busy = True
            self.broker.sim.spawn(self._master_worker(),
                                  name=f"{self.name}-master[{self.rank}]")

    def _master_worker(self):
        while self._master_queue:
            cost, apply_fn = self._master_queue.pop(0)
            if cost > 0:
                yield self.broker.sim.timeout(cost)
            apply_fn()
        self._master_busy = False

    # ------------------------------------------------------------------
    # root replication (semi-synchronous commit log streaming)
    # ------------------------------------------------------------------
    def _commit_replicated(self, ops: list, objs: dict,
                           fn: Callable[[int, str], None],
                           fence: Optional[str] = None) -> None:
        """Apply a root-namespace commit; run ``fn(version, rootref)``
        once it is durable.

        Without replicas that is immediately — the exact single-master
        code path, no extra bookkeeping.  With replicas the commit is
        journaled into a :class:`CommitRecord`, streamed to the
        standbys, and ``fn`` (which publishes the setroot and answers
        the client) is deferred until ``repl_ack_min`` live standbys
        acknowledged it — so an acknowledged write survives the
        master's death by construction.
        """
        if not self.replicas:
            self.master.ingest_objects(objs)
            res = self.master.commit([(k, s) for k, s in ops])
            fn(res.version, res.root_sha)
            return
        res, rec = self.master.commit_logged([(k, s) for k, s in ops],
                                             objs)
        if objs or fence is not None:
            # The journal only captures objects *new* to the store;
            # merge the flushed objects in explicitly so records stay
            # self-contained even when a value object was pre-stored
            # (e.g. by a master-rank client's put).  ``fence`` tags the
            # record so a promoted standby can seed its completed-fence
            # digest (shares-mode fences complete via plain commits).
            rec = CommitRecord(rec.version, rec.root_sha,
                               {**objs, **rec.objs}, fence)
        self._replicate(rec, lambda: fn(res.version, res.root_sha))

    def _fence_replicated(self, name: str, nprocs: int, count: int,
                          ops: list, objs: dict,
                          fn: Callable[[int, str], None]) -> bool:
        """Replication-aware :meth:`KvsMaster.fence_add`; ``fn`` fires
        (durably, as in :meth:`_commit_replicated`) only when this
        contribution completed the fence.  Returns True when the fence
        completed."""
        if not self.replicas:
            res = self.master.fence_add(name, nprocs, count,
                                        [(k, s) for k, s in ops], objs)
            if res is None:
                return False
            fn(res.version, res.root_sha)
            return True
        res, rec = self.master.fence_add_logged(
            name, nprocs, count, [(k, s) for k, s in ops], objs)
        if res is None:
            return False
        self._replicate(rec, lambda: fn(res.version, res.root_sha))
        return True

    def _replicate(self, rec: CommitRecord,
                   fn: Callable[[], None]) -> None:
        self._repl_log.append(rec)
        self._after_replicated(rec.version, fn)
        self._stream_replicas()

    def _live_replicas(self) -> list[int]:
        return [r for r in self.replicas
                if r != self.rank and self.broker.session.brokers[r].alive]

    def _ack_watermark(self) -> Optional[int]:
        """Highest version ``repl_ack_min`` live standbys have acked,
        or ``None`` when no ack is required (degraded: no live
        replicas left — proceed unreplicated rather than hang)."""
        live = self._live_replicas()
        need = min(self.repl_ack_min, len(live))
        if need <= 0:
            return None
        acks = sorted((self._repl_acks.get(r, 0) for r in live),
                      reverse=True)
        return acks[need - 1]

    def _after_replicated(self, version: int,
                          fn: Callable[[], None]) -> None:
        mark = self._ack_watermark()
        if mark is None or mark >= version:
            fn()
            return
        self._repl_waiters.append((version, fn))

    def _drain_repl_waiters(self) -> None:
        if not self._repl_waiters:
            return
        mark = self._ack_watermark()
        still: list[tuple[int, Callable[[], None]]] = []
        ready: list[tuple[int, Callable[[], None]]] = []
        for w in self._repl_waiters:
            (ready if (mark is None or mark >= w[0]) else still).append(w)
        self._repl_waiters = still
        for _v, fire in ready:      # appended in version order
            fire()

    def _stream_replicas(self) -> None:
        """Send each live standby the log suffix it has not acked.
        Idempotent (standbys drop duplicates by version), so the pulse
        re-drive under a fault plan simply calls this again."""
        if self.master is None or not self._repl_log:
            return
        live = self._live_replicas()
        if live:
            floor = min(self._repl_acks.get(r, 0) for r in live)
            while self._repl_log and self._repl_log[0].version <= floor:
                self._repl_log.pop(0)
        for r in live:
            acked = self._repl_acks.get(r, 0)
            recs = [rec.to_wire() for rec in self._repl_log
                    if rec.version > acked]
            if not recs:
                continue
            self._hop_rpc(r, f"{self.name}.replicate",
                          {"dst": r, "recs": recs},
                          lambda resp, r=r: self._on_repl_ack(r, resp))

    def _on_repl_ack(self, r: int, resp: Message) -> None:
        if resp.error is not None:
            return      # next commit / pulse re-drive re-streams
        acked = resp.payload.get("acked", 0)
        if acked > self._repl_acks.get(r, 0):
            self._repl_acks[r] = acked
            self._drain_repl_waiters()

    @request_handler(required=("recs",))
    def req_replicate(self, msg: Message) -> None:
        """Standby side: fold streamed commit records in, in version
        order (buffering gaps), and ack the contiguous watermark."""
        if self._forwarded(msg):
            return
        if self._standby is None:
            # Promoted meanwhile (or never a standby): ack at our own
            # version so the sender stops streaming to us.
            ver = self.master.version if self.master is not None else 0
            self.respond(msg, {"acked": ver})
            return
        sb = self._standby
        for wire in msg.payload["recs"]:
            rec = CommitRecord.from_wire(wire)
            if rec.version > sb.version:
                self._standby_buffer[rec.version] = rec
        while sb.version + 1 in self._standby_buffer:
            rec = self._standby_buffer.pop(sb.version + 1)
            sb.apply_record(rec)
            if rec.fence is not None:
                self._standby_completed[rec.fence] = (rec.version,
                                                      rec.root_sha)
                while len(self._standby_completed) > self.completed_cap:
                    self._standby_completed.popitem(last=False)
        for v in sorted(self._standby_buffer):
            if v <= sb.version:
                del self._standby_buffer[v]
        self.respond(msg, {"acked": sb.version})

    def _standby_sync(self) -> None:
        """Close a persistent replication gap (lost records under a
        fault plan) by pulling a full snapshot from the master."""
        now = self.broker.sim.now
        if self._repl_sync_busy and now - self._repl_sync_at < 0.25:
            return
        self._repl_sync_busy = True
        self._repl_sync_at = now
        self._hop_rpc(self.master_rank, f"{self.name}.replsync",
                      {"dst": self.master_rank}, self._on_replsync)

    def req_replsync(self, msg: Message) -> None:
        if self._forwarded(msg):
            return
        if self.master is None:
            self.respond(msg, error="not the master", code=EHOSTUNREACH)
            return
        self.respond(msg, {
            "version": self.master.version,
            "rootref": self.master.root_sha,
            "objs": self.master.reachable_objects(),
            "completed": {n: [v, r]
                          for n, (v, r) in self._completed.items()}})

    def _on_replsync(self, resp: Message) -> None:
        self._repl_sync_busy = False
        sb = self._standby
        if resp.error is not None or sb is None:
            return
        p = resp.payload
        if p["version"] > sb.version:
            for sha in sorted(p["objs"]):
                sb.store.put_with_sha(sha, p["objs"][sha])
            sb.root_sha = p["rootref"]
            sb.version = p["version"]
        for fname in sorted(p.get("completed", {})):
            ver, root = p["completed"][fname]
            self._standby_completed[fname] = (ver, root)
        for v in sorted(self._standby_buffer):
            if v <= sb.version:
                del self._standby_buffer[v]

    # ------------------------------------------------------------------
    # ring election among standbys (root failover)
    # ------------------------------------------------------------------
    def _election_ring(self) -> list[int]:
        """Live standby ranks in ascending order — the election ring.
        Deterministic at every rank (liveness is learned from the same
        totally-ordered ``live.down`` events)."""
        return [r for r in self.replicas
                if r != self.master_rank
                and self.broker.session.brokers[r].alive]

    def _start_election(self) -> None:
        """Chang–Roberts over the live standbys: each candidate
        circulates ``(version, rank)``; a token strictly better than
        the receiver's own candidacy (higher version; ties toward the
        lower rank) is forwarded, a worse one is swallowed, and a
        candidate receiving its own token back is the unique winner —
        the most-caught-up replica, which with semi-synchronous
        replication holds every acknowledged write.  Restarted on every
        heartbeat pulse while the master is down, so lost tokens under
        a fault plan only delay the election."""
        if not self._master_down or self._standby is None:
            return
        ring = self._election_ring()
        if self.rank not in ring:
            return
        self.broker._frec(self.broker.sim.now, "kvs_election",
                          self._standby.version, len(ring), None)
        tr = self.broker.session.span_tracer
        if tr is not None and self._elect_span is None:
            self._elect_span = tr.start_trace(
                "kvs_election", self.rank, ns=self.name,
                standby_version=self._standby.version)
        if len(ring) == 1:
            self._promote()
            return
        self._send_elect_token(ring, self._standby.version, self.rank)

    def _send_elect_token(self, ring: list[int], cver: int,
                          cand: int) -> None:
        succ = ring[(ring.index(self.rank) + 1) % len(ring)]
        self._hop_rpc(succ, f"{self.name}.elect",
                      {"dst": succ, "cver": cver, "cand": cand},
                      lambda resp: None)

    @request_handler(required=("cver", "cand"))
    def req_elect(self, msg: Message) -> None:
        if self._forwarded(msg):
            return
        p = msg.payload
        self.respond(msg, {})
        if self.master is not None and self._failed_over:
            # Already promoted: a circulating token means some standby
            # missed the announcement — repair it.
            self._publish_newmaster()
            return
        if self._standby is None or not self._master_down:
            return
        if p["cand"] == self.rank:
            self._promote()
            return
        ring = self._election_ring()
        if self.rank not in ring:
            return
        mine = (self._standby.version, -self.rank)
        theirs = (p["cver"], -p["cand"])
        if theirs > mine:
            self._send_elect_token(ring, p["cver"], p["cand"])
        else:
            self._send_elect_token(ring, self._standby.version, self.rank)

    def _promote(self) -> None:
        """This standby won: adopt the replicated state as the
        authoritative root-namespace master and announce it via the
        totally-ordered ``{name}.newmaster`` event."""
        if self.master is not None or self._standby is None:
            return
        reg = self.broker.registry
        reg.counter("kvs_elections_total", ns=self.name).inc()
        reg.histogram("kvs_election_seconds", ns=self.name).observe(
            self.broker.sim.now - self._master_down_at)
        self.master = self._standby
        self._standby = None
        self._standby_buffer.clear()
        self.master_rank = self.rank
        self._failed_over = True
        self._master_down = False
        self._link_sent.clear()   # the uplink peer just changed
        self.broker._frec(self.broker.sim.now, "kvs_promote",
                          self.master.version, self.rank, None)
        tr = self.broker.session.span_tracer
        if tr is not None and self._elect_span is not None:
            tr.finish(self._elect_span, winner=self.rank,
                      version=self.master.version)
            self._elect_span = None
        self._repl_log = []
        self._repl_acks = {}
        for fname in list(self._standby_completed):
            ver, root = self._standby_completed[fname]
            self._record_completed(fname, ver, root)
        self._apply_root(self.master.version, self.master.root_sha)
        self._publish_newmaster()
        # In-flight fences replay (idempotently, via the shares
        # protocol) toward the promoted master.
        self.broker.after(0.0, self._recover_shared if self._shared_mode()
                          else self._recover_after_down)

    def _publish_newmaster(self) -> None:
        self.broker.publish(f"{self.name}.newmaster",
                            {"rank": self.rank,
                             "version": self.master.version,
                             "rootref": self.master.root_sha})

    def _on_newmaster_event(self, msg: Message) -> None:
        p = msg.payload
        self._master_down = False
        if p["rank"] == self.rank:
            return
        self.master_rank = p["rank"]
        self._failed_over = True
        self._link_sent.clear()   # master-ward routing just changed
        tr = self.broker.session.span_tracer
        if tr is not None and self._elect_span is not None:
            # We lost (or never finished) the election this span
            # tracked; the announced winner closes it.
            tr.finish(self._elect_span, winner=p["rank"],
                      version=p["version"])
            self._elect_span = None
        if self.master is not None:
            # Double promotion resolved by event total order: the later
            # announcement wins everywhere; demote to a plain slave.
            self.master = None
            self.broker._frec(self.broker.sim.now, "kvs_demote",
                              p["rank"], p["version"], None)
        self._apply_root(p["version"], p["rootref"])
        self.broker.after(0.0, self._recover_shared if self._shared_mode()
                          else self._recover_after_down)

    # ------------------------------------------------------------------
    # subtree ownership delegation
    # ------------------------------------------------------------------
    def _partition_ops(self, ops: list, objs: dict
                       ) -> tuple[list, dict, dict]:
        """Split a commit into its root-namespace part and one group
        per delegated prefix: ``(root_ops, root_objs, {pfx: (ops,
        objs)})``.  Objects follow the ops that reference them (an
        object referenced from both sides travels with both)."""
        root_ops: list = []
        by_pfx: dict[str, list] = {}
        for op in ops:
            pfx = self._owner_prefix(op[0])
            if pfx is None:
                root_ops.append(op)
            else:
                by_pfx.setdefault(pfx, []).append(op)
        if not by_pfx:
            return ops, objs, {}
        used: set = set()
        groups: dict[str, tuple] = {}
        for pfx in sorted(by_pfx):
            g_ops = by_pfx[pfx]
            g_objs = {s: objs[s] for _k, s in g_ops
                      if s is not None and s in objs}
            used.update(g_objs)
            groups[pfx] = (g_ops, g_objs)
        root_shas = {s for _k, s in root_ops if s is not None}
        root_objs = {s: o for s, o in objs.items()
                     if s in root_shas or s not in used}
        return root_ops, root_objs, groups

    def _local_response(self, payload: dict) -> Message:
        """A synthesized success response for work applied locally
        (keeps locally- and remotely-routed parts on one callback
        shape)."""
        return Message(topic=f"{self.name}.flush",
                       mtype=MessageType.RESPONSE, payload=payload,
                       src_rank=self.rank)

    def _owner_flush(self, pfx: str, ops: list, objs: dict,
                     done: Callable[[Message], None],
                     ctx: Optional[RequestContext] = None,
                     span: Optional[tuple] = None) -> None:
        """Route a delegated-namespace commit part to its owner.

        Hosted here: apply on the local delegate master.  Owned
        elsewhere: ship hop-by-hop toward the owner.  No longer
        delegated (recall raced the write): fall back root-ward — the
        master re-partitions against its own table, so a stale hop
        table self-corrects.  Claimed by this rank but not yet adopted
        (delegation in flight): fail retryably.
        """
        dm = self.delegates.get(pfx)
        if dm is not None:
            def apply():
                dm.ingest_objects(objs)
                res = dm.commit([(k, s) for k, s in ops])
                self._cv_owner_commits.inc((self.name, self.rank))
                ns = f"{self.name}/{pfx}"
                seen = self._pfx_seen.get(pfx, -1)
                if res.version > seen:
                    self._pfx_seen[pfx] = res.version
                san = self._san()
                if san is not None:
                    san.kvs_root_applied(ns, self.rank, res.version)
                    san.kvs_commit_ack(ns, self.rank, res.version)
                self._publish_setroot(res.version, res.root_sha,
                                      span=span, pfx=pfx)
                done(self._local_response({"version": res.version,
                                           "rootref": res.root_sha,
                                           "pfx": pfx}))
            self._master_run(len(ops), apply)
            return
        owner = self.owners.get(pfx)
        if owner is None:
            # Recalled (or never delegated as far as this rank knows):
            # the keys belong to the root namespace again.
            self._root_part_commit(ops, objs, done, ctx=ctx, span=span)
            return
        if owner == self.rank:
            done(Message(topic=f"{self.name}.flush",
                         mtype=MessageType.RESPONSE, payload={},
                         src_rank=self.rank,
                         error=f"delegation of {pfx!r} in flight",
                         errnum=EIO, err_rank=self.rank))
            return
        payload = {"ops": ops, "objs": objs, "pfx": pfx, "dst": owner}
        self._hop_rpc(owner, f"{self.name}.flush", payload, done,
                      ctx=ctx, span=span,
                      payload_size=self._payload_size_with_objs(payload,
                                                                objs))

    def _root_part_commit(self, ops: list, objs: dict,
                          done: Callable[[Message], None],
                          ctx: Optional[RequestContext] = None,
                          span: Optional[tuple] = None) -> None:
        """Commit the root-namespace part of a partitioned commit —
        locally when this rank is the master, else forwarded."""
        if self.master is not None:
            def apply():
                def fin(version, rootref):
                    self._apply_root(version, rootref)
                    self._publish_setroot(version, rootref, span=span)
                    done(self._local_response({"version": version,
                                               "rootref": rootref}))
                self._commit_replicated(ops, objs, fin)
            self._master_run(len(ops), apply)
            return

        def relay(resp: Message) -> None:
            if resp.error is None:
                self._apply_root(resp.payload["version"],
                                 resp.payload["rootref"])
            done(resp)

        self._forward_flush(ops, objs, relay, ctx=ctx, span=span)

    def _commit_partitioned(self, msg: Message, sender: Any,
                            root_ops: list, root_objs: dict,
                            groups: dict, *,
                            ack_here: bool = True) -> None:
        """Run a partitioned commit: the root part plus one delegated
        part per owner, all concurrently; answer ``msg`` once every
        part settled.  ``sender`` (when this rank fronts the client)
        re-stashes the whole batch on a retryable failure so the
        client's retry re-flushes it.  ``ack_here`` notifies the
        consistency sanitizers — True at the client-facing rank, False
        when relaying a downstream flush (the origin acks)."""
        state: dict[str, Any] = {"left": 1 + len(groups), "error": None,
                                 "version": self.version,
                                 "rootref": self.root_sha,
                                 "subroots": {}}
        all_ops = list(root_ops)
        all_objs = dict(root_objs)
        for pfx in sorted(groups):
            all_ops.extend(groups[pfx][0])
            all_objs.update(groups[pfx][1])

        def finish() -> None:
            err = state["error"]
            if err is not None:
                if (sender is not None and err.errnum in RETRYABLE_CODES
                        and (all_ops or all_objs)):
                    self._restash(sender, all_ops, all_objs)
                self.respond(msg, error=err.error, code=err.errnum,
                             err_rank=err.err_rank)
                return
            if ack_here:
                san = self._san()
                if san is not None:
                    san.kvs_commit_ack(self.name, self.rank,
                                       state["version"])
                    for pfx in sorted(state["subroots"]):
                        pver = state["subroots"][pfx][0]
                        san.kvs_commit_ack(f"{self.name}/{pfx}",
                                           self.rank, pver)
            out = {"version": state["version"],
                   "rootref": state["rootref"]}
            if state["subroots"]:
                out["subroots"] = state["subroots"]
            self.respond(msg, out)

        def part_done(pfx: Optional[str], resp: Message) -> None:
            state["left"] -= 1
            if resp.error is not None:
                if state["error"] is None:
                    state["error"] = resp
            elif pfx is None:
                state["version"] = resp.payload["version"]
                state["rootref"] = resp.payload["rootref"]
            else:
                state["subroots"][pfx] = [resp.payload["version"],
                                          resp.payload["rootref"]]
            if state["left"] == 0:
                finish()

        if root_ops or root_objs or not groups:
            self._root_part_commit(root_ops, root_objs,
                                   lambda resp: part_done(None, resp),
                                   ctx=msg.ctx, span=msg.span)
        else:
            # Wholly-delegated batch: don't serialize an empty commit
            # through the root master (that serialization is what
            # delegation exists to relieve); answer with the root
            # state as locally applied.
            state["left"] -= 1
        for pfx in sorted(groups):
            g_ops, g_objs = groups[pfx]
            self._owner_flush(pfx, g_ops, g_objs,
                              lambda resp, p=pfx: part_done(p, resp),
                              ctx=msg.ctx, span=msg.span)

    # -- fence completions with delegated parts -------------------------
    def _fence_ship_delegated(self, name: str, groups: dict) -> None:
        """Ship a fence's delegated op groups to their owners; the
        fence's completion (setroot publish + release) defers until
        every part is acknowledged, so a fence ack implies the whole
        collective write — delegated parts included — is readable."""
        for pfx in sorted(groups):
            g_ops, g_objs = groups[pfx]
            self._fence_deleg_pending[name] = (
                self._fence_deleg_pending.get(name, 0) + 1)
            self._fence_part_flush(name, pfx, g_ops, g_objs)

    def _fence_part_flush(self, name: str, pfx: str, ops: list,
                          objs: dict) -> None:
        def shipped(resp: Message) -> None:
            if (resp.error is not None
                    and resp.errnum in RETRYABLE_CODES):
                self.broker.after(
                    5e-3,
                    lambda: self._fence_part_flush(name, pfx, ops, objs))
                return
            self._fence_part_done(name)
        self._owner_flush(pfx, ops, objs, shipped)

    def _fence_part_done(self, name: str) -> None:
        left = self._fence_deleg_pending.get(name, 0) - 1
        if left > 0:
            self._fence_deleg_pending[name] = left
            return
        self._fence_deleg_pending.pop(name, None)
        fire = self._fence_deferred.pop(name, None)
        if fire is not None:
            fire()

    def _fence_finish_when_shipped(self, name: str,
                                   finish: Callable[[], None]) -> None:
        if self._fence_deleg_pending.get(name):
            self._fence_deferred[name] = finish
        else:
            finish()

    # -- delegation / recall RPCs ---------------------------------------
    @request_handler(required=("pfx", "rank"))
    def req_delegate(self, msg: Message) -> None:
        """Delegate the subtree at ``pfx`` to broker ``rank``: snapshot
        it out of the root tree, ship it to the new owner, bind a link
        object in its place, and announce the new ownership on the
        (totally ordered) event plane."""
        if self.master is None:
            self._toward_master_cb(
                f"{self.name}.delegate", dict(msg.payload),
                lambda resp: self._relay_response(msg, resp),
                ctx=msg.ctx, span=msg.span)
            return
        pfx = msg.payload["pfx"]
        rank = msg.payload["rank"]
        try:
            split_key(pfx)
        except KvsPathError as exc:
            self.respond(msg, error=str(exc), code=exc.code)
            return
        if pfx in self.owners:
            self.respond(msg, error=f"{pfx!r} is already delegated",
                         code=EEXIST)
            return
        if rank == self.master_rank:
            self.respond(msg, error="cannot delegate to the master rank",
                         code=EINVAL)
            return
        sub = self.master.subtree_ref(pfx)
        if sub is None:
            # Delegating a namespace that does not exist yet (the
            # common job.<id> case): the owner starts from empty.
            sub = EMPTY_DIR_SHA
        # Claim the prefix immediately: writes arriving between the
        # snapshot below and the delegation event must not land in the
        # root tree (they would be overwritten by the link object) —
        # they bounce retryably until the owner has adopted.
        self.owners[pfx] = rank
        self._hop_rpc(rank, f"{self.name}.adopt",
                      {"dst": rank, "pfx": pfx,
                       "ver": self.master.version, "rootref": sub,
                       "objs": self.master.reachable_objects(sub)},
                      lambda resp: self._delegate_adopted(msg, pfx, rank,
                                                          resp),
                      ctx=msg.ctx, span=msg.span)

    def _delegate_adopted(self, msg: Message, pfx: str, rank: int,
                          resp: Message) -> None:
        if resp.error is not None:
            if self.owners.get(pfx) == rank:
                del self.owners[pfx]
            self.respond(msg, error=resp.error, code=resp.errnum,
                         err_rank=resp.err_rank)
            return
        link = make_link_obj(pfx, rank)
        sha, _size = digest_and_size(link)

        def apply():
            def fin(version, rootref):
                self._apply_root(version, rootref)
                self._publish_setroot(version, rootref, span=msg.span)
                self.broker.publish(f"{self.name}.delegation",
                                    {"pfx": pfx, "rank": rank})
                self.respond(msg, {"pfx": pfx, "rank": rank,
                                   "version": version})
            self._commit_replicated([[pfx, sha]], {sha: link}, fin)

        self._master_run(1, apply)

    @request_handler(required=("pfx", "ver", "rootref", "objs"))
    def req_adopt(self, msg: Message) -> None:
        """New-owner side of delegation: seed a delegate master from
        the shipped subtree snapshot (idempotent on retry)."""
        if self._forwarded(msg):
            return
        p = msg.payload
        pfx = p["pfx"]
        dm = self.delegates.get(pfx)
        if dm is None:
            dm = KvsMaster(start_version=p["ver"])
            for sha in sorted(p["objs"]):
                dm.store.put_with_sha(sha, p["objs"][sha])
            dm.commit([(pfx, p["rootref"])])
            self.delegates[pfx] = dm
            self.owners[pfx] = self.rank
        self.respond(msg, {"pfx": pfx, "version": dm.version})

    @request_handler(required=("pfx",))
    def req_recall(self, msg: Message) -> None:
        """Recall a delegated subtree: pull the owner's state back,
        graft it over the link object, and retire the ownership entry
        on the event plane."""
        if self.master is None:
            self._toward_master_cb(
                f"{self.name}.recall", dict(msg.payload),
                lambda resp: self._relay_response(msg, resp),
                ctx=msg.ctx, span=msg.span)
            return
        pfx = msg.payload["pfx"]
        rank = self.owners.get(pfx)
        if rank is None:
            self.respond(msg, error=f"{pfx!r} is not delegated",
                         code=ENOENT)
            return
        self._hop_rpc(rank, f"{self.name}.release",
                      {"dst": rank, "pfx": pfx},
                      lambda resp: self._recall_released(msg, pfx, rank,
                                                         resp),
                      ctx=msg.ctx, span=msg.span)

    @request_handler(required=("pfx",))
    def req_release(self, msg: Message) -> None:
        """Owner side of recall: stop mastering the namespace and hand
        the subtree state back.  The ownership entry stays until the
        delegation event clears it everywhere at once — in-flight
        writes keep bouncing retryably instead of looping root-ward."""
        if self._forwarded(msg):
            return
        pfx = msg.payload["pfx"]
        dm = self.delegates.pop(pfx, None)
        if dm is None:
            self.respond(msg, error=f"not the owner of {pfx!r}",
                         code=ENOENT)
            return
        sub = dm.subtree_ref(pfx)
        if sub is None:
            sub = EMPTY_DIR_SHA
        self.respond(msg, {"pfx": pfx, "ver": dm.version,
                           "rootref": sub,
                           "objs": dm.reachable_objects(sub)})

    def _recall_released(self, msg: Message, pfx: str, rank: int,
                         resp: Message) -> None:
        if resp.error is not None:
            self.respond(msg, error=resp.error, code=resp.errnum,
                         err_rank=resp.err_rank)
            return
        p = resp.payload

        def apply():
            def fin(version, rootref):
                self._apply_root(version, rootref)
                self._publish_setroot(version, rootref, span=msg.span)
                self.broker.publish(f"{self.name}.delegation",
                                    {"pfx": pfx, "rank": None})
                self.respond(msg, {"pfx": pfx, "version": version})
            self._commit_replicated([[pfx, p["rootref"]]], p["objs"],
                                    fin)

        self._master_run(1, apply)

    def req_owners(self, msg: Message) -> None:
        """The ownership table as this rank sees it (introspection)."""
        self.respond(msg, {"owners": dict(sorted(self.owners.items())),
                           "hosted": sorted(self.delegates)})

    def _on_delegation_event(self, msg: Message) -> None:
        p = msg.payload
        if p.get("rank") is None:
            self.owners.pop(p["pfx"], None)
        else:
            self.owners[p["pfx"]] = p["rank"]

    # -- delegated reads ------------------------------------------------
    def _serve_delegated_get(self, msg: Message, pfx: str,
                             dm: KvsMaster) -> None:
        """Answer a get from the local delegate master (authoritative
        for the namespace, so no fault-in chain is needed)."""
        key = msg.payload["key"]
        san = self._san()
        if san is not None:
            san.kvs_read(f"{self.name}/{pfx}", self.rank, dm.version)
        try:
            sha = lookup_ref(dm.store, dm.root_sha, key)
        except KvsPathError as exc:
            self.respond(msg, error=str(exc), code=exc.code)
            return
        if msg.payload.get("ref", False):
            self.respond(msg, {"ref": sha, "pver": dm.version})
            return
        obj = dm.store.get(sha)
        if obj is None:
            self.respond(msg, error=f"unknown object {sha}",
                         code=ENOENT)
            return
        if is_dir_obj(obj):
            self.respond(msg, {"dir": sorted(dir_entries(obj)),
                               "pver": dm.version})
        else:
            self.respond(msg, {"value": val_of(obj),
                               "pver": dm.version})

    def _remote_get(self, msg: Message, pfx: str, owner: int) -> None:
        payload = dict(msg.payload)
        payload["dst"] = owner
        self._hop_rpc(owner, f"{self.name}.get", payload,
                      lambda resp: self._finish_remote_get(msg, pfx,
                                                           resp),
                      ctx=msg.ctx, span=msg.span)

    def _finish_remote_get(self, msg: Message, pfx: str,
                           resp: Message) -> None:
        if resp.error is not None:
            self.respond(msg, error=resp.error, code=resp.errnum,
                         err_rank=resp.err_rank)
            return
        pver = resp.payload.get("pver")
        if pver is not None and pver >= self._pfx_seen.get(pfx, -1):
            # Only a version at or above everything this rank already
            # observed for the prefix counts as *the* read the client
            # sees; a response overtaken in flight would otherwise be
            # reported as a monotonicity regression it is not.
            self._pfx_seen[pfx] = pver
            san = self._san()
            if san is not None:
                san.kvs_read(f"{self.name}/{pfx}", self.rank, pver)
        self.respond(msg, dict(resp.payload))

    def _forward_link_get(self, msg: Message, obj: dict) -> None:
        """A hash-tree walk landed on an ownership link object:
        re-route the whole lookup to the owning rank."""
        tgt = link_of(obj)
        pfx, owner = tgt["prefix"], tgt["rank"]
        if owner == self.rank:
            dm = self.delegates.get(pfx)
            if dm is not None:
                self._serve_delegated_get(msg, pfx, dm)
                return
            self.respond(msg, error=f"delegation of {pfx!r} in flight",
                         code=EIO, err_rank=self.rank)
            return
        self._remote_get(msg, pfx, owner)

    # ------------------------------------------------------------------
    # local object plumbing
    # ------------------------------------------------------------------
    def _obj_get(self, sha: str) -> Optional[dict]:
        if self.master is not None:
            return self.master.store.get(sha)
        return self.cache.get(sha)

    def _obj_put(self, sha: str, obj: dict, *, pin: bool = False,
                 size: Optional[int] = None) -> None:
        if self.master is not None:
            self.master.store.put_with_sha(sha, obj, size=size)
        else:
            self.cache.insert(sha, obj, pin=pin, size=size)

    def _obj_size(self, sha: str, obj: dict) -> int:
        """Canonical byte size of ``obj``, via the local store's size
        cache when it holds ``sha`` (the common case — every sized
        payload references objects this rank just stored)."""
        if self.master is not None:
            size = self.master.store.size_of(sha)
        else:
            size = self.cache.size_of(sha)
        if size is None:
            size = canonical_size(obj)
        return size

    def _payload_size_with_objs(self, payload: dict, objs: dict) -> int:
        """Canonical size of ``payload`` (which maps ``"objs"`` to
        ``objs``) computed *compositionally*: serialize the frame once
        with the objs dict emptied, then add each object's cached size
        plus its fixed per-entry framing (a quoted 40-hex sha, a colon,
        and an inter-entry comma).  Canonical-JSON sizes are additive,
        so this equals ``canonical_size(payload)`` exactly — asserted
        by the equivalence tests — while touching each stored object's
        bytes zero times.
        """
        total = canonical_size({**payload, "objs": {}})
        for sha, obj in objs.items():
            total += 43 + self._obj_size(sha, obj)
        if objs:
            total += len(objs) - 1
        return total

    def _dirty_for(self, sender: Any) -> _Dirty:
        d = self._dirty.get(sender)
        if d is None:
            d = self._dirty[sender] = _Dirty()
        return d

    # ------------------------------------------------------------------
    # put / unlink (write-back)
    # ------------------------------------------------------------------
    @request_handler(required=("key", "value"))
    def req_put(self, msg: Message) -> None:
        key = msg.payload["key"]
        value = msg.payload["value"]
        sender = msg.payload.get("sender", 0)
        try:
            split_key(key)
        except KvsPathError as exc:
            self.respond(msg, error=str(exc), code=exc.code)
            return
        obj = make_val_obj(value)
        # Keyed digest memo: KAP's redundant-value mode stores the same
        # string from every producer — one serialization covers all.
        sha, size = digest_and_size(
            obj, key=("v", value) if isinstance(value, str) else None)
        self._obj_put(sha, obj, pin=True, size=size)
        d = self._dirty_for(sender)
        d.ops.append([key, sha])
        d.objs[sha] = obj
        self.respond(msg, {"sha": sha})

    @request_handler(required=("key",))
    def req_unlink(self, msg: Message) -> None:
        key = msg.payload["key"]
        sender = msg.payload.get("sender", 0)
        self._dirty_for(sender).ops.append([key, None])
        self.respond(msg, {})

    # ------------------------------------------------------------------
    # in-broker API (other comms modules writing through the KVS,
    # e.g. wexec stdout capture and resvc resource enumeration)
    # ------------------------------------------------------------------
    def local_put(self, sender: Any, key: str, value: Any) -> str:
        """Write-back a value on behalf of an in-broker service; returns
        the value object's SHA1."""
        obj = make_val_obj(value)
        sha, size = digest_and_size(
            obj, key=("v", value) if isinstance(value, str) else None)
        self._obj_put(sha, obj, pin=True, size=size)
        d = self._dirty_for(sender)
        d.ops.append([key, sha])
        d.objs[sha] = obj
        return sha

    def local_commit(self, sender: Any,
                     callback: Optional[Callable[[int, str], None]] = None
                     ) -> None:
        """Commit an in-broker service's dirty data; ``callback(version,
        rootref)`` fires after the new root is applied locally."""
        d = self._dirty.pop(sender, None)
        ops = d.ops if d else []
        objs = d.objs if d else {}
        if self.owners:
            # In-broker services write the root namespace; should their
            # keys be delegated anyway, ship those parts to the owner
            # (fire-and-forget — the callback tracks the root part).
            ops, objs, groups = self._partition_ops(ops, objs)
            for pfx in sorted(groups):
                g_ops, g_objs = groups[pfx]
                self._owner_flush(pfx, g_ops, g_objs, lambda resp: None)
        if self.master is not None:
            def apply():
                def fin(version, rootref):
                    self._apply_root(version, rootref)
                    self._publish_setroot(version, rootref)
                    if callback is not None:
                        callback(version, rootref)
                self._commit_replicated(ops, objs, fin)
            self._master_run(len(ops), apply)
            return

        def done(resp: Message) -> None:
            if resp.error is None:
                self._apply_root(resp.payload["version"],
                                 resp.payload["rootref"])
                if callback is not None:
                    callback(resp.payload["version"],
                             resp.payload["rootref"])
            elif resp.errnum in RETRYABLE_CODES and (ops or objs):
                # Transient upstream failure: the data must not vanish
                # with the lost flush.  Re-stash and retry once the
                # overlay has had a heartbeat to heal.
                self._restash(sender, ops, objs)
                self.broker.after(5e-3,
                                  lambda: self.local_commit(sender, callback))

        self._forward_flush(ops, objs, done)

    # ------------------------------------------------------------------
    # commit (single-client flush)
    # ------------------------------------------------------------------
    def req_commit(self, msg: Message) -> None:
        sender = msg.payload.get("sender", 0)
        d = self._dirty.pop(sender, None)
        ops = d.ops if d else []
        objs = d.objs if d else {}
        if self.owners:
            root_ops, root_objs, groups = self._partition_ops(ops, objs)
            if groups:
                self._commit_partitioned(msg, sender, root_ops, root_objs,
                                         groups)
                return
        if self.master is not None:
            def apply():
                def fin(version, rootref):
                    self._apply_root(version, rootref)
                    self._publish_setroot(version, rootref, span=msg.span)
                    san = self._san()
                    if san is not None:
                        san.kvs_commit_ack(self.name, self.rank, version)
                    self.respond(msg, {"version": version,
                                       "rootref": rootref})
                self._commit_replicated(ops, objs, fin)
            self._master_run(len(ops), apply)
            return
        self._forward_flush(
            ops, objs,
            lambda resp: self._finish_commit(msg, resp, sender, ops, objs),
            ctx=msg.ctx, span=msg.span)

    def _restash(self, sender: Any, ops: list, objs: dict) -> None:
        """Return a failed flush's data to the dirty cache (ahead of any
        newer writes, preserving order) so the next commit re-sends it."""
        d = self._dirty_for(sender)
        d.ops[:0] = ops
        for sha, obj in objs.items():
            d.objs.setdefault(sha, obj)

    def _finish_commit(self, msg: Message, resp: Message,
                       sender: Any = None, ops: Optional[list] = None,
                       objs: Optional[dict] = None) -> None:
        if resp.error is not None:
            # A transiently failed flush took the popped dirty data with
            # it; re-stash so the client's retry commit re-flushes it
            # through the healed route instead of committing nothing.
            if resp.errnum in RETRYABLE_CODES and (ops or objs):
                self._restash(sender, ops, objs)
            self.respond(msg, error=resp.error, code=resp.errnum,
                         err_rank=resp.err_rank)
            return
        # Read-your-writes: apply the commit's root before answering.
        self._apply_root(resp.payload["version"], resp.payload["rootref"])
        san = self._san()
        if san is not None:
            san.kvs_commit_ack(self.name, self.rank,
                               resp.payload["version"])
            for pfx in sorted(resp.payload.get("subroots", {})):
                # Parts committed on delegate masters upstream: raise
                # this rank's write floor per delegated namespace too.
                san.kvs_commit_ack(f"{self.name}/{pfx}", self.rank,
                                   resp.payload["subroots"][pfx][0])
        self.respond(msg, dict(resp.payload))

    def _forward_flush(self, ops: list, objs: dict,
                       callback: Callable[[Message], None],
                       ctx: Optional[RequestContext] = None,
                       span: Optional[tuple] = None) -> None:
        self._send_objs(f"{self.name}.flush", {"ops": ops}, objs,
                        callback, ctx=ctx, span=span)

    def _uplink_peer(self) -> Optional[int]:
        """The next-hop rank the master-ward path currently uses
        (mirrors :meth:`_toward_master_cb`'s routing), or ``None``."""
        if self.master_rank == 0 and not self._failed_over:
            return self.broker.parent
        return self._live_hop_toward(self.master_rank)

    def _send_objs(self, topic: str, payload: dict, objs: dict, callback,
                   *, ctx: Optional[RequestContext] = None,
                   span: Optional[tuple] = None) -> None:
        """Send an objs-carrying payload toward the master.

        In dedup mode each distinct object crosses a given uplink once:
        objects the per-link filter says the peer has already been sent
        travel as sha references (``"orefs"``) instead of bodies.  The
        filter is purely an optimization — a receiver missing any
        referenced object (filter gone stale across reroute, failover
        or an epoch bump) rejects with a retryable ``{"missing": [...]}``
        error and the payload is re-sent in full — so no chaos path can
        ever lose an object to it.
        """
        if not self.dedup or not objs:
            body = {**payload, "objs": objs}
            self._toward_master_cb(
                topic, body, callback, ctx=ctx, span=span,
                payload_size=self._payload_size_with_objs(body, objs))
            return
        peer = self._uplink_peer()
        sent = self._link_sent.setdefault(peer, set()) \
            if peer is not None else set()
        known = objs.keys() & sent
        sent.update(objs)
        if not known:
            body = {**payload, "objs": objs}
            self._toward_master_cb(
                topic, body, callback, ctx=ctx, span=span,
                payload_size=self._payload_size_with_objs(body, objs))
            return
        new = {s: o for s, o in objs.items() if s not in known}
        body = {**payload, "objs": new, "orefs": sorted(known)}
        full = {**payload, "objs": objs}
        full_size = self._payload_size_with_objs(full, objs)
        body_size = self._payload_size_with_objs(body, new)

        def cb(resp: Message) -> None:
            if resp.error is not None and "missing" in (resp.payload
                                                        or {}):
                # The receiver lacks a referenced object: re-send the
                # whole thing.  (No savings are recorded on this path.)
                self._toward_master_cb(topic, full, callback, ctx=ctx,
                                       span=span, payload_size=full_size)
                return
            if resp.error is None and full_size > body_size:
                self._cv_interned.inc((self.name, "link"),
                                      full_size - body_size)
            callback(resp)

        self._toward_master_cb(topic, body, cb, ctx=ctx, span=span,
                               payload_size=body_size)

    def _resolve_orefs(self, msg: Message) -> Optional[dict]:
        """Resolve an inbound payload's ``"orefs"`` from the local
        store.  Returns ``{sha: obj}`` (empty when there were none); on
        any miss, rejects the request with a retryable error naming the
        missing shas — the sender re-sends in full — and returns
        ``None`` (the caller must not have touched any state yet)."""
        refs = msg.payload.get("orefs")
        if not refs:
            return {}
        out: dict = {}
        missing: list = []
        for sha in refs:
            obj = self._obj_get(sha)
            if obj is None:
                missing.append(sha)
            else:
                out[sha] = obj
        if missing:
            self.respond(msg, {"missing": missing},
                         error="unknown object references", code=EAGAIN)
            return None
        return out

    def interned_bytes_saved(self) -> int:
        """Total bytes of work the interning/dedup machinery avoided at
        this rank (all kinds — see the counter's init comment)."""
        return sum(self._cv_interned.data.values())

    @request_handler(required=("ops", "objs"))
    def req_flush(self, msg: Message) -> None:
        """A commit passing through from a downstream slave."""
        ops = msg.payload["ops"]
        objs = msg.payload["objs"]
        resolved = self._resolve_orefs(msg)
        if resolved is None:
            return
        if resolved:
            # Referenced objects rejoin the payload before any further
            # relay/commit: downstream of this link they are plain
            # objects again (the next hop runs its own filter).
            objs = {**objs, **resolved}
        pfx = msg.payload.get("pfx")
        if pfx is not None:
            # Delegated-namespace commit part en route to its owner
            # (the ``pfx``/``dst`` tags only ever appear once a
            # delegation exists — plain flushes are byte-identical).
            self._owner_flush(pfx, ops, objs,
                              lambda resp: self._relay_response(msg, resp),
                              ctx=msg.ctx, span=msg.span)
            return
        # Replicated masters skip the eager store insert: the commit
        # journal must capture every object the record needs, and the
        # journal only sees objects *new* to the store.
        if self.master is None or not self.replicas:
            for sha, obj in objs.items():
                self._obj_put(sha, obj)
        if self.master is not None:
            if self.owners:
                root_ops, root_objs, groups = self._partition_ops(ops,
                                                                  objs)
                if groups:
                    # Delegated keys reached the root (stale table
                    # downstream): never fold them into the root tree —
                    # that would overwrite the link objects.  Re-split
                    # and ship each part to its owner.
                    self._commit_partitioned(msg, None, root_ops,
                                             root_objs, groups,
                                             ack_here=False)
                    return

            def apply():
                def fin(version, rootref):
                    self._apply_root(version, rootref)
                    self._publish_setroot(version, rootref, span=msg.span)
                    self.respond(msg, {"version": version,
                                       "rootref": rootref})
                self._commit_replicated(ops, objs, fin)
            self._master_run(len(ops), apply)
            return
        self._forward_flush(ops, objs,
                            lambda resp: self._relay_flush(msg, resp),
                            ctx=msg.ctx, span=msg.span)

    def _relay_flush(self, msg: Message, resp: Message) -> None:
        if resp.error is not None:
            self.respond(msg, error=resp.error, code=resp.errnum,
                         err_rank=resp.err_rank)
            return
        self._apply_root(resp.payload["version"], resp.payload["rootref"])
        self.respond(msg, dict(resp.payload))

    # ------------------------------------------------------------------
    # fence (collective commit with tree reduction)
    # ------------------------------------------------------------------
    def _fence_for(self, name: str, nprocs: int) -> _FenceAgg:
        agg = self._fences.get(name)
        if agg is None:
            agg = self._fences[name] = _FenceAgg(
                name, nprocs, created_version=self.version)
        return agg

    @request_handler(required=("name", "nprocs"))
    def req_fence(self, msg: Message) -> None:
        """A local client entering a fence (carries its dirty state)."""
        name = msg.payload["name"]
        nprocs = msg.payload["nprocs"]
        sender = msg.payload.get("sender", 0)
        d = self._dirty.pop(sender, None)
        agg = self._fence_for(name, nprocs)
        agg.held.append(msg)
        if d is not None:
            agg.ops.extend(d.ops)
            agg.local_ops.extend(d.ops)
            for op in d.ops:
                agg.ops_size += canonical_size(op)
            for sha, obj in d.objs.items():
                agg.objs[sha] = obj
                agg.local_objs[sha] = obj
        agg.count += 1
        agg.total_seen += 1
        agg.local_count += 1
        self.broker._frec(self.broker.sim.now, "kvs_fence_enter",
                          name, sender, agg.total_seen)
        if msg.span is not None:
            agg.span = msg.span
        self._maybe_flush_fence(agg)

    @request_handler(required=("name", "nprocs"))
    def req_fencedata(self, msg: Message) -> None:
        """A child subtree's aggregated fence contribution.

        Two wire formats share this topic: the legacy *incremental*
        one (``count``/``ops`` deltas, used on a loss-free fabric) and
        the idempotent *shares* one (full per-origin cumulative map,
        used while a fault plan is installed — see ``_FenceAgg``).
        """
        p = msg.payload
        if "shares" in p:
            self._merge_fence_shares(msg, p)
            return
        if p.get("fepoch", 0) < self.fence_epoch:
            # Contribution from before the last failure: the sender
            # will re-emit its cumulative local state under the new
            # epoch, so folding this one in would double-count.
            self.respond(msg, {})
            return
        # Resolve sha references *before* folding anything in: a
        # missing reference rejects the whole message (the sender
        # re-sends in full), so a rejected contribution must leave the
        # aggregate untouched or the retry would double-count.
        resolved = self._resolve_orefs(msg)
        if resolved is None:
            return
        agg = self._fence_for(p["name"], p["nprocs"])
        agg.count += p["count"]
        agg.total_seen += p["count"]
        if msg.span is not None:
            agg.span = msg.span
        child_ops = p["ops"]
        agg.ops.extend(child_ops)
        if child_ops:
            # One intern probe replaces the O(len) re-walk of the
            # child's aggregate: the sender interned the flushed list
            # with its exact size, and in-process delivery shares the
            # object, so the probe hits at every tree level.
            csize = interned_size(child_ops)
            if csize is not None:
                self._cv_interned.inc((self.name, "sizing"), csize)
            else:
                csize = canonical_size(child_ops)
            agg.ops_size += csize - 1 - len(child_ops)
        for sha, obj in p["objs"].items():
            agg.objs[sha] = obj      # union by SHA1: redundancy reduces
            self._obj_put(sha, obj)
        for sha, obj in resolved.items():
            agg.objs[sha] = obj
        self.respond(msg, {})
        self._maybe_flush_fence(agg)

    def _merge_fence_shares(self, msg: Message, p: dict) -> None:
        """Fold a shares-mode contribution in (idempotent merge)."""
        name = p["name"]
        if name in self._completed:
            # Late re-emission for a fence already committed: the
            # sender learns the outcome via setroot/gossip; folding it
            # back in could re-create (and re-commit) the fence.
            self.respond(msg, {})
            return
        resolved = self._resolve_orefs(msg)
        if resolved is None:
            return
        agg = self._fence_for(name, p["nprocs"])
        if msg.span is not None:
            agg.span = msg.span
        for sha, obj in resolved.items():
            agg.objs[sha] = obj
        changed = False
        for origin_s, share in p["shares"].items():
            origin = int(origin_s)
            if origin == self.rank:
                continue            # our own share is authoritative here
            cur = agg.shares.get(origin)
            if cur is None or share[0] > cur[0]:
                agg.shares[origin] = [share[0], list(share[1])]
                changed = True
        for sha, obj in p["objs"].items():
            agg.objs[sha] = obj
            self._obj_put(sha, obj)
        self.respond(msg, {})
        if changed:
            self._flush_fence(agg.name)

    def _shared_mode(self) -> bool:
        """True while a fault plan is installed: fence traffic then
        uses the idempotent shares protocol (safe under loss and
        duplication) instead of the legacy incremental one, whose wire
        payloads stay byte-identical for fault-free runs."""
        return self.broker.network.fault_plan is not None

    def _maybe_flush_fence(self, agg: _FenceAgg) -> None:
        """Flush the aggregate upstream when complete — or after the
        aggregation window, so fences joined by only a subset of the
        subtree's clients (e.g. two jobs sharing a session) still make
        progress."""
        if self._shared_mode():
            self._flush_fence(agg.name)
            return
        expected = self.broker.session.subtree_procs(self.rank)
        if self.master_rank == 0 and agg.total_seen >= min(expected,
                                                           agg.nprocs):
            # Fast path (master at the root, whole session fencing):
            # the root-ward aggregation matches the subtree counts.
            self._flush_fence(agg.name)
        elif not agg.timer_armed:
            agg.timer_armed = True
            self.broker.after(self.fence_window,
                              lambda: self._fence_timer(agg.name))

    def _fence_timer(self, name: str) -> None:
        agg = self._fences.get(name)
        if agg is None:
            return
        agg.timer_armed = False
        self._flush_fence(name)

    def _flush_fence(self, name: str) -> None:
        agg = self._fences.get(name)
        if agg is None:
            return
        if self._shared_mode():
            self._flush_fence_shared(agg)
            return
        if agg.count == 0:
            return
        count, agg.count = agg.count, 0
        ops, agg.ops = agg.ops, []
        objs, agg.objs = agg.objs, {}
        ops_size, agg.ops_size = agg.ops_size, 0
        if self.master is not None:
            groups: dict = {}
            if self.owners:
                ops, objs, groups = self._partition_ops(ops, objs)

            def apply():
                def fin(version, rootref):
                    def finish():
                        self._record_completed(agg.name, version,
                                               rootref)
                        self._apply_root(version, rootref)
                        self._publish_setroot(version, rootref,
                                              fence=agg.name,
                                              span=agg.span)
                        self._release_fence(agg)
                    self._fence_finish_when_shipped(agg.name, finish)
                self._fence_replicated(agg.name, agg.nprocs, count, ops,
                                       objs, fin)

            if groups:
                self._fence_ship_delegated(agg.name, groups)
            self._master_run(len(ops), apply)
            return
        payload = {"name": agg.name, "nprocs": agg.nprocs, "count": count,
                   "ops": ops}
        if self.fence_epoch > 0:
            # Tag only after a failure: fault-free payloads (and hence
            # wire sizes/latencies) stay byte-identical.
            payload["fepoch"] = self.fence_epoch
        if ops:
            # The flushed list is frozen from here on: intern it with
            # its incrementally maintained exact size, so this hop's
            # frame sizing — and the parent's fold-in — are each one
            # probe instead of an O(len) re-walk.
            total = 1 + len(ops) + ops_size
            intern_fragment(ops, total)
            if interned_size(ops) is not None:
                self._cv_interned.inc((self.name, "sizing"), total)
        self._send_objs(f"{self.name}.fencedata", payload, objs,
                        lambda resp: None, span=agg.span)
        # Held client fences answer when the fence's setroot arrives.

    def _flush_fence_shared(self, agg: _FenceAgg) -> None:
        """Shares-mode flush: send (or, at the master, evaluate) the
        full merged per-origin map.  Nothing is cleared — the map is
        cumulative, so this is safe to call arbitrarily often."""
        if agg.local_count > 0:
            agg.shares[self.rank] = [agg.local_count,
                                     list(agg.local_ops)]
        if not agg.shares:
            return
        if self.master is not None:
            self._maybe_complete_shared(agg)
            return
        objs = {**agg.objs, **agg.local_objs}
        payload = {"name": agg.name, "nprocs": agg.nprocs,
                   "shares": {str(o): [s[0], s[1]]
                              for o, s in agg.shares.items()}}
        self._send_objs(f"{self.name}.fencedata", payload, objs,
                        lambda resp: None, span=agg.span)

    def _maybe_complete_shared(self, agg: _FenceAgg) -> None:
        """Commit a shares-mode fence once every participant's share
        has arrived (counts are disjoint per origin, so the sum is
        exact no matter how often shares were re-sent)."""
        if agg.completing:
            return
        if sum(s[0] for s in agg.shares.values()) < agg.nprocs:
            return
        agg.completing = True
        ops = []
        for origin in sorted(agg.shares):
            ops.extend((k, s) for k, s in agg.shares[origin][1])
        objs = {**agg.objs, **agg.local_objs}
        groups: dict = {}
        if self.owners:
            ops, objs, groups = self._partition_ops(ops, objs)

        def apply():
            if agg.name in self._completed:
                return

            def fin(version, rootref):
                def finish():
                    self._record_completed(agg.name, version, rootref)
                    self._apply_root(version, rootref)
                    self._publish_setroot(version, rootref,
                                          fence=agg.name, span=agg.span)
                    self._release_fence(agg)
                self._fence_finish_when_shipped(agg.name, finish)

            self._commit_replicated(ops, objs, fin, fence=agg.name)

        if groups:
            self._fence_ship_delegated(agg.name, groups)
        self._master_run(len(ops), apply)

    def _release_fence(self, agg: _FenceAgg) -> None:
        self._fences.pop(agg.name, None)
        now = self.broker.sim.now
        san = self._san()
        if san is not None and agg.held:
            san.kvs_commit_ack(self.name, self.rank, self.version)
        for held in agg.held:
            t0 = getattr(held, "_obs_t0", None)
            if t0 is not None:
                self._h_fence_wait.observe(now - t0)
            self.respond(held, {"version": self.version,
                                "rootref": self.root_sha})

    def _record_completed(self, name: str, version: int,
                          root_sha: str) -> None:
        self.broker._frec(self.broker.sim.now, "kvs_commit",
                          name, version, None)
        self._completed[name] = (version, root_sha)
        self._completed.move_to_end(name)
        while len(self._completed) > self.completed_cap:
            self._completed.popitem(last=False)

    def waiter_census(self) -> dict:
        """Who is stuck on what at this rank — the KVS section of a
        post-mortem bundle (see ``repro.obs.postmortem``)."""
        return {
            "version": self.version,
            "master_rank": self.master_rank,
            "is_master": self.master is not None,
            "master_down": self._master_down,
            "version_waiters": sorted(w for w, _m in
                                      self._version_waiters),
            "fences": {name: {"nprocs": agg.nprocs,
                              "count": agg.count,
                              "total_seen": agg.total_seen,
                              "held": len(agg.held),
                              "created_version": agg.created_version}
                       for name, agg in sorted(self._fences.items())},
            "repl_waiters": sorted(v for v, _fn in self._repl_waiters),
            "fence_deferred": sorted(self._fence_deferred),
            "dirty_clients": len(self._dirty),
            "dirty_ops": sum(len(d.ops) for d in self._dirty.values()),
        }

    # ------------------------------------------------------------------
    # failure recovery (chaos tentpole)
    # ------------------------------------------------------------------
    def _on_live_down(self, msg: Message) -> None:
        """A broker died.  Bump the fence epoch *now* (event total
        order ⇒ every live rank lands on the same epoch, and ancestors
        bump before their descendants' re-emissions can arrive), but
        defer the state recovery one tick: this module subscribed to
        ``live.down`` before the live module did, so the broker has not
        re-wired around the corpse yet when we run.

        In shares mode (fault plan installed) there is nothing to
        reset: the merged per-origin map is idempotent, so recovery is
        simply "re-send everything over the healed route".
        """
        dead = msg.payload.get("rank")
        if dead == self.master_rank and self.master is None:
            # The root-namespace master died.  Standbys elect; everyone
            # else marks the master down (writes bounce retryably until
            # the ``newmaster`` event re-routes them).
            self._master_down = True
            self._master_down_at = self.broker.sim.now
            if self._standby is not None:
                self.broker.after(0.0, self._start_election)
        elif self.master is not None and self.replicas:
            # A standby may have died: recompute the ack watermark so
            # commits waiting on it are not stranded.
            self.broker.after(0.0, self._drain_repl_waiters)
        # Topology just changed: every per-link "already sent" filter
        # is suspect (the uplink may heal to a different peer).  Clear
        # them all — worst case the next send re-ships some objects.
        self._link_sent.clear()
        if self._shared_mode():
            self.broker.after(0.0, self._recover_shared)
            return
        self.fence_epoch += 1
        self.broker.after(0.0, self._recover_after_down)

    def _recover_shared(self) -> None:
        for name in list(self._fences):
            self._flush_fence(name)
        if self.master is None and (self.master_rank == 0
                                    or self._failed_over):
            self._resync_root()

    def _recover_after_down(self) -> None:
        """Re-establish KVS invariants on the healed overlay.

        - The master resets incomplete fence accumulators; every rank
          then re-contributes its *cumulative local* fence state under
          the new epoch.  Local shares are disjoint, so the re-reduction
          sums exactly; in-flight pre-failure aggregates are discarded
          by the receivers' epoch check.
        - Slaves pull their (possibly new) parent's root version and
          completed-fence digest: setroot events flooding through the
          corpse at the moment of death are lost for its whole former
          subtree, and a lost fence-completion notice would strand held
          waiters forever.
        """
        if self.master is not None:
            self.master.reset_incomplete_fences()
        for name, agg in list(self._fences.items()):
            agg.count = agg.local_count
            agg.ops = list(agg.local_ops)
            agg.objs = dict(agg.local_objs)
            agg.total_seen = agg.local_count
            agg.ops_size = (canonical_size(agg.ops) - 1 - len(agg.ops)
                            if agg.ops else 0)
            if agg.count > 0:
                self._flush_fence(name)
        if self.master is None and (self.master_rank == 0
                                    or self._failed_over):
            self._resync_root()

    def _resync_root(self) -> None:
        """Pull the parent's root + completed-fence digest (one level
        of anti-entropy; chained pulses converge the whole tree)."""
        now = self.broker.sim.now
        if self.master is not None or (self.broker.parent is None
                                       and not self._failed_over):
            return
        if self._sync_busy and now - self._sync_at < 0.25:
            # A sync is outstanding — but never trust the busy flag
            # forever: if the request or its response was lost after
            # the broker gave up retransmitting, the callback never
            # fires, and a stuck flag would silence gossip for good.
            return
        self._sync_busy = True
        self._sync_at = now

        def done(resp: Message) -> None:
            self._sync_busy = False
            if resp.error is None:
                self._ingest_sync(resp.payload)

        self._toward_master_cb(f"{self.name}.getroot", {"fences": True},
                               done)

    def _ingest_sync(self, p: dict) -> None:
        self.fence_epoch = max(self.fence_epoch, p.get("fepoch", 0))
        if p.get("version", 0) > self.version:
            self._local_setroot_event(p["version"], p["rootref"])
        for name in sorted(p.get("completed", {})):
            ver, root = p["completed"][name]
            self._record_completed(name, ver, root)
            agg = self._fences.get(name)
            if agg is not None and ver > agg.created_version:
                # We missed this fence's completion notice: replay it.
                self._local_setroot_event(ver, root, fence=name)

    def _local_setroot_event(self, version: int, root_sha: str,
                             fence: Optional[str] = None) -> None:
        """Synthesize a local ``setroot`` delivery for state learned by
        resync instead of the event plane, so every local subscriber —
        including client watchers — observes the same transition it
        would have seen had the flooded event not been lost."""
        payload: dict[str, Any] = {"version": version, "rootref": root_sha}
        if fence is not None:
            payload["fence"] = fence
        self.broker._deliver_event(
            Message(topic=f"{self.name}.setroot", mtype=MessageType.EVENT,
                    payload=payload, src_rank=self.rank))

    # ------------------------------------------------------------------
    # root-version protocol
    # ------------------------------------------------------------------
    def _publish_setroot(self, version: int, root_sha: str,
                         fence: Optional[str] = None,
                         span: Optional[tuple] = None,
                         pfx: Optional[str] = None) -> None:
        payload = {"version": version, "rootref": root_sha}
        if fence is not None:
            payload["fence"] = fence
        if pfx is not None:
            # A delegated namespace's root moved (published by its
            # owner, observability + span-tree completeness); never
            # present in a single-master session.
            payload["pfx"] = pfx
        self.broker.publish(f"{self.name}.setroot", payload, span=span)

    def _apply_root(self, version: int, root_sha: str) -> None:
        """Monotonic root switch: never apply an older version."""
        if version <= self.version:
            return
        self.broker._frec(self.broker.sim.now, "kvs_apply_root",
                          version, self.version, None)
        self.version = version
        self.root_sha = root_sha
        san = self._san()
        if san is not None:
            san.kvs_root_applied(self.name, self.rank, version)
        still = []
        for wanted, held in self._version_waiters:
            if self.version >= wanted:
                self.respond(held, {"version": self.version})
            else:
                still.append((wanted, held))
        self._version_waiters = still

    def _on_setroot_event(self, msg: Message) -> None:
        p = msg.payload
        if "pfx" in p:
            # Delegated-namespace root move: does not touch the root
            # namespace's version/ref and releases nothing here.
            return
        self._apply_root(p["version"], p["rootref"])
        fence = p.get("fence")
        if fence is not None:
            self._record_completed(fence, p["version"], p["rootref"])
            agg = self._fences.get(fence)
            if agg is not None and p["version"] > agg.created_version:
                # The master completed the fence: every contribution
                # (including any this node held) was accounted for.
                # The version guard keeps a late/replayed completion
                # notice for a *previous* fence of the same name (KAP
                # re-fences every iteration) from releasing this one.
                self._release_fence(agg)

    def req_getversion(self, msg: Message) -> None:
        san = self._san()
        if san is not None:
            san.kvs_read(self.name, self.rank, self.version)
        self.respond(msg, {"version": self.version})

    @request_handler(required=("version",))
    def req_waitversion(self, msg: Message) -> None:
        wanted = msg.payload["version"]
        if self.version >= wanted:
            san = self._san()
            if san is not None:
                san.kvs_read(self.name, self.rank, self.version)
            self.respond(msg, {"version": self.version})
        else:
            self._version_waiters.append((wanted, msg))

    def req_getroot(self, msg: Message) -> None:
        san = self._san()
        if san is not None:
            san.kvs_read(self.name, self.rank, self.version)
        out: dict[str, Any] = {"version": self.version,
                               "rootref": self.root_sha}
        if msg.payload.get("fences"):
            # Anti-entropy digest for a resyncing child: which fences
            # completed recently (and at what version), plus our fence
            # epoch so a revived rank can catch its epoch counter up.
            out["completed"] = {n: [v, r]
                                for n, (v, r) in self._completed.items()}
            out["fepoch"] = self.fence_epoch
        self.respond(msg, out)

    # ------------------------------------------------------------------
    # get (with fault-in through the slave-cache chain)
    # ------------------------------------------------------------------
    @request_handler(required=("key",))
    def req_get(self, msg: Message) -> None:
        if self.owners:
            if self._forwarded(msg):
                return
            pfx = self._owner_prefix(msg.payload["key"])
            if pfx is not None:
                dm = self.delegates.get(pfx)
                if dm is not None:
                    self._serve_delegated_get(msg, pfx, dm)
                    return
                owner = self.owners[pfx]
                if owner != self.rank:
                    self._remote_get(msg, pfx, owner)
                    return
                self.respond(msg,
                             error=f"delegation of {pfx!r} in flight",
                             code=EIO, err_rank=self.rank)
                return
        self.broker.sim.spawn(self._get_proc(msg),
                              name=self._getproc_name)

    def _get_proc(self, msg: Message, allow_walk: bool = True):
        key = msg.payload["key"]
        want_ref = msg.payload.get("ref", False)
        root = self.root_sha
        try:
            parts = split_key(key)
        except KvsPathError as exc:
            self.respond(msg, error=str(exc), code=exc.code)
            return
        sha = root
        obj = None
        try:
            for i, part in enumerate(parts):
                obj = self._obj_get(sha)
                if obj is None:
                    if self.dedup and allow_walk and self.master is None:
                        # Dedup-mode cold read: ship the walk to the
                        # data instead of faulting whole directories
                        # down the tree (the Figure 4a effect).
                        self._walk_remote(msg, key, want_ref, root, sha)
                        return
                    obj = yield self._fault(sha, ctx=msg.ctx,
                                            span=msg.span)
                if obj is None:
                    raise KvsPathError(f"object {sha} lost in transit",
                                       code=EIO)
                if is_link_obj(obj):
                    # Ownership link: the rest of the walk belongs to
                    # a delegated namespace (this rank's owner table
                    # was stale, or the key was read through the root
                    # tree) — re-route to the owner.
                    self._forward_link_get(msg, obj)
                    return
                if not is_dir_obj(obj):
                    raise KvsPathError(
                        f"{'.'.join(parts[:i])!r} is not a directory")
                entries = dir_entries(obj)
                if part not in entries:
                    raise KvsPathError(f"key {key!r} not found",
                                       code=ENOENT)
                sha = entries[part]
            if want_ref:
                self.respond(msg, {"ref": sha})
                return
            obj = self._obj_get(sha)
            if obj is None:
                if self.dedup and allow_walk and self.master is None:
                    self._walk_remote(msg, key, want_ref, root, sha)
                    return
                obj = yield self._fault(sha, ctx=msg.ctx, span=msg.span)
            if obj is None:
                raise KvsPathError(f"object {sha} lost in transit",
                                   code=EIO)
            if is_link_obj(obj):
                self._forward_link_get(msg, obj)
                return
            if is_dir_obj(obj):
                self.respond(msg, {"dir": sorted(dir_entries(obj))})
            else:
                # {"value": X} is 10 framing bytes + size(X); the value
                # object {"v": X} is 6 + size(X), so the response costs
                # the stored object's cached size + 4 — no per-get
                # re-serialization of the value.
                self.respond(msg, {"value": val_of(obj)},
                             payload_size=4 + self._obj_size(sha, obj))
        except KvsPathError as exc:
            self.respond(msg, error=str(exc), code=exc.code)

    def _fault(self, sha: str, ctx: Optional[RequestContext] = None,
               span: Optional[tuple] = None):
        """Fault ``sha`` in from the tree parent; in-flight loads for
        the same object are coalesced.  Returns an event yielding the
        object (or None on failure)."""
        ev = self.broker.sim.event(name=("fault:%s", sha[:8]))
        waiters = self._loads.get(sha)
        if waiters is not None:
            waiters.append(lambda obj: ev.succeed(obj))
            return ev
        self._loads[sha] = [lambda obj: ev.succeed(obj)]
        self.cache.stats.faults += 1
        self._toward_master_cb(f"{self.name}.load", {"sha": sha},
                               lambda resp: self._fault_done(sha, resp),
                               ctx=ctx, span=span)
        return ev

    def _fault_done(self, sha: str, resp: Message) -> None:
        obj = None
        if resp.error is None:
            obj = resp.payload.get("obj")
            if obj is not None:
                # The load response was sized for the wire as
                # header + 8 + size(obj); recover the object's size
                # from the message's size cache so every caching rank
                # along the fault-in chain skips re-serializing it.
                wire = resp._size_cache
                self._obj_put(sha, obj,
                              size=(wire - HEADER_BYTES - 8
                                    if wire is not None else None))
        for fn in self._loads.pop(sha, []):
            fn(obj)

    @request_handler(required=("sha",))
    def req_load(self, msg: Message) -> None:
        """A downstream slave faulting an object through us."""
        sha = msg.payload["sha"]
        obj = self._obj_get(sha)
        if obj is not None:
            # {"obj": X} costs 8 framing bytes plus X's canonical size,
            # which the store already knows — no re-serialization of a
            # possibly huge directory object per fault-in hop.
            self.respond(msg, {"obj": obj},
                         payload_size=8 + self._obj_size(sha, obj))
            return
        if self.master is not None:
            self.respond(msg, error=f"unknown object {sha}", code=ENOENT)
            return
        waiters = self._loads.get(sha)

        def relay(obj):
            if obj is not None:
                self.respond(msg, {"obj": obj},
                             payload_size=8 + self._obj_size(sha, obj))
            else:
                self.respond(msg, error=f"unknown object {sha}",
                             code=ENOENT)

        if waiters is not None:
            waiters.append(relay)
            return
        self._loads[sha] = [relay]
        self.cache.stats.faults += 1
        self._toward_master_cb(f"{self.name}.load", {"sha": sha},
                               lambda resp: self._fault_done(sha, resp),
                               ctx=msg.ctx, span=msg.span)

    # ------------------------------------------------------------------
    # remote walks (dedup mode)
    # ------------------------------------------------------------------
    def _walk_remote(self, msg: Message, key: str, want_ref: bool,
                     root: str, trigger: str) -> None:
        """Resolve a cold read by shipping the *walk* master-ward
        instead of faulting every directory on the path into this
        rank's cache.  The response's ``"sv"`` reports the directory
        bytes the resolver traversed on our behalf — bytes that, under
        the legacy protocol, would have crossed every tree edge between
        here and the resolver exactly once (``_fault`` coalescing), so
        they are charged to the "walk" savings counter once per
        distinct trigger sha."""
        self._cv_walks.inc((self.name,))
        payload = {"key": key, "root": root}
        if want_ref:
            payload["ref"] = True

        def done(resp: Message) -> None:
            if resp.error is not None:
                self.respond(msg, error=resp.error, code=resp.errnum,
                             err_rank=resp.err_rank)
                return
            p = resp.payload
            if p.get("link"):
                # The walk crossed into a delegated namespace; the
                # legacy fault-in path re-routes through link objects.
                self.broker.sim.spawn(self._get_proc(msg, False),
                                      name=self._getproc_name)
                return
            sv = p.get("sv", 0)
            if sv and trigger not in self._walk_seen:
                self._walk_seen.add(trigger)
                self._cv_interned.inc((self.name, "walk"), sv)
            if "ref" in p:
                self.respond(msg, {"ref": p["ref"]})
            elif "dir" in p:
                self.respond(msg, {"dir": p["dir"]})
            else:
                if "sha" in p:
                    # Cache the terminal value object (the legacy path
                    # would have), so repeat gets stay local.
                    self._obj_put(p["sha"], make_val_obj(p["value"]))
                self.respond(msg, {"value": p["value"]})

        self._toward_master_cb(f"{self.name}.walk", payload, done,
                               ctx=msg.ctx, span=msg.span)

    @request_handler(required=("key", "root"))
    def req_walk(self, msg: Message) -> None:
        """Resolve a full key walk on behalf of a downstream rank
        (dedup mode).  The request carries the requester's root
        snapshot, so this is the same pure hash-tree lookup the
        requester would have performed — identical read semantics,
        minus the directory fault-ins.  A rank missing any object on
        the path forwards the walk another hop toward the master."""
        p = msg.payload
        key, root = p["key"], p["root"]
        try:
            parts = split_key(key)
        except KvsPathError as exc:
            self.respond(msg, error=str(exc), code=exc.code)
            return
        sha = root
        traversed = 0
        for i, part in enumerate(parts):
            obj = self._obj_get(sha)
            if obj is None:
                self._forward_walk(msg, sha)
                return
            if is_link_obj(obj):
                self.respond(msg, {"link": True, "sv": traversed})
                return
            if not is_dir_obj(obj):
                self.respond(
                    msg,
                    error=f"{'.'.join(parts[:i])!r} is not a directory",
                    code=EINVAL)
                return
            traversed += self._obj_size(sha, obj)
            entries = dir_entries(obj)
            if part not in entries:
                self.respond(msg, error=f"key {key!r} not found",
                             code=ENOENT)
                return
            sha = entries[part]
        if p.get("ref"):
            self.respond(msg, {"ref": sha, "sv": traversed})
            return
        obj = self._obj_get(sha)
        if obj is None:
            self._forward_walk(msg, sha)
            return
        if is_link_obj(obj):
            self.respond(msg, {"link": True, "sv": traversed})
        elif is_dir_obj(obj):
            self.respond(msg, {"dir": sorted(dir_entries(obj)),
                               "sv": traversed})
        else:
            self.respond(msg, {"value": val_of(obj), "sha": sha,
                               "sv": traversed})

    def _forward_walk(self, msg: Message, sha: str) -> None:
        if self.master is not None:
            self.respond(msg, error=f"unknown object {sha}", code=ENOENT)
            return
        self._toward_master_cb(
            f"{self.name}.walk", dict(msg.payload),
            lambda resp: self._relay_response(msg, resp),
            ctx=msg.ctx, span=msg.span)

    # ------------------------------------------------------------------
    # debugging / administration
    # ------------------------------------------------------------------
    def req_stats(self, msg: Message) -> None:
        self.respond(msg, {
            "rank": self.rank,
            "version": self.version,
            "cache": self.cache.stats.as_dict(),
            "cached_objects": len(self.cache),
            "is_master": self.master is not None,
        })

    def req_dropcache(self, msg: Message) -> None:
        """Evict every unpinned cache entry (admin/testing hook)."""
        n = self.cache.expire(-1.0)
        self.respond(msg, {"evicted": n})
