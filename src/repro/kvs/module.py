"""The ``kvs`` comms module: master at the root, caching slaves below.

Implements the full Section IV-B protocol:

- **put** — write-back: the value object is hashed and cached locally;
  the (key, SHA1) tuple is parked per client pending commit.
- **commit** — flushes a client's dirty tuples/objects upstream hop by
  hop (each slave on the path caches what passes through) to the
  master, which applies them and answers with the new root reference;
  each hop — and finally the client's slave — applies that root before
  responding, giving read-your-writes consistency.
- **fence** — the collective commit.  Each slave waits for the fence
  contributions of its *entire subtree* (local clients plus one
  aggregate per child), merges them — content objects union by SHA1,
  so redundant values reduce; (key, SHA1) tuples concatenate, which is
  why Figure 3's redundant case still falls short of logarithmic —
  and forwards a single combined contribution to its parent.  The
  master applies the completed fence and multicasts the new root.
  When only a subset of a subtree's clients joins a fence, a short
  aggregation window flushes partial aggregates upstream so the root
  still reaches the ``nprocs`` total.
- **get** — resolves hash-tree paths against the currently applied
  root; objects missing from the slave cache are faulted in from the
  tree parent, recursively up to the master.  Whole objects transfer,
  so a small value inside a huge directory drags the whole directory
  through every cache on the path (the Figure 4a effect).
- **setroot events** — the master publishes each new root reference on
  the event plane; slaves apply versions monotonically, release
  ``wait_version`` waiters, and complete held fences.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Optional

from ..cmb.errors import EIO, ENOENT, RETRYABLE_CODES
from ..cmb.message import (HEADER_BYTES, Message, MessageType,
                           RequestContext)
from ..cmb.module import CommsModule, request_handler
from ..obs import DEFAULT_SIZE_LADDER
from ..jsonutil import canonical_size, digest_and_size
from .cache import SlaveCache
from .master import KvsMaster
from .store import (EMPTY_DIR_SHA, dir_entries, is_dir_obj, make_val_obj,
                    val_of)
from .hashtree import KvsPathError, split_key

__all__ = ["KvsModule"]


class _Dirty:
    """Per-client uncommitted state (write-back buffer)."""

    __slots__ = ("ops", "objs")

    def __init__(self):
        self.ops: list[list] = []           # [key, sha|None] pairs
        self.objs: dict[str, dict] = {}     # sha -> object


class _FenceAgg:
    """Per-name fence aggregation at one slave.

    ``count``/``ops``/``objs`` hold contributions not yet flushed
    upstream; ``total_seen`` counts everything that ever arrived (the
    fast-path trigger: flush as soon as the whole subtree has
    contributed).  When only a subset of the subtree participates in a
    fence (e.g. two jobs sharing a session), a window timer flushes
    partial aggregates so the root can still complete the fence.

    ``local_count``/``local_ops``/``local_objs`` additionally keep the
    *cumulative* contributions of this rank's own clients (never
    cleared by upstream flushes): after an overlay failure resets the
    fence epoch, every rank re-emits exactly its local share, and the
    re-aggregation sums to the true total because local shares are
    disjoint.  ``created_version`` guards against a stale completion
    notice for a previous fence of the same name releasing this one.

    ``shares`` drives the *idempotent* wire mode used while a fault
    plan is installed (lossy fabric): ``shares[origin]`` is the
    ``[count, ops]`` cumulative contribution of rank ``origin``'s own
    clients, merged monotonically (larger count wins) like a G-counter.
    Re-emitting the full merged map is always safe — duplicates and
    arbitrary re-orderings cannot double-count — so lost messages are
    repaired by simply re-sending on every heartbeat pulse, with no
    epoch bookkeeping that could itself be lost.
    """

    __slots__ = ("name", "nprocs", "count", "ops", "objs", "held",
                 "total_seen", "timer_armed", "local_count", "local_ops",
                 "local_objs", "created_version", "shares", "completing",
                 "span")

    def __init__(self, name: str, nprocs: int, created_version: int = 0):
        self.name = name
        self.nprocs = nprocs
        self.count = 0
        self.ops: list[list] = []
        self.objs: dict[str, dict] = {}
        self.held: list[Message] = []       # local client fence requests
        self.total_seen = 0
        self.timer_armed = False
        self.local_count = 0
        self.local_ops: list[list] = []
        self.local_objs: dict[str, dict] = {}
        self.created_version = created_version
        self.shares: dict[int, list] = {}
        self.completing = False
        #: Tracing context of the latest contribution folded in: the
        #: upstream flush (and the completing setroot publish) parent
        #: under it, keeping the whole fence inside one span tree.
        self.span = None


class KvsModule(CommsModule):
    """Distributed KVS service (see module docstring).

    Config
    ------
    expiry:
        Cache-disuse expiry in simulated seconds, applied on each
        ``hb.pulse`` event when the heartbeat module is loaded
        (``None`` disables expiry — the default).
    """

    name = "kvs"

    def __init__(self, broker, *, expiry: Optional[float] = None,
                 fence_window: float = 1e-4, name: str = "kvs",
                 master_rank: int = 0, master_commit_cost: float = 0.0,
                 master_op_cost: float = 0.0):
        self.name = name  # instance override: sharded namespaces load
        # several KvsModule instances under distinct topic heads.
        super().__init__(broker, expiry=expiry, fence_window=fence_window,
                         name=name, master_rank=master_rank,
                         master_commit_cost=master_commit_cost,
                         master_op_cost=master_op_cost)
        self.expiry = expiry
        #: Aggregation window for partial fence flushes (seconds): how
        #: long a slave waits for more subtree contributions before
        #: forwarding an incomplete aggregate upstream.
        self.fence_window = fence_window
        #: Which session rank hosts this namespace's master.  The paper
        #: places it at the tree root; the distributed-master extension
        #: (its stated future work) spreads shard masters across ranks.
        self.master_rank = master_rank
        #: Master service-time model: a commit occupies the master for
        #: ``master_commit_cost + master_op_cost * len(ops)`` simulated
        #: seconds, serialized FIFO.  Defaults to zero (the paper's
        #: evaluation is communication-bound); the distributed-master
        #: ablation sets realistic costs to expose the serialization.
        self.master_commit_cost = master_commit_cost
        self.master_op_cost = master_op_cost
        self._master_queue: list = []
        self._master_busy = False
        self.cache = SlaveCache(lambda: broker.sim.now)
        self.master: Optional[KvsMaster] = (
            KvsMaster() if broker.rank == master_rank else None)
        self.root_sha: str = EMPTY_DIR_SHA
        self.version: int = 0
        self._dirty: dict[Any, _Dirty] = {}
        self._fences: dict[str, _FenceAgg] = {}
        self._loads: dict[str, list[Callable[[Optional[dict]], None]]] = {}
        self._version_waiters: list[tuple[int, Message]] = []
        #: Fence epoch: bumped on every ``live.down`` event.  The event
        #: plane's total order makes the count identical at every live
        #: rank, so tagging re-emitted fence contributions with the
        #: epoch lets receivers drop stale in-flight duplicates from
        #: before the failure (double-count prevention).  Stays 0 in a
        #: failure-free run, in which case it is omitted from payloads
        #: entirely (wire sizes unchanged).
        self.fence_epoch = 0
        #: Recently completed fences (name -> (version, root sha)),
        #: a bounded LRU gossiped to children so a fence-completion
        #: setroot event lost in transit cannot strand held waiters.
        self._completed: "OrderedDict[str, tuple[int, str]]" = OrderedDict()
        self.completed_cap = 64
        self._sync_busy = False
        self._sync_at = -1.0
        # Registry instruments (broker-owned registry; `ns` label keeps
        # sharded namespaces apart).  Cache hit/miss stay in the
        # SlaveCache's own hot-path counters and are synced into the
        # registry at snapshot time (see sync_metrics).
        reg = broker.registry
        self._c_cache_hits = reg.counter("kvs_cache_hits_total",
                                         ns=self.name)
        self._c_cache_misses = reg.counter("kvs_cache_misses_total",
                                           ns=self.name)
        self._c_cache_evict = reg.counter("kvs_cache_evictions_total",
                                          ns=self.name)
        self._c_cache_faults = reg.counter("kvs_cache_faults_total",
                                           ns=self.name)
        self._g_cached_objects = reg.gauge("kvs_cached_objects",
                                           ns=self.name)
        self._g_version = reg.gauge("kvs_version", ns=self.name)
        self._h_batch = reg.histogram("kvs_commit_batch_ops",
                                      bounds=DEFAULT_SIZE_LADDER,
                                      ns=self.name)
        self._h_fence_wait = reg.histogram("kvs_fence_wait_seconds",
                                           ns=self.name)
        # Pre-rendered process name for the per-get proc spawned on
        # every read (req_get is the hottest handler in KAP's consume
        # phase; the f-string per call showed up in profiles).
        self._getproc_name = "kvs-get[%d]" % self.rank

    def _san(self):
        """The session's sanitizer hub, or ``None`` when disabled.

        Notify points sit at protocol-visible moments (version reads,
        commit/fence acks, root switches) so the consistency checker
        observes exactly what clients can."""
        return self.broker.session.sanitizers

    def sync_metrics(self) -> None:
        st = self.cache.stats
        self._c_cache_hits.value = st.hits
        self._c_cache_misses.value = st.misses
        self._c_cache_evict.value = st.evictions
        self._c_cache_faults.value = st.faults
        self._g_cached_objects.set(float(len(self.cache)))
        self._g_version.set(float(self.version))

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.broker.subscribe(f"{self.name}.setroot", self._on_setroot_event)
        self.broker.subscribe("live.down", self._on_live_down)
        self.broker.subscribe("hb.pulse", self._on_pulse)

    def _toward_master_cb(self, topic: str, payload: dict, callback,
                          ctx: Optional[RequestContext] = None,
                          span: Optional[tuple] = None,
                          payload_size: Optional[int] = None) -> None:
        """Forward a module-chain request one hop toward the master.

        With the master at the root (the paper's layout) this follows
        the *live* parent pointer, so it keeps working after the
        overlay self-heals around a dead interior node.  Relocated
        shard masters (the distributed-master extension) route on the
        static topology; healing around failures on those paths is out
        of scope, as root-path fault tolerance was in the paper.

        ``ctx`` (when forwarding on behalf of a client request) keeps
        the originating request's id/origin/deadline attached to every
        hop of the module chain.  ``payload_size`` is the payload's
        canonical byte size when the caller already knows it (computed
        compositionally from cached object sizes — see
        :meth:`_payload_size_with_objs`), sparing the broker a full
        re-serialization of potentially large object payloads.
        """
        if self.master_rank == 0:
            self.broker.rpc_parent_cb(topic, payload, callback, ctx=ctx,
                                      span=span, payload_size=payload_size)
            return
        hop = self.broker.session.topology.next_hop_toward(
            self.rank, self.master_rank)
        self.broker.rpc_hop_cb(hop, topic, payload, callback, ctx=ctx,
                               span=span, payload_size=payload_size)

    def _on_pulse(self, _msg: Message) -> None:
        if self.expiry is not None:
            self.cache.expire(self.expiry)
        # Anti-entropy gossip, active only under a chaos fault plan: a
        # lossy fabric can lose setroot events outright (the event
        # plane is fire-and-forget), so each heartbeat a slave pulls
        # its parent's root version and completed-fence digest.  Stale
        # roots and stranded fence waiters heal one tree level per
        # pulse.  Without a fault plan the fabric only drops traffic
        # addressed to dead nodes, and the live.down resync covers
        # that — no gossip traffic is generated.
        if (self.master is None and self.master_rank == 0
                and self.broker.network.fault_plan is not None
                and self.broker.parent is not None):
            self._resync_root()
            # Anti-entropy for in-progress fences too: re-emitting the
            # cumulative shares map is idempotent, so a pulse-period
            # re-send repairs any contribution lost on a lossy link.
            for name in list(self._fences):
                self._flush_fence(name)

    # ------------------------------------------------------------------
    # master service-time queue
    # ------------------------------------------------------------------
    def _master_run(self, nops: int, apply_fn) -> None:
        """Run ``apply_fn`` on the master after its FIFO service time.

        With zero costs the function runs synchronously, preserving the
        communication-bound behaviour of the paper's evaluation.
        """
        self._h_batch.observe(float(nops))
        cost = self.master_commit_cost + self.master_op_cost * nops
        if cost <= 0 and not self._master_busy:
            apply_fn()
            return
        self._master_queue.append((cost, apply_fn))
        if not self._master_busy:
            self._master_busy = True
            self.broker.sim.spawn(self._master_worker(),
                                  name=f"{self.name}-master[{self.rank}]")

    def _master_worker(self):
        while self._master_queue:
            cost, apply_fn = self._master_queue.pop(0)
            if cost > 0:
                yield self.broker.sim.timeout(cost)
            apply_fn()
        self._master_busy = False

    # ------------------------------------------------------------------
    # local object plumbing
    # ------------------------------------------------------------------
    def _obj_get(self, sha: str) -> Optional[dict]:
        if self.master is not None:
            return self.master.store.get(sha)
        return self.cache.get(sha)

    def _obj_put(self, sha: str, obj: dict, *, pin: bool = False,
                 size: Optional[int] = None) -> None:
        if self.master is not None:
            self.master.store.put_with_sha(sha, obj, size=size)
        else:
            self.cache.insert(sha, obj, pin=pin, size=size)

    def _obj_size(self, sha: str, obj: dict) -> int:
        """Canonical byte size of ``obj``, via the local store's size
        cache when it holds ``sha`` (the common case — every sized
        payload references objects this rank just stored)."""
        if self.master is not None:
            size = self.master.store.size_of(sha)
        else:
            size = self.cache.size_of(sha)
        if size is None:
            size = canonical_size(obj)
        return size

    def _payload_size_with_objs(self, payload: dict, objs: dict) -> int:
        """Canonical size of ``payload`` (which maps ``"objs"`` to
        ``objs``) computed *compositionally*: serialize the frame once
        with the objs dict emptied, then add each object's cached size
        plus its fixed per-entry framing (a quoted 40-hex sha, a colon,
        and an inter-entry comma).  Canonical-JSON sizes are additive,
        so this equals ``canonical_size(payload)`` exactly — asserted
        by the equivalence tests — while touching each stored object's
        bytes zero times.
        """
        total = canonical_size({**payload, "objs": {}})
        for sha, obj in objs.items():
            total += 43 + self._obj_size(sha, obj)
        if objs:
            total += len(objs) - 1
        return total

    def _dirty_for(self, sender: Any) -> _Dirty:
        d = self._dirty.get(sender)
        if d is None:
            d = self._dirty[sender] = _Dirty()
        return d

    # ------------------------------------------------------------------
    # put / unlink (write-back)
    # ------------------------------------------------------------------
    @request_handler(required=("key", "value"))
    def req_put(self, msg: Message) -> None:
        key = msg.payload["key"]
        value = msg.payload["value"]
        sender = msg.payload.get("sender", 0)
        try:
            split_key(key)
        except KvsPathError as exc:
            self.respond(msg, error=str(exc), code=exc.code)
            return
        obj = make_val_obj(value)
        # Keyed digest memo: KAP's redundant-value mode stores the same
        # string from every producer — one serialization covers all.
        sha, size = digest_and_size(
            obj, key=("v", value) if isinstance(value, str) else None)
        self._obj_put(sha, obj, pin=True, size=size)
        d = self._dirty_for(sender)
        d.ops.append([key, sha])
        d.objs[sha] = obj
        self.respond(msg, {"sha": sha})

    @request_handler(required=("key",))
    def req_unlink(self, msg: Message) -> None:
        key = msg.payload["key"]
        sender = msg.payload.get("sender", 0)
        self._dirty_for(sender).ops.append([key, None])
        self.respond(msg, {})

    # ------------------------------------------------------------------
    # in-broker API (other comms modules writing through the KVS,
    # e.g. wexec stdout capture and resvc resource enumeration)
    # ------------------------------------------------------------------
    def local_put(self, sender: Any, key: str, value: Any) -> str:
        """Write-back a value on behalf of an in-broker service; returns
        the value object's SHA1."""
        obj = make_val_obj(value)
        sha, size = digest_and_size(
            obj, key=("v", value) if isinstance(value, str) else None)
        self._obj_put(sha, obj, pin=True, size=size)
        d = self._dirty_for(sender)
        d.ops.append([key, sha])
        d.objs[sha] = obj
        return sha

    def local_commit(self, sender: Any,
                     callback: Optional[Callable[[int, str], None]] = None
                     ) -> None:
        """Commit an in-broker service's dirty data; ``callback(version,
        rootref)`` fires after the new root is applied locally."""
        d = self._dirty.pop(sender, None)
        ops = d.ops if d else []
        objs = d.objs if d else {}
        if self.master is not None:
            def apply():
                self.master.ingest_objects(objs)
                res = self.master.commit([(k, s) for k, s in ops])
                self._apply_root(res.version, res.root_sha)
                self._publish_setroot(res.version, res.root_sha)
                if callback is not None:
                    callback(res.version, res.root_sha)
            self._master_run(len(ops), apply)
            return

        def done(resp: Message) -> None:
            if resp.error is None:
                self._apply_root(resp.payload["version"],
                                 resp.payload["rootref"])
                if callback is not None:
                    callback(resp.payload["version"],
                             resp.payload["rootref"])
            elif resp.errnum in RETRYABLE_CODES and (ops or objs):
                # Transient upstream failure: the data must not vanish
                # with the lost flush.  Re-stash and retry once the
                # overlay has had a heartbeat to heal.
                self._restash(sender, ops, objs)
                self.broker.after(5e-3,
                                  lambda: self.local_commit(sender, callback))

        self._forward_flush(ops, objs, done)

    # ------------------------------------------------------------------
    # commit (single-client flush)
    # ------------------------------------------------------------------
    def req_commit(self, msg: Message) -> None:
        sender = msg.payload.get("sender", 0)
        d = self._dirty.pop(sender, None)
        ops = d.ops if d else []
        objs = d.objs if d else {}
        if self.master is not None:
            def apply():
                self.master.ingest_objects(objs)
                res = self.master.commit([(k, s) for k, s in ops])
                self._apply_root(res.version, res.root_sha)
                self._publish_setroot(res.version, res.root_sha,
                                      span=msg.span)
                san = self._san()
                if san is not None:
                    san.kvs_commit_ack(self.name, self.rank, res.version)
                self.respond(msg, {"version": res.version,
                                   "rootref": res.root_sha})
            self._master_run(len(ops), apply)
            return
        self._forward_flush(
            ops, objs,
            lambda resp: self._finish_commit(msg, resp, sender, ops, objs),
            ctx=msg.ctx, span=msg.span)

    def _restash(self, sender: Any, ops: list, objs: dict) -> None:
        """Return a failed flush's data to the dirty cache (ahead of any
        newer writes, preserving order) so the next commit re-sends it."""
        d = self._dirty_for(sender)
        d.ops[:0] = ops
        for sha, obj in objs.items():
            d.objs.setdefault(sha, obj)

    def _finish_commit(self, msg: Message, resp: Message,
                       sender: Any = None, ops: Optional[list] = None,
                       objs: Optional[dict] = None) -> None:
        if resp.error is not None:
            # A transiently failed flush took the popped dirty data with
            # it; re-stash so the client's retry commit re-flushes it
            # through the healed route instead of committing nothing.
            if resp.errnum in RETRYABLE_CODES and (ops or objs):
                self._restash(sender, ops, objs)
            self.respond(msg, error=resp.error, code=resp.errnum,
                         err_rank=resp.err_rank)
            return
        # Read-your-writes: apply the commit's root before answering.
        self._apply_root(resp.payload["version"], resp.payload["rootref"])
        san = self._san()
        if san is not None:
            san.kvs_commit_ack(self.name, self.rank,
                               resp.payload["version"])
        self.respond(msg, dict(resp.payload))

    def _forward_flush(self, ops: list, objs: dict,
                       callback: Callable[[Message], None],
                       ctx: Optional[RequestContext] = None,
                       span: Optional[tuple] = None) -> None:
        payload = {"ops": ops, "objs": objs}
        self._toward_master_cb(
            f"{self.name}.flush", payload, callback, ctx=ctx, span=span,
            payload_size=self._payload_size_with_objs(payload, objs))

    @request_handler(required=("ops", "objs"))
    def req_flush(self, msg: Message) -> None:
        """A commit passing through from a downstream slave."""
        ops = msg.payload["ops"]
        objs = msg.payload["objs"]
        for sha, obj in objs.items():
            self._obj_put(sha, obj)
        if self.master is not None:
            def apply():
                res = self.master.commit([(k, s) for k, s in ops])
                self._apply_root(res.version, res.root_sha)
                self._publish_setroot(res.version, res.root_sha,
                                      span=msg.span)
                self.respond(msg, {"version": res.version,
                                   "rootref": res.root_sha})
            self._master_run(len(ops), apply)
            return
        self._forward_flush(ops, objs,
                            lambda resp: self._relay_flush(msg, resp),
                            ctx=msg.ctx, span=msg.span)

    def _relay_flush(self, msg: Message, resp: Message) -> None:
        if resp.error is not None:
            self.respond(msg, error=resp.error, code=resp.errnum,
                         err_rank=resp.err_rank)
            return
        self._apply_root(resp.payload["version"], resp.payload["rootref"])
        self.respond(msg, dict(resp.payload))

    # ------------------------------------------------------------------
    # fence (collective commit with tree reduction)
    # ------------------------------------------------------------------
    def _fence_for(self, name: str, nprocs: int) -> _FenceAgg:
        agg = self._fences.get(name)
        if agg is None:
            agg = self._fences[name] = _FenceAgg(
                name, nprocs, created_version=self.version)
        return agg

    @request_handler(required=("name", "nprocs"))
    def req_fence(self, msg: Message) -> None:
        """A local client entering a fence (carries its dirty state)."""
        name = msg.payload["name"]
        nprocs = msg.payload["nprocs"]
        sender = msg.payload.get("sender", 0)
        d = self._dirty.pop(sender, None)
        agg = self._fence_for(name, nprocs)
        agg.held.append(msg)
        if d is not None:
            agg.ops.extend(d.ops)
            agg.local_ops.extend(d.ops)
            for sha, obj in d.objs.items():
                agg.objs[sha] = obj
                agg.local_objs[sha] = obj
        agg.count += 1
        agg.total_seen += 1
        agg.local_count += 1
        if msg.span is not None:
            agg.span = msg.span
        self._maybe_flush_fence(agg)

    @request_handler(required=("name", "nprocs"))
    def req_fencedata(self, msg: Message) -> None:
        """A child subtree's aggregated fence contribution.

        Two wire formats share this topic: the legacy *incremental*
        one (``count``/``ops`` deltas, used on a loss-free fabric) and
        the idempotent *shares* one (full per-origin cumulative map,
        used while a fault plan is installed — see ``_FenceAgg``).
        """
        p = msg.payload
        if "shares" in p:
            self._merge_fence_shares(msg, p)
            return
        if p.get("fepoch", 0) < self.fence_epoch:
            # Contribution from before the last failure: the sender
            # will re-emit its cumulative local state under the new
            # epoch, so folding this one in would double-count.
            self.respond(msg, {})
            return
        agg = self._fence_for(p["name"], p["nprocs"])
        agg.count += p["count"]
        agg.total_seen += p["count"]
        if msg.span is not None:
            agg.span = msg.span
        agg.ops.extend(p["ops"])
        for sha, obj in p["objs"].items():
            agg.objs[sha] = obj      # union by SHA1: redundancy reduces
            self._obj_put(sha, obj)
        self.respond(msg, {})
        self._maybe_flush_fence(agg)

    def _merge_fence_shares(self, msg: Message, p: dict) -> None:
        """Fold a shares-mode contribution in (idempotent merge)."""
        name = p["name"]
        if name in self._completed:
            # Late re-emission for a fence already committed: the
            # sender learns the outcome via setroot/gossip; folding it
            # back in could re-create (and re-commit) the fence.
            self.respond(msg, {})
            return
        agg = self._fence_for(name, p["nprocs"])
        if msg.span is not None:
            agg.span = msg.span
        changed = False
        for origin_s, share in p["shares"].items():
            origin = int(origin_s)
            if origin == self.rank:
                continue            # our own share is authoritative here
            cur = agg.shares.get(origin)
            if cur is None or share[0] > cur[0]:
                agg.shares[origin] = [share[0], list(share[1])]
                changed = True
        for sha, obj in p["objs"].items():
            agg.objs[sha] = obj
            self._obj_put(sha, obj)
        self.respond(msg, {})
        if changed:
            self._flush_fence(agg.name)

    def _shared_mode(self) -> bool:
        """True while a fault plan is installed: fence traffic then
        uses the idempotent shares protocol (safe under loss and
        duplication) instead of the legacy incremental one, whose wire
        payloads stay byte-identical for fault-free runs."""
        return self.broker.network.fault_plan is not None

    def _maybe_flush_fence(self, agg: _FenceAgg) -> None:
        """Flush the aggregate upstream when complete — or after the
        aggregation window, so fences joined by only a subset of the
        subtree's clients (e.g. two jobs sharing a session) still make
        progress."""
        if self._shared_mode():
            self._flush_fence(agg.name)
            return
        expected = self.broker.session.subtree_procs(self.rank)
        if self.master_rank == 0 and agg.total_seen >= min(expected,
                                                           agg.nprocs):
            # Fast path (master at the root, whole session fencing):
            # the root-ward aggregation matches the subtree counts.
            self._flush_fence(agg.name)
        elif not agg.timer_armed:
            agg.timer_armed = True
            self.broker.after(self.fence_window,
                              lambda: self._fence_timer(agg.name))

    def _fence_timer(self, name: str) -> None:
        agg = self._fences.get(name)
        if agg is None:
            return
        agg.timer_armed = False
        self._flush_fence(name)

    def _flush_fence(self, name: str) -> None:
        agg = self._fences.get(name)
        if agg is None:
            return
        if self._shared_mode():
            self._flush_fence_shared(agg)
            return
        if agg.count == 0:
            return
        count, agg.count = agg.count, 0
        ops, agg.ops = agg.ops, []
        objs, agg.objs = agg.objs, {}
        if self.master is not None:
            def apply():
                res = self.master.fence_add(agg.name, agg.nprocs, count,
                                            [(k, s) for k, s in ops], objs)
                if res is not None:
                    self._record_completed(agg.name, res.version,
                                           res.root_sha)
                    self._apply_root(res.version, res.root_sha)
                    self._publish_setroot(res.version, res.root_sha,
                                          fence=agg.name, span=agg.span)
                    self._release_fence(agg)
            self._master_run(len(ops), apply)
            return
        payload = {"name": agg.name, "nprocs": agg.nprocs, "count": count,
                   "ops": ops, "objs": objs}
        if self.fence_epoch > 0:
            # Tag only after a failure: fault-free payloads (and hence
            # wire sizes/latencies) stay byte-identical.
            payload["fepoch"] = self.fence_epoch
        self._toward_master_cb(
            f"{self.name}.fencedata", payload, lambda resp: None,
            span=agg.span,
            payload_size=self._payload_size_with_objs(payload, objs))
        # Held client fences answer when the fence's setroot arrives.

    def _flush_fence_shared(self, agg: _FenceAgg) -> None:
        """Shares-mode flush: send (or, at the master, evaluate) the
        full merged per-origin map.  Nothing is cleared — the map is
        cumulative, so this is safe to call arbitrarily often."""
        if agg.local_count > 0:
            agg.shares[self.rank] = [agg.local_count,
                                     list(agg.local_ops)]
        if not agg.shares:
            return
        if self.master is not None:
            self._maybe_complete_shared(agg)
            return
        objs = {**agg.objs, **agg.local_objs}
        payload = {"name": agg.name, "nprocs": agg.nprocs,
                   "shares": {str(o): [s[0], s[1]]
                              for o, s in agg.shares.items()},
                   "objs": objs}
        self._toward_master_cb(
            f"{self.name}.fencedata", payload, lambda resp: None,
            span=agg.span,
            payload_size=self._payload_size_with_objs(payload, objs))

    def _maybe_complete_shared(self, agg: _FenceAgg) -> None:
        """Commit a shares-mode fence once every participant's share
        has arrived (counts are disjoint per origin, so the sum is
        exact no matter how often shares were re-sent)."""
        if agg.completing:
            return
        if sum(s[0] for s in agg.shares.values()) < agg.nprocs:
            return
        agg.completing = True
        ops = []
        for origin in sorted(agg.shares):
            ops.extend((k, s) for k, s in agg.shares[origin][1])

        def apply():
            if agg.name in self._completed:
                return
            self.master.ingest_objects({**agg.objs, **agg.local_objs})
            res = self.master.commit(ops)
            self._record_completed(agg.name, res.version, res.root_sha)
            self._apply_root(res.version, res.root_sha)
            self._publish_setroot(res.version, res.root_sha,
                                  fence=agg.name, span=agg.span)
            self._release_fence(agg)

        self._master_run(len(ops), apply)

    def _release_fence(self, agg: _FenceAgg) -> None:
        self._fences.pop(agg.name, None)
        now = self.broker.sim.now
        san = self._san()
        if san is not None and agg.held:
            san.kvs_commit_ack(self.name, self.rank, self.version)
        for held in agg.held:
            t0 = getattr(held, "_obs_t0", None)
            if t0 is not None:
                self._h_fence_wait.observe(now - t0)
            self.respond(held, {"version": self.version,
                                "rootref": self.root_sha})

    def _record_completed(self, name: str, version: int,
                          root_sha: str) -> None:
        self._completed[name] = (version, root_sha)
        self._completed.move_to_end(name)
        while len(self._completed) > self.completed_cap:
            self._completed.popitem(last=False)

    # ------------------------------------------------------------------
    # failure recovery (chaos tentpole)
    # ------------------------------------------------------------------
    def _on_live_down(self, msg: Message) -> None:
        """A broker died.  Bump the fence epoch *now* (event total
        order ⇒ every live rank lands on the same epoch, and ancestors
        bump before their descendants' re-emissions can arrive), but
        defer the state recovery one tick: this module subscribed to
        ``live.down`` before the live module did, so the broker has not
        re-wired around the corpse yet when we run.

        In shares mode (fault plan installed) there is nothing to
        reset: the merged per-origin map is idempotent, so recovery is
        simply "re-send everything over the healed route".
        """
        if self._shared_mode():
            self.broker.after(0.0, self._recover_shared)
            return
        self.fence_epoch += 1
        self.broker.after(0.0, self._recover_after_down)

    def _recover_shared(self) -> None:
        for name in list(self._fences):
            self._flush_fence(name)
        if self.master is None and self.master_rank == 0:
            self._resync_root()

    def _recover_after_down(self) -> None:
        """Re-establish KVS invariants on the healed overlay.

        - The master resets incomplete fence accumulators; every rank
          then re-contributes its *cumulative local* fence state under
          the new epoch.  Local shares are disjoint, so the re-reduction
          sums exactly; in-flight pre-failure aggregates are discarded
          by the receivers' epoch check.
        - Slaves pull their (possibly new) parent's root version and
          completed-fence digest: setroot events flooding through the
          corpse at the moment of death are lost for its whole former
          subtree, and a lost fence-completion notice would strand held
          waiters forever.
        """
        if self.master is not None:
            self.master.reset_incomplete_fences()
        for name, agg in list(self._fences.items()):
            agg.count = agg.local_count
            agg.ops = list(agg.local_ops)
            agg.objs = dict(agg.local_objs)
            agg.total_seen = agg.local_count
            if agg.count > 0:
                self._flush_fence(name)
        if self.master is None and self.master_rank == 0:
            self._resync_root()

    def _resync_root(self) -> None:
        """Pull the parent's root + completed-fence digest (one level
        of anti-entropy; chained pulses converge the whole tree)."""
        now = self.broker.sim.now
        if self.master is not None or self.broker.parent is None:
            return
        if self._sync_busy and now - self._sync_at < 0.25:
            # A sync is outstanding — but never trust the busy flag
            # forever: if the request or its response was lost after
            # the broker gave up retransmitting, the callback never
            # fires, and a stuck flag would silence gossip for good.
            return
        self._sync_busy = True
        self._sync_at = now

        def done(resp: Message) -> None:
            self._sync_busy = False
            if resp.error is None:
                self._ingest_sync(resp.payload)

        self._toward_master_cb(f"{self.name}.getroot", {"fences": True},
                               done)

    def _ingest_sync(self, p: dict) -> None:
        self.fence_epoch = max(self.fence_epoch, p.get("fepoch", 0))
        if p.get("version", 0) > self.version:
            self._local_setroot_event(p["version"], p["rootref"])
        for name in sorted(p.get("completed", {})):
            ver, root = p["completed"][name]
            self._record_completed(name, ver, root)
            agg = self._fences.get(name)
            if agg is not None and ver > agg.created_version:
                # We missed this fence's completion notice: replay it.
                self._local_setroot_event(ver, root, fence=name)

    def _local_setroot_event(self, version: int, root_sha: str,
                             fence: Optional[str] = None) -> None:
        """Synthesize a local ``setroot`` delivery for state learned by
        resync instead of the event plane, so every local subscriber —
        including client watchers — observes the same transition it
        would have seen had the flooded event not been lost."""
        payload: dict[str, Any] = {"version": version, "rootref": root_sha}
        if fence is not None:
            payload["fence"] = fence
        self.broker._deliver_event(
            Message(topic=f"{self.name}.setroot", mtype=MessageType.EVENT,
                    payload=payload, src_rank=self.rank))

    # ------------------------------------------------------------------
    # root-version protocol
    # ------------------------------------------------------------------
    def _publish_setroot(self, version: int, root_sha: str,
                         fence: Optional[str] = None,
                         span: Optional[tuple] = None) -> None:
        payload = {"version": version, "rootref": root_sha}
        if fence is not None:
            payload["fence"] = fence
        self.broker.publish(f"{self.name}.setroot", payload, span=span)

    def _apply_root(self, version: int, root_sha: str) -> None:
        """Monotonic root switch: never apply an older version."""
        if version <= self.version:
            return
        self.version = version
        self.root_sha = root_sha
        san = self._san()
        if san is not None:
            san.kvs_root_applied(self.name, self.rank, version)
        still = []
        for wanted, held in self._version_waiters:
            if self.version >= wanted:
                self.respond(held, {"version": self.version})
            else:
                still.append((wanted, held))
        self._version_waiters = still

    def _on_setroot_event(self, msg: Message) -> None:
        p = msg.payload
        self._apply_root(p["version"], p["rootref"])
        fence = p.get("fence")
        if fence is not None:
            self._record_completed(fence, p["version"], p["rootref"])
            agg = self._fences.get(fence)
            if agg is not None and p["version"] > agg.created_version:
                # The master completed the fence: every contribution
                # (including any this node held) was accounted for.
                # The version guard keeps a late/replayed completion
                # notice for a *previous* fence of the same name (KAP
                # re-fences every iteration) from releasing this one.
                self._release_fence(agg)

    def req_getversion(self, msg: Message) -> None:
        san = self._san()
        if san is not None:
            san.kvs_read(self.name, self.rank, self.version)
        self.respond(msg, {"version": self.version})

    @request_handler(required=("version",))
    def req_waitversion(self, msg: Message) -> None:
        wanted = msg.payload["version"]
        if self.version >= wanted:
            san = self._san()
            if san is not None:
                san.kvs_read(self.name, self.rank, self.version)
            self.respond(msg, {"version": self.version})
        else:
            self._version_waiters.append((wanted, msg))

    def req_getroot(self, msg: Message) -> None:
        san = self._san()
        if san is not None:
            san.kvs_read(self.name, self.rank, self.version)
        out: dict[str, Any] = {"version": self.version,
                               "rootref": self.root_sha}
        if msg.payload.get("fences"):
            # Anti-entropy digest for a resyncing child: which fences
            # completed recently (and at what version), plus our fence
            # epoch so a revived rank can catch its epoch counter up.
            out["completed"] = {n: [v, r]
                                for n, (v, r) in self._completed.items()}
            out["fepoch"] = self.fence_epoch
        self.respond(msg, out)

    # ------------------------------------------------------------------
    # get (with fault-in through the slave-cache chain)
    # ------------------------------------------------------------------
    @request_handler(required=("key",))
    def req_get(self, msg: Message) -> None:
        self.broker.sim.spawn(self._get_proc(msg),
                              name=self._getproc_name)

    def _get_proc(self, msg: Message):
        key = msg.payload["key"]
        want_ref = msg.payload.get("ref", False)
        root = self.root_sha
        try:
            parts = split_key(key)
        except KvsPathError as exc:
            self.respond(msg, error=str(exc), code=exc.code)
            return
        sha = root
        obj = None
        try:
            for i, part in enumerate(parts):
                obj = self._obj_get(sha)
                if obj is None:
                    obj = yield self._fault(sha, ctx=msg.ctx,
                                            span=msg.span)
                if obj is None:
                    raise KvsPathError(f"object {sha} lost in transit",
                                       code=EIO)
                if not is_dir_obj(obj):
                    raise KvsPathError(
                        f"{'.'.join(parts[:i])!r} is not a directory")
                entries = dir_entries(obj)
                if part not in entries:
                    raise KvsPathError(f"key {key!r} not found",
                                       code=ENOENT)
                sha = entries[part]
            if want_ref:
                self.respond(msg, {"ref": sha})
                return
            obj = self._obj_get(sha)
            if obj is None:
                obj = yield self._fault(sha, ctx=msg.ctx, span=msg.span)
            if obj is None:
                raise KvsPathError(f"object {sha} lost in transit",
                                   code=EIO)
            if is_dir_obj(obj):
                self.respond(msg, {"dir": sorted(dir_entries(obj))})
            else:
                # {"value": X} is 10 framing bytes + size(X); the value
                # object {"v": X} is 6 + size(X), so the response costs
                # the stored object's cached size + 4 — no per-get
                # re-serialization of the value.
                self.respond(msg, {"value": val_of(obj)},
                             payload_size=4 + self._obj_size(sha, obj))
        except KvsPathError as exc:
            self.respond(msg, error=str(exc), code=exc.code)

    def _fault(self, sha: str, ctx: Optional[RequestContext] = None,
               span: Optional[tuple] = None):
        """Fault ``sha`` in from the tree parent; in-flight loads for
        the same object are coalesced.  Returns an event yielding the
        object (or None on failure)."""
        ev = self.broker.sim.event(name=("fault:%s", sha[:8]))
        waiters = self._loads.get(sha)
        if waiters is not None:
            waiters.append(lambda obj: ev.succeed(obj))
            return ev
        self._loads[sha] = [lambda obj: ev.succeed(obj)]
        self.cache.stats.faults += 1
        self._toward_master_cb(f"{self.name}.load", {"sha": sha},
                               lambda resp: self._fault_done(sha, resp),
                               ctx=ctx, span=span)
        return ev

    def _fault_done(self, sha: str, resp: Message) -> None:
        obj = None
        if resp.error is None:
            obj = resp.payload.get("obj")
            if obj is not None:
                # The load response was sized for the wire as
                # header + 8 + size(obj); recover the object's size
                # from the message's size cache so every caching rank
                # along the fault-in chain skips re-serializing it.
                wire = resp._size_cache
                self._obj_put(sha, obj,
                              size=(wire - HEADER_BYTES - 8
                                    if wire is not None else None))
        for fn in self._loads.pop(sha, []):
            fn(obj)

    @request_handler(required=("sha",))
    def req_load(self, msg: Message) -> None:
        """A downstream slave faulting an object through us."""
        sha = msg.payload["sha"]
        obj = self._obj_get(sha)
        if obj is not None:
            # {"obj": X} costs 8 framing bytes plus X's canonical size,
            # which the store already knows — no re-serialization of a
            # possibly huge directory object per fault-in hop.
            self.respond(msg, {"obj": obj},
                         payload_size=8 + self._obj_size(sha, obj))
            return
        if self.master is not None:
            self.respond(msg, error=f"unknown object {sha}", code=ENOENT)
            return
        waiters = self._loads.get(sha)

        def relay(obj):
            if obj is not None:
                self.respond(msg, {"obj": obj},
                             payload_size=8 + self._obj_size(sha, obj))
            else:
                self.respond(msg, error=f"unknown object {sha}",
                             code=ENOENT)

        if waiters is not None:
            waiters.append(relay)
            return
        self._loads[sha] = [relay]
        self.cache.stats.faults += 1
        self._toward_master_cb(f"{self.name}.load", {"sha": sha},
                               lambda resp: self._fault_done(sha, resp),
                               ctx=msg.ctx, span=msg.span)

    # ------------------------------------------------------------------
    # debugging / administration
    # ------------------------------------------------------------------
    def req_stats(self, msg: Message) -> None:
        self.respond(msg, {
            "rank": self.rank,
            "version": self.version,
            "cache": self.cache.stats.as_dict(),
            "cached_objects": len(self.cache),
            "is_master": self.master is not None,
        })

    def req_dropcache(self, msg: Message) -> None:
        """Evict every unpinned cache entry (admin/testing hook)."""
        n = self.cache.expire(-1.0)
        self.respond(msg, {"evicted": n})
