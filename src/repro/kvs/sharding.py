"""Distributed KVS master — the paper's stated future work.

Section VII: "we must also continue to push the scalability envelope of
our infrastructure, in particular in the KVS.  We plan to address the
latter by *distributing the KVS master itself*."

This extension shards the key space into independent namespaces, each
served by its own :class:`~repro.kvs.module.KvsModule` instance with
its own master placed on a distinct session rank.  The top-level path
component of a key selects its shard (stable SHA1 hash), so unrelated
namespaces — different jobs, different services — stop serializing
through the single root master and its NIC.

Traffic to a non-root master follows the tree path toward that rank
(the :meth:`~repro.cmb.broker.Broker.rpc_hop_cb` extension), with the
same hop-by-hop slave caching as the root-ward original.  Consistency
properties hold *per shard*: each namespace has its own root reference
and version sequence.  Cross-shard fences compose from per-shard
fences (see :meth:`ShardedKvsClient.fence`).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Any, Callable, Optional

from ..cmb.api import Handle
from ..cmb.session import ModuleSpec
from ..sim.kernel import AllOf, Event
from .api import KvsClient, Watcher
from .hashtree import split_key
from .module import KvsModule

__all__ = ["shard_of_key", "spread_master_ranks", "sharded_kvs_specs",
           "ShardedKvsClient"]


@lru_cache(maxsize=4096)
def _shard_of_top(top: str, nshards: int) -> int:
    """SHA1-of-component mod ``nshards``, memoized: shard routing runs
    on every keyed client call, and real workloads hit the same handful
    of top-level directories (``job.N``, service names) over and over,
    so the digest is worth caching.  Keyed on the *component*, not the
    full key, so ``a.b`` and ``a.c`` share one entry."""
    digest = hashlib.sha1(top.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % nshards


def shard_of_key(key: str, nshards: int) -> int:
    """Stable shard index for ``key``: SHA1 of its top-level path
    component, mod ``nshards`` (deterministic across runs/processes)."""
    return _shard_of_top(split_key(key)[0], nshards)


def spread_master_ranks(nshards: int, session_size: int) -> list[int]:
    """Master placement: spread shard masters evenly over the rank
    space so their tree neighbourhoods (and NICs) are disjoint."""
    if nshards < 1:
        raise ValueError("need at least one shard")
    if nshards > session_size:
        raise ValueError("more shards than session ranks")
    return [(i * session_size) // nshards for i in range(nshards)]


def sharded_kvs_specs(nshards: int, session_size: int, *,
                      prefix: str = "kvs",
                      fence_window: float = 1e-4,
                      expiry: Optional[float] = None,
                      master_commit_cost: float = 0.0,
                      master_op_cost: float = 0.0) -> list[ModuleSpec]:
    """Module specs for a sharded KVS: one namespace module per shard,
    named ``kvs0..kvsN-1``, masters spread via
    :func:`spread_master_ranks`.  Load them instead of the single
    ``ModuleSpec(KvsModule)``.

    ``master_commit_cost``/``master_op_cost`` feed the master
    service-time model — the serialization the sharding is meant to
    relieve; zero (the default) models an infinitely fast master.
    """
    masters = spread_master_ranks(nshards, session_size)
    return [
        ModuleSpec(KvsModule, name=f"{prefix}{i}", master_rank=masters[i],
                   fence_window=fence_window, expiry=expiry,
                   master_commit_cost=master_commit_cost,
                   master_op_cost=master_op_cost)
        for i in range(nshards)
    ]


class ShardedKvsClient:
    """Client facade multiplexing the ``kvs_*`` API over shards.

    Reads and writes route to the shard owning the key's top-level
    directory; version operations and fences take an explicit shard (or
    fan out to all shards for the collective case).
    """

    def __init__(self, handle: Handle, nshards: int, *,
                 prefix: str = "kvs", timeout: Optional[float] = None):
        if nshards < 1:
            raise ValueError("need at least one shard")
        self.handle = handle
        self.nshards = nshards
        #: Default RPC timeout forwarded to every per-shard client.
        self.timeout = timeout
        self.clients = [KvsClient(handle, module=f"{prefix}{i}",
                                  timeout=timeout)
                        for i in range(nshards)]
        #: Shards this client has written to since its last commit;
        #: :meth:`commit` fans out only to these.
        self._dirty: set[int] = set()

    # -- routing ----------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """The shard index that owns ``key``."""
        return shard_of_key(key, self.nshards)

    def client_for(self, key: str) -> KvsClient:
        """The per-shard client that owns ``key``."""
        return self.clients[self.shard_of(key)]

    # -- keyed operations ---------------------------------------------------
    def put(self, key: str, value: Any) -> Event:
        """``kvs_put`` on the owning shard."""
        shard = self.shard_of(key)
        self._dirty.add(shard)
        return self.clients[shard].put(key, value)

    def unlink(self, key: str) -> Event:
        """Unlink on the owning shard."""
        shard = self.shard_of(key)
        self._dirty.add(shard)
        return self.clients[shard].unlink(key)

    def get(self, key: str) -> Event:
        """``kvs_get`` from the owning shard."""
        return self.client_for(key).get(key)

    def get_ref(self, key: str) -> Event:
        """SHA1 reference from the owning shard."""
        return self.client_for(key).get_ref(key)

    def get_dir(self, key: str) -> Event:
        """Directory listing from the owning shard."""
        return self.client_for(key).get_dir(key)

    def watch(self, key: str,
              callback: Callable[[str, Any], None]) -> Watcher:
        """``kvs_watch`` on the owning shard."""
        return self.client_for(key).watch(key, callback)

    # -- commit / synchronization -----------------------------------------
    def commit(self) -> AllOf:
        """Commit this client's dirty data, fanning out only to shards
        actually written through this facade since the last commit
        (an untouched shard's master would just bump its version for
        nothing).  Fires with the list of per-shard ``{"version",
        "rootref"}`` results, in shard order.  With no dirty shards the
        commit degenerates to shard 0 alone so the call still yields a
        version.  A shard whose commit fails is re-marked dirty, so a
        retried :meth:`commit` reaches it again."""
        sim = self.handle.sim
        shards = sorted(self._dirty) or [0]
        self._dirty.clear()

        def issue(shard: int) -> Event:
            ev = self.clients[shard].commit()

            def done(e: Event) -> None:
                if not e.ok:
                    self._dirty.add(shard)

            ev.add_callback(done)
            return ev

        return sim.all_of([issue(s) for s in shards])

    def commit_shard(self, shard: int) -> Event:
        """Commit only one shard (the explicit escape hatch when the
        caller knows exactly where its writes went)."""
        self._dirty.discard(shard)
        return self.clients[shard].commit()

    def fence(self, name: str, nprocs: int) -> AllOf:
        """Collective fence across *all* shards: every participant
        fences every shard (each shard master completes its own fence
        of ``nprocs``); fires when all shards' roots have been applied
        locally.  Use :meth:`fence_shard` when a phase only touched one
        namespace."""
        sim = self.handle.sim
        self._dirty.clear()   # a fence flushes every shard's dirty data
        return sim.all_of([c.fence(f"{name}#{i}", nprocs)
                           for i, c in enumerate(self.clients)])

    def fence_shard(self, shard: int, name: str, nprocs: int) -> Event:
        """Fence a single shard."""
        self._dirty.discard(shard)
        return self.clients[shard].fence(name, nprocs)

    def wait_version(self, shard: int, version: int) -> Event:
        """Per-shard ``kvs_wait_version`` (versions are per namespace)."""
        return self.clients[shard].wait_version(version)

    def get_version(self, shard: int) -> Event:
        """Per-shard root version."""
        return self.clients[shard].get_version()
