"""Content-addressable object store (CAS) for the Flux KVS.

The paper borrows from ZFS and git: "JSON objects are placed in a
content-addressable object store, hashed by their SHA1 digests".  Two
object kinds exist:

- **value objects** — ``{"v": <json value>}`` wrapping a stored value;
- **directory objects** — ``{"d": {name: sha, ...}}`` mapping child
  names to the SHA1 references of other objects.

Because an object's id is the SHA1 of its canonical encoding, identical
values stored by different producers collapse to one object — the
property that makes redundant-value fences cheap in Figure 3.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from ..jsonutil import canonical_dumps, canonical_size, sha1_of

__all__ = [
    "make_val_obj", "make_dir_obj", "make_link_obj", "is_dir_obj",
    "is_val_obj", "is_link_obj", "link_of", "dir_entries", "val_of",
    "obj_size", "ObjectStore", "EMPTY_DIR", "EMPTY_DIR_SHA",
]


def make_val_obj(value: Any) -> dict:
    """Wrap a JSON value into a storable value object."""
    return {"v": value}


def make_dir_obj(entries: Optional[dict[str, str]] = None) -> dict:
    """Build a directory object from a ``name -> sha`` mapping."""
    return {"d": dict(entries or {})}


def is_dir_obj(obj: dict) -> bool:
    """True for directory objects."""
    return isinstance(obj, dict) and "d" in obj


def is_val_obj(obj: dict) -> bool:
    """True for value objects."""
    return isinstance(obj, dict) and "v" in obj


def make_link_obj(prefix: str, rank: int) -> dict:
    """Build an ownership *link object*: a leaf the root master binds at
    a delegated subtree's path so cross-subtree reads still compose into
    one hash tree.  A walk that lands on a link re-routes the lookup to
    the owning rank's delegate master (the authoritative store for that
    namespace)."""
    return {"l": {"prefix": prefix, "rank": rank}}


def is_link_obj(obj: dict) -> bool:
    """True for ownership link objects."""
    return isinstance(obj, dict) and "l" in obj


def link_of(obj: dict) -> dict:
    """The ``{"prefix", "rank"}`` target of a link object."""
    if not is_link_obj(obj):
        raise TypeError(f"not a link object: {obj!r}")
    return obj["l"]


def dir_entries(obj: dict) -> dict[str, str]:
    """The ``name -> sha`` mapping of a directory object."""
    if not is_dir_obj(obj):
        raise TypeError(f"not a directory object: {obj!r}")
    return obj["d"]


def val_of(obj: dict) -> Any:
    """The value wrapped by a value object."""
    if not is_val_obj(obj):
        raise TypeError(f"not a value object: {obj!r}")
    return obj["v"]


def obj_size(obj: dict) -> int:
    """Canonical-encoding byte size of an object (network accounting)."""
    return canonical_size(obj)


#: The canonical empty directory — the initial KVS root everywhere.
EMPTY_DIR = make_dir_obj()
EMPTY_DIR_SHA = sha1_of(EMPTY_DIR)


class ObjectStore:
    """A SHA1-keyed object dictionary.

    Used both as the master's authoritative store and as the slaves'
    cache backing (:mod:`repro.kvs.cache` adds the expiry policy).

    Stored objects are immutable by contract (their id is the hash of
    their encoding), so the store can cache each object's canonical
    byte size alongside it.  :meth:`put_obj` derives the sha *and* the
    size from a single serialization; :meth:`size_of` then answers
    network-accounting queries without re-serializing — the dominant
    cost of fence payload sizing before this cache existed.
    """

    __slots__ = ("_objects", "_sizes", "_journal")

    def __init__(self):
        self._objects: dict[str, dict] = {EMPTY_DIR_SHA: EMPTY_DIR}
        self._sizes: dict[str, int] = {
            EMPTY_DIR_SHA: canonical_size(EMPTY_DIR)}
        #: Optional capture dict for *newly stored* objects.  The
        #: replicated-master commit log wraps each commit in
        #: :meth:`begin_journal`/:meth:`end_journal` so the streamed
        #: record carries exactly the objects the commit introduced
        #: (value objects ingested plus directories rebuilt) — pure
        #: bookkeeping, no effect on store contents.
        self._journal: Optional[dict[str, dict]] = None

    def begin_journal(self) -> None:
        """Start capturing newly stored objects (see ``_journal``)."""
        self._journal = {}

    def end_journal(self) -> dict[str, dict]:
        """Stop capturing; returns ``{sha: obj}`` of everything newly
        stored since :meth:`begin_journal`."""
        captured, self._journal = self._journal, None
        return captured if captured is not None else {}

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, sha: str) -> bool:
        return sha in self._objects

    def get(self, sha: str) -> Optional[dict]:
        """The object stored under ``sha``, or None."""
        return self._objects.get(sha)

    def put_obj(self, obj: dict) -> str:
        """Store ``obj``; returns its SHA1 id (idempotent).

        Serializes exactly once: sha and byte size both come from the
        same canonical encoding.
        """
        data = canonical_dumps(obj)
        sha = hashlib.sha1(data).hexdigest()
        if sha not in self._objects:
            self._objects[sha] = obj
            self._sizes[sha] = len(data)
            if self._journal is not None:
                self._journal[sha] = obj
        return sha

    def put_with_sha(self, sha: str, obj: dict, *, verify: bool = False,
                     size: Optional[int] = None) -> None:
        """Store an object under a caller-supplied sha (already hashed
        upstream).  ``verify=True`` re-hashes to detect corruption;
        ``size`` records the canonical byte size when the caller
        already knows it (avoiding a later re-serialization in
        :meth:`size_of`).
        """
        if verify and sha1_of(obj) != sha:
            raise ValueError(f"object does not hash to {sha}")
        if sha not in self._objects:
            self._objects[sha] = obj
            if self._journal is not None:
                self._journal[sha] = obj
        if size is not None:
            self._sizes.setdefault(sha, size)

    def size_of(self, sha: str) -> Optional[int]:
        """Canonical byte size of the stored object, or None if absent.

        Computed lazily and cached for objects ingested without a size.
        """
        size = self._sizes.get(sha)
        if size is None:
            obj = self._objects.get(sha)
            if obj is None:
                return None
            size = self._sizes[sha] = canonical_size(obj)
        return size

    def shas(self) -> list[str]:
        """All stored object ids (testing / introspection)."""
        return list(self._objects)

    def discard(self, sha: str) -> None:
        """Drop an object if present (cache eviction)."""
        self._objects.pop(sha, None)
        self._sizes.pop(sha, None)
