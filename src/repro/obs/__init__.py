"""Observability: metrics registry, causal spans, exporters.

See DESIGN.md "Observability" for the span model and wire format.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    DEFAULT_SIZE_LADDER,
    DEFAULT_TIME_LADDER,
    Counter,
    CounterVec,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_from_snapshot,
    log_ladder,
    merge_snapshots,
    parse_prometheus_text,
    snapshot_to_prometheus,
)
from repro.obs.span import Span, SpanTracer

__all__ = [
    "Counter", "CounterVec", "Gauge", "Histogram", "MetricsRegistry",
    "merge_snapshots", "snapshot_to_prometheus", "parse_prometheus_text",
    "histogram_from_snapshot",
    "log_ladder", "DEFAULT_TIME_LADDER", "DEFAULT_SIZE_LADDER",
    "Span", "SpanTracer", "FlightRecorder",
]
