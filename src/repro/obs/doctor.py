"""Post-mortem doctor: root-cause analysis over flight bundles.

``python -m repro.obs.doctor bundle.json [...]`` merges one or more
post-mortem bundles (:mod:`repro.obs.postmortem`), reconstructs
per-entity timelines — a fence, a job, an election, a rank's root
version — from the flight-recorder rings, and pattern-matches the
known pathologies of this codebase's protocols:

==========================  =========================================
pathology                   signature
==========================  =========================================
``stalled-retransmission``  a pending tree/ring leg at (or beyond)
                            the retransmit budget, or parked with a
                            dead timer
``lost-fence-ack``          a fence holding client requests with no
                            commit/setroot anywhere (often: a rank
                            died holding subtree contributions)
``orphaned-waiter``         a version waiter wanting a version no
                            surviving master will ever publish
``version-regression``      a rank whose applied root versions went
                            backwards, or that finished far behind
                            the cluster's committed maximum
``double-promote``          two masters promoted for one failover
                            era (resolved or not by a demote)
``respawn-exhausted``       a job declared lost after its tasks'
                            retry budget burned out
``root-failover``           (narrative) rank-0 death → election →
                            promotion, with timing
``terminal-errors``         terminal client RpcErrors grouped by
                            topic/code
==========================  =========================================

Each finding carries the evidence lines that matched, so the report
reads as a diagnosis, not an assertion.  ``--expect <pathology>``
exits nonzero unless the named pathology was found (CI smoke);
``--json`` emits the raw diagnosis document.

With ``--flow-graph graph.json`` (the export of ``python -m
repro.analysis flow --graph-json``), every finding that implicates a
request topic is cross-referenced against the *static* message-flow
graph: the report then names the handler serving that topic, its
source location, its reply disposition, any analyzer flags on it, and
whether it sits on a statically-detected wait cycle — "this hung
waiter sits on an edge the analyzer flagged".
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

from repro.obs.postmortem import load_bundle

__all__ = ["Doctor", "diagnose", "main"]


def _rec_tuple(rank: int, rec: list) -> tuple:
    """Normalize a JSON record row to ``(t, rank, seq, kind, a, b, c)``."""
    t, seq, kind, a, b, c = rec
    return (t, rank, seq, kind, a, b, c)


class Doctor:
    """Merged view over one or more post-mortem bundles."""

    def __init__(self, bundles: list[dict],
                 flow_graph: Optional[dict] = None):
        if not bundles:
            raise ValueError("no bundles to diagnose")
        self.bundles = bundles
        #: Parsed flow-graph JSON (``repro.analysis flow --graph-json``)
        #: for static/runtime cross-referencing, or ``None``.
        self.flow_graph = flow_graph
        self.meta = bundles[0].get("meta", {})
        #: rank -> broker entry (later bundles win on conflict).
        self.brokers: dict[int, dict] = {}
        for bundle in bundles:
            for entry in bundle.get("brokers", ()):
                self.brokers[entry["rank"]] = entry
        #: Globally merged flight records, ordered on (sim-time, rank,
        #: per-recorder seq) — the causal order the rings preserve.
        self.records: list[tuple] = sorted(
            _rec_tuple(entry["rank"], rec)
            for entry in self.brokers.values()
            for rec in entry.get("flight", {}).get("records", ()))
        self.terminal_errors: list[dict] = [
            e for bundle in bundles
            for e in bundle.get("terminal_errors", ())]

    # -- record selectors ----------------------------------------------
    def by_kind(self, kind: str) -> list[tuple]:
        return [r for r in self.records if r[3] == kind]

    def events(self, suffix: str) -> list[tuple]:
        """``event`` records whose topic ends with ``suffix``."""
        return [r for r in self.records
                if r[3] == "event" and str(r[4]).endswith(suffix)]

    def dead_ranks(self) -> list[int]:
        return sorted(r for r, e in self.brokers.items()
                      if not e.get("alive", True))

    # -- timelines ------------------------------------------------------
    def fence_timeline(self, name: str) -> list[tuple]:
        """Every record that mentions fence ``name``, merged order."""
        out = []
        for r in self.records:
            kind = r[3]
            if kind in ("kvs_fence_enter", "kvs_commit") and r[4] == name:
                out.append(r)
            elif kind == "event" and str(r[4]).endswith(".setroot"):
                sal = r[5]
                if isinstance(sal, (list, tuple)) and len(sal) > 1 \
                        and sal[1] == name:
                    out.append(r)
        return out

    def job_timeline(self, jobid: Any) -> list[tuple]:
        out = []
        for r in self.records:
            kind = r[3]
            if kind in ("job_state", "wexec_respawn", "wexec_lost") \
                    and str(r[4]) == str(jobid):
                out.append(r)
            elif kind == "event" and str(r[4]).startswith(("wexec.",
                                                           "job.")):
                sal = r[5]
                ref = sal[0] if isinstance(sal, (list, tuple)) else sal
                if str(ref) == str(jobid):
                    out.append(r)
        return out

    def election_timeline(self) -> list[tuple]:
        kinds = ("kvs_election", "kvs_promote", "kvs_demote", "peer_down")
        out = [r for r in self.records if r[3] in kinds]
        out.extend(self.events(".newmaster"))
        out.extend(e for e in self.events("live.down"))
        return sorted(out)

    def version_timeline(self, rank: int) -> list[tuple]:
        return [r for r in self.records
                if r[3] == "kvs_apply_root" and r[1] == rank]

    # -- pathology matchers --------------------------------------------
    def _find_stalled_retransmission(self) -> list[dict]:
        budget = self.meta.get("retransmit_max", 0)
        findings = []
        for rank, entry in sorted(self.brokers.items()):
            if not entry.get("alive", True):
                continue
            for p in entry.get("pending", ()):
                stuck_budget = budget and p.get("attempts", 0) >= budget
                dead_timer = not p.get("timer_armed", True)
                if not (stuck_budget or dead_timer):
                    continue
                why = ("retry budget exhausted" if stuck_budget
                       else "timer not armed")
                findings.append({
                    "pathology": "stalled-retransmission",
                    "severity": "error",
                    "summary": f"rank {rank}: {p.get('topic')} leg to "
                               f"hop {p.get('hop')} stalled "
                               f"({p.get('attempts')} attempts, {why})",
                    "evidence": [
                        f"pending msgid={p.get('msgid')} "
                        f"plane={p.get('plane')} "
                        f"hop={p.get('hop')} ({p.get('hop_kind')}) "
                        f"attempts={p.get('attempts')}/{budget} "
                        f"timer_armed={p.get('timer_armed')}",
                    ],
                    "topics": [p.get("topic")],
                })
        return findings

    def _find_lost_fence_ack(self) -> list[dict]:
        dead = set(self.dead_ranks())
        committed = {r[4] for r in self.by_kind("kvs_commit")}
        for r in self.events(".setroot"):
            sal = r[5]
            if isinstance(sal, (list, tuple)) and len(sal) > 1 and sal[1]:
                committed.add(sal[1])
        findings = []
        for rank, entry in sorted(self.brokers.items()):
            kvs = entry.get("kvs")
            if kvs is None or not entry.get("alive", True):
                continue
            for name, f in sorted(kvs.get("fences", {}).items()):
                if f.get("held", 0) == 0:
                    continue
                if name in committed:
                    continue        # committed elsewhere; release racing
                evidence = [
                    f"rank {rank}: fence {name!r} holds "
                    f"{f['held']} client request(s), saw "
                    f"{f['total_seen']}/{f['nprocs']} contributions, "
                    f"never committed anywhere",
                ]
                enters = [r for r in self.by_kind("kvs_fence_enter")
                          if r[4] == name]
                dead_enters = sorted({r[1] for r in enters} & dead)
                if dead_enters:
                    evidence.append(
                        f"dead rank(s) {dead_enters} accepted "
                        f"contributions for {name!r} before dying — "
                        f"their subtree counts died with them")
                findings.append({
                    "pathology": "lost-fence-ack",
                    "severity": "error",
                    "summary": f"fence {name!r} stalled at "
                               f"{f['total_seen']}/{f['nprocs']} with "
                               f"{f['held']} waiter(s) at rank {rank}",
                    "evidence": evidence,
                    "entity": ("fence", name),
                    "topics": ["kvs.fence"],
                })
        return findings

    def _find_orphaned_waiter(self) -> list[dict]:
        max_applied = 0
        for r in self.by_kind("kvs_apply_root"):
            max_applied = max(max_applied, r[4])
        for rank, entry in self.brokers.items():
            kvs = entry.get("kvs")
            if kvs is not None:
                max_applied = max(max_applied, kvs.get("version", 0))
        findings = []
        for rank, entry in sorted(self.brokers.items()):
            kvs = entry.get("kvs")
            if kvs is None or not entry.get("alive", True):
                continue
            orphans = [w for w in kvs.get("version_waiters", ())
                       if w > max_applied]
            if orphans:
                findings.append({
                    "pathology": "orphaned-waiter",
                    "severity": "error",
                    "summary": f"rank {rank}: waiter(s) on version(s) "
                               f"{orphans} but the cluster never got "
                               f"past {max_applied}",
                    "evidence": [
                        f"max applied root version anywhere: "
                        f"{max_applied}",
                        f"rank {rank} local version: "
                        f"{kvs.get('version')}",
                    ],
                    "topics": ["kvs.waitversion"],
                })
        return findings

    def _find_version_regression(self) -> list[dict]:
        findings = []
        versions = {rank: e["kvs"].get("version", 0)
                    for rank, e in self.brokers.items()
                    if e.get("kvs") is not None and e.get("alive", True)}
        vmax = max(versions.values(), default=0)
        for rank in sorted(self.brokers):
            seq = [r[4] for r in self.version_timeline(rank)]
            drops = [(a, b) for a, b in zip(seq, seq[1:]) if b < a]
            if drops:
                findings.append({
                    "pathology": "version-regression",
                    "severity": "error",
                    "summary": f"rank {rank}: applied root versions "
                               f"went backwards {drops[0][0]} -> "
                               f"{drops[0][1]}",
                    "evidence": [f"apply sequence: {seq}"],
                })
        # A rank stranded far behind the committed max while others
        # kept moving is the observable form of a regressed/forked
        # replica even when the monotonic guard hid the raw decrease.
        for rank, v in sorted(versions.items()):
            entry = self.brokers[rank]
            waiters = entry["kvs"].get("version_waiters", ())
            if v < vmax and any(w <= vmax for w in waiters):
                findings.append({
                    "pathology": "version-regression",
                    "severity": "warning",
                    "summary": f"rank {rank} stranded at version {v} "
                               f"(cluster reached {vmax}) with "
                               f"waiters {list(waiters)}",
                    "evidence": [f"per-rank versions: {versions}"],
                })
        return findings

    def _find_double_promote(self) -> list[dict]:
        promotes = self.by_kind("kvs_promote")
        if len(promotes) < 2:
            return []
        demotes = self.by_kind("kvs_demote")
        winners = sorted({r[1] for r in promotes})
        resolution = (
            f"resolved: rank {demotes[-1][1]} demoted at "
            f"t={demotes[-1][0]:.3f}" if demotes else
            "UNRESOLVED: no demote recorded — split brain")
        return [{
            "pathology": "double-promote",
            "severity": "warning" if demotes else "error",
            "summary": f"{len(promotes)} promotions (ranks {winners}) "
                       f"for one failover; {resolution}",
            "evidence": [f"promote at t={r[0]:.3f} rank={r[1]} "
                         f"version={r[4]}" for r in promotes]
                       + [f"demote at t={r[0]:.3f} rank={r[1]} "
                          f"(winner {r[4]})" for r in demotes],
        }]

    def _find_respawn_exhausted(self) -> list[dict]:
        findings = []
        for r in self.by_kind("wexec_lost"):
            t, rank, _seq, _k, jobid, reason, tasks = r
            respawns = [x for x in self.by_kind("wexec_respawn")
                        if str(x[4]) == str(jobid)]
            budget = None
            for entry in self.brokers.values():
                wexec = entry.get("wexec")
                if wexec is not None:
                    budget = wexec.get("max_restarts")
                    break
            evidence = [f"job {jobid!r} declared lost at t={t:.3f} "
                        f"by rank {rank}: {reason}",
                        f"tasks lost: {list(tasks) if tasks else []}"]
            if budget is not None:
                evidence.append(f"respawn budget max_restarts={budget}, "
                                f"{len(respawns)} respawn epoch(s) "
                                f"published before giving up")
            for x in respawns:
                evidence.append(f"  respawn epoch {x[5]} at "
                                f"t={x[0]:.3f} tasks={list(x[6] or [])}")
            findings.append({
                "pathology": "respawn-exhausted",
                "severity": "error",
                "summary": f"job {jobid!r} lost: {reason}",
                "evidence": evidence,
                "entity": ("job", str(jobid)),
                "topics": ["wexec.run"],
            })
        return findings

    def _find_root_failover(self) -> list[dict]:
        downs = [r for r in self.events("live.down") if r[5] == 0]
        promotes = self.by_kind("kvs_promote")
        if not downs or not promotes:
            return []
        t_down = downs[0][0]
        t_up = promotes[0][0]
        winner = promotes[0][1]
        return [{
            "pathology": "root-failover",
            "severity": "info",
            "summary": f"rank 0 died at t={t_down:.3f}; rank {winner} "
                       f"promoted at t={t_up:.3f} "
                       f"({t_up - t_down:.3f}s master outage)",
            "evidence": [f"{len(self.by_kind('kvs_election'))} election "
                         f"round record(s) across standbys",
                         f"newmaster event(s): "
                         f"{len(self.events('.newmaster'))}"],
        }]

    def _find_terminal_errors(self) -> list[dict]:
        if not self.terminal_errors:
            return []
        by_key: dict[tuple, list[dict]] = {}
        for e in self.terminal_errors:
            by_key.setdefault((e.get("topic"), e.get("code")),
                              []).append(e)
        evidence = []
        for (topic, code), errs in sorted(by_key.items(),
                                          key=lambda kv: str(kv[0])):
            first = errs[0]
            evidence.append(f"{len(errs)}x {topic} [{code}] — first at "
                            f"t={first.get('t', 0):.3f} rank="
                            f"{first.get('rank')}: "
                            f"{first.get('detail', '')}")
        return [{
            "pathology": "terminal-errors",
            "severity": "warning",
            "summary": f"{len(self.terminal_errors)} terminal client "
                       f"RpcError(s) across "
                       f"{len(by_key)} (topic, code) group(s)",
            "evidence": evidence,
            "topics": sorted({t for t, _c in by_key if t}),
        }]

    # -- static flow-graph cross-reference -----------------------------
    def _flow_notes(self, topic: str) -> list[str]:
        """Evidence lines tying ``topic`` back to the static graph."""
        graph = self.flow_graph or {}
        handlers = graph.get("handlers", {})
        key = topic if topic in handlers else (
            f"{topic}.default" if f"{topic}.default" in handlers
            else None)
        if key is None:
            return [f"static flow: {topic!r} matches no handler in "
                    f"the analyzed graph"]
        h = handlers[key]
        notes = [f"static flow: {key} -> {h.get('cls')}."
                 f"{h.get('method')} ({h.get('file')}:{h.get('line')})"
                 f", reply={h.get('reply') or '?'}"]
        if h.get("flags"):
            notes.append(f"static flow: analyzer flagged this handler: "
                         f"{', '.join(h['flags'])}")
        for cycle in graph.get("cycles", ()):
            if key in cycle:
                notes.append(f"static flow: {key} sits on a "
                             f"statically-detected wait cycle "
                             f"{' -> '.join(cycle)}")
        return notes

    def _annotate_flow(self, findings: list[dict]) -> None:
        if not self.flow_graph:
            return
        for f in findings:
            for topic in f.get("topics", ()):
                if topic:
                    f["evidence"].extend(self._flow_notes(topic))

    _MATCHERS = (
        _find_stalled_retransmission,
        _find_lost_fence_ack,
        _find_orphaned_waiter,
        _find_version_regression,
        _find_double_promote,
        _find_respawn_exhausted,
        _find_root_failover,
        _find_terminal_errors,
    )

    def diagnose(self) -> dict:
        """Run every matcher; return the diagnosis document."""
        findings: list[dict] = []
        for matcher in self._MATCHERS:
            findings.extend(matcher(self))
        order = {"error": 0, "warning": 1, "info": 2}
        findings.sort(key=lambda f: (order.get(f["severity"], 3),
                                     f["pathology"]))
        self._annotate_flow(findings)
        timelines: dict[str, list] = {}
        for f in findings:
            entity = f.get("entity")
            if entity is None:
                continue
            kind, name = entity
            key = f"{kind}:{name}"
            if key in timelines:
                continue
            if kind == "fence":
                timelines[key] = [list(r) for r in
                                  self.fence_timeline(name)]
            elif kind == "job":
                timelines[key] = [list(r) for r in
                                  self.job_timeline(name)]
        if self.by_kind("kvs_promote") or self.by_kind("kvs_election"):
            timelines["election"] = [list(r) for r in
                                     self.election_timeline()]
        return {
            "meta": self.meta,
            "dead_ranks": self.dead_ranks(),
            "n_records": len(self.records),
            "findings": findings,
            "timelines": timelines,
        }


def diagnose(paths: list[str],
             flow_graph_path: Optional[str] = None) -> dict:
    """Load bundles from ``paths`` and run the full diagnosis."""
    flow_graph = None
    if flow_graph_path:
        with open(flow_graph_path, encoding="utf-8") as fh:
            flow_graph = json.load(fh)
    return Doctor([load_bundle(p) for p in paths],
                  flow_graph=flow_graph).diagnose()


# ----------------------------------------------------------------------
# report rendering / CLI
# ----------------------------------------------------------------------
def _render(diag: dict) -> str:
    meta = diag["meta"]
    lines = [
        "post-mortem doctor",
        "==================",
        f"trigger : {meta.get('reason', '?')} "
        f"(kind={meta.get('kind', '?')}, t={meta.get('t', 0):.3f})",
        f"session : {meta.get('size', '?')} brokers, "
        f"dead={diag['dead_ranks']}",
        f"records : {diag['n_records']} flight records merged",
        "",
    ]
    findings = diag["findings"]
    if not findings:
        lines.append("no known pathology matched — the rings look "
                     "clean; inspect timelines/metrics manually.")
    for i, f in enumerate(findings, 1):
        lines.append(f"[{i}] {f['severity'].upper()}: "
                     f"{f['pathology']}")
        lines.append(f"    {f['summary']}")
        for ev in f["evidence"]:
            lines.append(f"      - {ev}")
    for key, rows in diag["timelines"].items():
        lines.append("")
        lines.append(f"timeline {key} ({len(rows)} records):")
        for t, rank, _seq, kind, a, b, c in rows[-20:]:
            detail = " ".join(str(x) for x in (a, b, c)
                              if x is not None)
            lines.append(f"  t={t:9.4f} rank={rank:>3} {kind:<16} "
                         f"{detail}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.doctor",
        description="Diagnose post-mortem bundles into a root-cause "
                    "report.")
    ap.add_argument("bundles", nargs="+",
                    help="post-mortem bundle JSON file(s)")
    ap.add_argument("--json", action="store_true",
                    help="emit the raw diagnosis document")
    ap.add_argument("--expect", metavar="PATHOLOGY",
                    help="exit nonzero unless this pathology was found")
    ap.add_argument("--flow-graph", metavar="PATH",
                    help="flow-graph JSON (repro.analysis flow "
                         "--graph-json) to cross-reference findings "
                         "against the static handler graph")
    args = ap.parse_args(argv)
    diag = diagnose(args.bundles, flow_graph_path=args.flow_graph)
    if args.json:
        print(json.dumps(diag, indent=1, sort_keys=True, default=str))
    else:
        print(_render(diag))
    if args.expect:
        found = {f["pathology"] for f in diag["findings"]}
        if args.expect not in found:
            print(f"\nEXPECTED pathology {args.expect!r} not found "
                  f"(got: {sorted(found)})", file=sys.stderr)
            return 1
        print(f"\nexpected pathology {args.expect!r}: FOUND")
    return 0


if __name__ == "__main__":
    sys.exit(main())
