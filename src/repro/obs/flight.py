"""Flight recorder: a per-broker black box for post-mortem diagnosis.

Full span tracing is too heavy to leave on at the 8k-65k-producer
scales the ROADMAP targets, yet when a chaos run stalls the *recent
past* of every broker is exactly what the post-mortem needs.  The
:class:`FlightRecorder` squares that: a fixed-capacity ring buffer of
compact structured records that stays on **always** — tracing off,
sanitizers off, benchmarks included — because an append is O(1) and
allocates a single small tuple, comparable to the per-message counter
update the broker already pays.

Records are 6-tuples ``(t, seq, kind, a, b, c)``:

- ``t`` — simulated time of the record;
- ``seq`` — per-recorder monotonically increasing sequence number
  (total order within one broker even when ``t`` ties);
- ``kind`` — a short string tag (``send``, ``event``, ``dispatch``,
  ``retransmit``, ``kvs_promote``, ...);
- ``a``/``b``/``c`` — kind-specific payload slots (topic, rank,
  version, ...), kept to cheap scalars/small tuples.

The recorder is a **pure observer** in the simulation's sense: it
schedules no events, draws no randomness, and never affects message
sizes — so enabling it (it is never disabled) cannot perturb the
event stream, and same-seed runs produce bit-identical rings.

Capacity is rounded up to a power of two so the hot-path index is a
single mask; old records are overwritten silently and the overwrite
count is reported as ``dropped`` in :meth:`snapshot`.
"""

from __future__ import annotations

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Fixed-capacity ring of structured flight records."""

    __slots__ = ("capacity", "_mask", "_buf", "_n")

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        cap = 1
        while cap < capacity:
            cap <<= 1
        self.capacity = cap
        self._mask = cap - 1
        self._buf: list = [None] * cap
        self._n = 0

    # -- hot path -------------------------------------------------------
    def rec(self, t: float, kind: str, a=None, b=None, c=None) -> None:
        """Append one record (O(1): one tuple, one store, one add)."""
        i = self._n
        self._buf[i & self._mask] = (t, i, kind, a, b, c)
        self._n = i + 1

    # -- introspection --------------------------------------------------
    @property
    def appended(self) -> int:
        """Total records ever appended (including overwritten ones)."""
        return self._n

    @property
    def dropped(self) -> int:
        """Records lost to ring wrap-around."""
        n = self._n - self.capacity
        return n if n > 0 else 0

    @property
    def peak(self) -> int:
        """Peak ring occupancy (records simultaneously retained)."""
        return self._n if self._n < self.capacity else self.capacity

    def __len__(self) -> int:
        return self.peak

    def records(self) -> list:
        """Retained records, oldest first (each a 6-tuple)."""
        n = self._n
        if n <= self.capacity:
            return self._buf[:n]
        mask = self._mask
        buf = self._buf
        return [buf[i & mask] for i in range(n - self.capacity, n)]

    def snapshot(self) -> dict:
        """JSON-able dump: retained records plus occupancy telemetry."""
        return {
            "capacity": self.capacity,
            "appended": self._n,
            "dropped": self.dropped,
            "peak": self.peak,
            "records": [list(r) for r in self.records()],
        }

    def clear(self) -> None:
        """Reset the ring (tests / reuse between workload phases)."""
        self._buf = [None] * self.capacity
        self._n = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FlightRecorder {self.peak}/{self.capacity} "
                f"(appended={self._n})>")
