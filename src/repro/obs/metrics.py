"""Metrics registry: counters, gauges, log-bucketed histograms.

The paper's Table I promises ``mon``/``log`` services that make a
running session introspectable; this module supplies the *data model*
those services (and the ``stats`` comms module) serve.  Design goals,
in order:

1. **O(1) hot-path cost** — incrementing a counter or observing a
   histogram sample must be cheap enough to leave in the broker's
   per-message path permanently (no sampling switch to forget).
2. **Bounded memory** — histograms keep O(#buckets) integers, never
   samples, so a million-RPC run costs the same as a ten-RPC run
   (unlike the legacy :class:`~repro.sim.trace.StatSeries`, which
   retains every sample).
3. **Mergeable** — two registries (or two snapshots of the same
   registry) combine losslessly for counters and bucket-exactly for
   histograms, which is what lets the ``stats`` module tree-reduce a
   session-wide aggregate without shipping raw samples.

Histograms use logarithmic buckets (a geometric ladder of upper
bounds): quantile estimates are exact to within one bucket — a
relative-error guarantee of ``growth - 1`` per estimate — and two
histograms built with the same ladder merge by adding bucket counts.
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from typing import Any, Iterable, Optional

__all__ = [
    "Counter", "Gauge", "Histogram", "CounterVec", "MetricsRegistry",
    "merge_snapshots", "snapshot_to_prometheus", "parse_prometheus_text",
    "DEFAULT_TIME_LADDER", "DEFAULT_SIZE_LADDER", "log_ladder",
]


def log_ladder(lo: float, hi: float, growth: float = 2.0) -> tuple:
    """Geometric bucket upper bounds from ``lo`` up to at least ``hi``.

    The returned tuple is the histogram's finite bucket ladder; values
    above the last bound land in the overflow bucket, values <= ``lo``
    in the first.  With ``growth=2`` a [1e-7, 100] time ladder costs
    ~31 buckets.
    """
    if lo <= 0 or hi <= lo or growth <= 1.0:
        raise ValueError(f"bad ladder ({lo}, {hi}, {growth})")
    n = int(math.ceil(math.log(hi / lo, growth))) + 1
    return tuple(lo * growth ** i for i in range(n))


#: Latency ladder: 100 ns .. ~200 s in powers of two (32 buckets).
DEFAULT_TIME_LADDER = log_ladder(1e-7, 100.0)
#: Count/size ladder: 1 .. ~1M in powers of two (21 buckets).
DEFAULT_SIZE_LADDER = log_ladder(1.0, 1 << 20)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, v: float) -> None:
        """Replace the gauge's value."""
        self.value = v

    def snapshot(self) -> dict:
        return {"type": "gauge", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Log-bucketed distribution: O(#buckets) memory, mergeable.

    ``bounds`` are the finite bucket *upper* bounds (ascending); one
    extra overflow bucket catches everything above the last bound.
    ``count``/``total``/``vmin``/``vmax`` are tracked exactly;
    quantiles are estimated by linear interpolation inside the owning
    bucket, so they are never off by more than one bucket width.
    """

    __slots__ = ("name", "labels", "bounds", "buckets", "count", "total",
                 "vmin", "vmax")

    def __init__(self, name: str, labels: tuple = (),
                 bounds: tuple = DEFAULT_TIME_LADDER):
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, v: float) -> None:
        """Record one sample."""
        self.buckets[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    @property
    def mean(self) -> float:
        """Exact mean of all observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) by bucket
        interpolation; exact to within one bucket width."""
        if self.count == 0:
            return 0.0
        if q <= 0:
            return self.vmin
        if q >= 1:
            return self.vmax
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else (
                    min(self.vmin, self.bounds[0]) if i < len(self.bounds)
                    else self.bounds[-1])
                hi = self.bounds[i] if i < len(self.bounds) else self.vmax
                lo = max(lo, self.vmin)
                hi = min(hi, self.vmax)
                if hi <= lo:
                    return lo
                return lo + (hi - lo) * (rank - seen) / n
            seen += n
        return self.vmax  # pragma: no cover - rank <= count always hits

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (same ladder required)."""
        if other.bounds != self.bounds:
            raise ValueError(f"histogram {self.name!r}: incompatible "
                             f"bucket ladders")
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    def summary(self) -> dict:
        """Count/mean/min/max plus interpolated p50/p95/p99."""
        if self.count == 0:
            return {"count": 0}
        return {"count": self.count, "mean": self.mean,
                "min": self.vmin, "max": self.vmax,
                "p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    def snapshot(self) -> dict:
        out = {"type": "histogram", "name": self.name,
               "labels": dict(self.labels), "bounds": list(self.bounds),
               "buckets": list(self.buckets), "count": self.count,
               "sum": self.total}
        if self.count:
            out["min"] = self.vmin
            out["max"] = self.vmax
        return out


class CounterVec:
    """A family of counters over a fixed label-name tuple, stored as a
    plain ``dict[label-values-tuple, int]``.

    This is the hot-path form: the broker's per-message accounting
    increments one dict slot per send, exactly as the legacy raw
    ``msg_counts`` dict did, but the family is registered so snapshots
    and merges see every cell with proper labels.
    """

    __slots__ = ("name", "labels", "label_names", "data")

    def __init__(self, name: str, label_names: tuple, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.label_names = label_names
        self.data: dict[tuple, int] = {}

    def inc(self, key: tuple, n: int = 1) -> None:
        """Add ``n`` to the cell at label-value tuple ``key``."""
        self.data[key] = self.data.get(key, 0) + n

    def snapshot(self) -> list[dict]:
        return [{"type": "counter", "name": self.name,
                 "labels": {**dict(self.labels),
                            **dict(zip(self.label_names, key))},
                 "value": n}
                for key, n in sorted(self.data.items())]


class MetricsRegistry:
    """One broker's (or process's) named metric instruments.

    Instruments are created on first use and keyed by
    ``(name, label-values)``; constant ``labels`` passed at registry
    construction (e.g. ``rank``) are attached to every instrument.
    """

    def __init__(self, **labels: Any):
        self.labels = tuple(sorted(labels.items()))
        self._metrics: dict[tuple, Any] = {}
        self._vecs: list[CounterVec] = []

    # -- instrument factories (get-or-create) ---------------------------
    def _get(self, cls, name: str, labels: dict, **kw):
        key = (name, tuple(sorted(labels.items())))
        inst = self._metrics.get(key)
        if inst is None:
            inst = self._metrics[key] = cls(
                name, labels=self.labels + key[1], **kw)
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get-or-create the counter ``name`` with ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get-or-create the gauge ``name`` with ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds: tuple = DEFAULT_TIME_LADDER,
                  **labels: Any) -> Histogram:
        """Get-or-create the histogram ``name`` with ``labels``."""
        return self._get(Histogram, name, labels, bounds=bounds)

    def counter_vec(self, name: str, label_names: tuple) -> CounterVec:
        """Create (once) a counter family keyed by ``label_names``."""
        for vec in self._vecs:
            if vec.name == name:
                return vec
        vec = CounterVec(name, label_names, labels=self.labels)
        self._vecs.append(vec)
        return vec

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able snapshot of every instrument (deterministic order)."""
        metrics: list[dict] = []
        for (name, _lv), inst in sorted(self._metrics.items()):
            metrics.append(inst.snapshot())
        for vec in self._vecs:
            metrics.extend(vec.snapshot())
        metrics.sort(key=_metric_sort_key)
        return {"labels": dict(self.labels), "metrics": metrics}

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the current snapshot."""
        return snapshot_to_prometheus(self.snapshot())


def _metric_sort_key(m: dict) -> tuple:
    return (m["name"], tuple(sorted((k, str(v))
                                    for k, v in m["labels"].items())))


def _strip(labels: dict, drop: Iterable[str]) -> tuple:
    return tuple(sorted((k, v) for k, v in labels.items()
                        if k not in drop))


def merge_snapshots(snapshots: Iterable[dict],
                    drop_labels: Iterable[str] = ("rank",)) -> dict:
    """Merge registry snapshots into one aggregate snapshot.

    ``drop_labels`` (by default the per-broker ``rank``) are removed
    before matching, so the same instrument from different brokers
    lands in one aggregate cell: counters and gauges sum; histograms
    merge bucket-wise (count-exact, quantiles within one bucket).
    """
    drop = tuple(drop_labels)
    merged: dict[tuple, dict] = {}
    for snap in snapshots:
        for m in snap.get("metrics", ()):
            labels = {k: v for k, v in m["labels"].items() if k not in drop}
            key = (m["name"], m["type"], _strip(m["labels"], drop))
            cell = merged.get(key)
            if cell is None:
                cell = merged[key] = dict(m, labels=labels)
                if m["type"] == "histogram":
                    cell["buckets"] = list(m["buckets"])
                continue
            if m["type"] in ("counter", "gauge"):
                cell["value"] += m["value"]
            else:
                if cell["bounds"] != m["bounds"]:
                    raise ValueError(
                        f"histogram {m['name']!r}: incompatible ladders")
                cell["buckets"] = [a + b for a, b in
                                   zip(cell["buckets"], m["buckets"])]
                cell["count"] += m["count"]
                cell["sum"] += m["sum"]
                if m.get("count"):
                    cell["min"] = min(cell.get("min", math.inf), m["min"])
                    cell["max"] = max(cell.get("max", -math.inf), m["max"])
    metrics = sorted(merged.values(), key=_metric_sort_key)
    return {"labels": {}, "merged_from": "snapshots", "metrics": metrics}


def histogram_from_snapshot(m: dict) -> Histogram:
    """Rebuild a :class:`Histogram` from its snapshot dict (used to run
    quantile estimation over merged aggregates)."""
    h = Histogram(m["name"], bounds=tuple(m["bounds"]))
    h.buckets = list(m["buckets"])
    h.count = m["count"]
    h.total = m["sum"]
    h.vmin = m.get("min", math.inf)
    h.vmax = m.get("max", -math.inf)
    return h


def _prom_escape(value: Any) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_prom_escape(v)}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def snapshot_to_prometheus(snap: dict,
                           help_texts: Optional[dict] = None) -> str:
    """Render a registry (or merged) snapshot as Prometheus text.

    Emits the full exposition format promtool expects: one ``# HELP``
    and one ``# TYPE`` line per metric family, *before* any of that
    family's samples (all samples of a family contiguous), cumulative
    ``le``-labelled histogram buckets ending in ``+Inf`` (whose value
    equals ``_count``), and escaped label values.  ``help_texts`` maps
    family name to its help string; families not covered get a
    generic line (presence is what parsers require).
    """
    families: dict[str, list[dict]] = {}
    types: dict[str, str] = {}
    for m in snap.get("metrics", ()):
        families.setdefault(m["name"], []).append(m)
        types.setdefault(m["name"], m["type"])
    lines: list[str] = []
    for name in sorted(families):
        mtype = types[name]
        help_text = (help_texts or {}).get(
            name, f"{name} ({mtype}) from the repro simulated session.")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        for m in families[name]:
            labels = m["labels"]
            if m["type"] in ("counter", "gauge"):
                lines.append(f"{name}{_prom_labels(labels)} {m['value']}")
                continue
            acc = 0
            for bound, n in zip(m["bounds"], m["buckets"]):
                acc += n
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels({**labels, 'le': f'{bound:g}'})}"
                    f" {acc}")
            acc += m["buckets"][len(m["bounds"])]
            lines.append(f"{name}_bucket"
                         f"{_prom_labels({**labels, 'le': '+Inf'})} {acc}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {m['sum']}")
            # _count is emitted from the bucket accumulation so it is
            # equal to the +Inf sample by construction.
            lines.append(f"{name}_count{_prom_labels(labels)} {acc}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$")
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_prometheus_text(text: str) -> list[str]:
    """Promtool-style lint of a text exposition; returns problems.

    Checks the invariants an exposition parser enforces: ``# TYPE``
    (with a known type) and ``# HELP`` exactly once per family and
    before its samples, every sample belonging to a declared family
    (histogram samples only via ``_bucket``/``_sum``/``_count``),
    parseable values, and per-histogram-series cumulative buckets —
    non-decreasing counts over increasing ``le`` ending in a ``+Inf``
    bucket equal to ``_count``.  Empty list = clean.
    """
    problems: list[str] = []
    helped: set[str] = set()
    typed: dict[str, str] = {}
    sampled: set[str] = set()
    # (family, labels-minus-le) -> list of (le, value); _count values.
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}

    def family_of(name: str) -> str:
        for fam, ftype in typed.items():
            if name == fam:
                return fam
            if (ftype == "histogram" and name.startswith(fam)
                    and name[len(fam):] in _HIST_SUFFIXES):
                return fam
        return name

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                problems.append(f"line {lineno}: malformed HELP")
                continue
            fam = parts[2]
            if fam in helped:
                problems.append(f"line {lineno}: duplicate HELP {fam}")
            if fam in sampled:
                problems.append(
                    f"line {lineno}: HELP {fam} after its samples")
            helped.add(fam)
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE")
                continue
            fam, ftype = parts[2], parts[3]
            if ftype not in ("counter", "gauge", "histogram",
                            "summary", "untyped"):
                problems.append(
                    f"line {lineno}: unknown type {ftype!r} for {fam}")
            if fam in typed:
                problems.append(f"line {lineno}: duplicate TYPE {fam}")
            if fam in sampled:
                problems.append(
                    f"line {lineno}: TYPE {fam} after its samples")
            typed[fam] = ftype
            continue
        if line.startswith("#"):
            continue                         # free-form comment
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = m.group("name")
        try:
            value = float(m.group("value"))
        except ValueError:
            problems.append(f"line {lineno}: bad value {m.group('value')!r}")
            continue
        labels = dict(_LABEL_RE.findall(m.group("labels") or ""))
        fam = family_of(name)
        sampled.add(fam)
        if fam not in typed:
            problems.append(f"line {lineno}: sample {name} has no TYPE")
            continue
        if fam not in helped:
            problems.append(f"line {lineno}: sample {name} has no HELP")
        if typed[fam] == "histogram":
            key = (fam, tuple(sorted((k, v) for k, v in labels.items()
                                     if k != "le")))
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    problems.append(
                        f"line {lineno}: {name} missing le label")
                    continue
                lev = math.inf if le == "+Inf" else float(le)
                buckets.setdefault(key, []).append((lev, value))
            elif name.endswith("_count"):
                counts[key] = value
    for (fam, labels), series in sorted(buckets.items()):
        prev_le, prev_v = -math.inf, 0.0
        for le, v in series:                 # emission order
            if le <= prev_le:
                problems.append(f"{fam}{dict(labels)}: le {le} "
                                f"not increasing")
            if v < prev_v:
                problems.append(f"{fam}{dict(labels)}: bucket counts "
                                f"not cumulative at le={le}")
            prev_le, prev_v = le, v
        if prev_le != math.inf:
            problems.append(f"{fam}{dict(labels)}: missing +Inf bucket")
        elif (fam, labels) in counts and counts[fam, labels] != prev_v:
            problems.append(f"{fam}{dict(labels)}: _count "
                            f"{counts[fam, labels]} != +Inf {prev_v}")
    return problems
