"""Post-mortem bundles: snapshot a session's black boxes on failure.

When a chaos run stalls, a sanitizer fires, or a client RPC dies a
terminal death, the *recent past* of every broker — what it sent,
dispatched, retransmitted, promoted, respawned — is the evidence a
diagnosis needs.  :func:`capture_bundle` freezes that evidence into
one JSON-able document:

- per-broker flight-recorder rings (:mod:`repro.obs.flight`),
  including dead brokers (their rings hold the era that killed them);
- a pending-RPC census per broker (in-flight tree/ring legs with
  attempt counts and timer state) and the KVS waiter census (held
  fences, version waiters, replication waiters);
- per-broker metrics snapshots plus session-wide retry totals;
- the session's terminal client-error log;
- error-trace span fragments when tracing is on (always tail-kept by
  the sampler, see :class:`~repro.obs.span.SpanTracer`).

``python -m repro.obs.doctor bundle.json`` (:mod:`repro.obs.doctor`)
merges one or more bundles into causal timelines and pattern-matches
known pathologies into a root-cause report.
"""

from __future__ import annotations

import json
from typing import Any, Optional

__all__ = ["capture_bundle", "write_bundle", "load_bundle"]

#: Bundle schema version; the doctor refuses unknown majors.
BUNDLE_VERSION = 1


def capture_bundle(session, reason: str, kind: str = "",
                   extra: Optional[dict] = None) -> dict:
    """Snapshot ``session`` into a post-mortem bundle dict.

    ``reason`` is the human-readable trigger ("hung waiters", "chaos
    kill", "sanitizer finding", ...); ``kind`` tags the harness that
    captured it; ``extra`` merges arbitrary harness context (fault
    plan stats, kill schedule, report fields) into ``meta``.

    Pure observation: walks existing state, schedules nothing.
    """
    sim = session.sim
    meta: dict[str, Any] = {
        "bundle_version": BUNDLE_VERSION,
        "reason": reason,
        "kind": kind,
        "t": sim.now,
        "size": session.size,
        "retransmit_max": session.retransmit_max,
        "retransmit_timeout": session.retransmit_timeout,
    }
    if extra:
        meta.update(extra)
    brokers = []
    for broker in session.brokers:
        entry: dict[str, Any] = {
            "rank": broker.rank,
            "alive": broker.alive,
            "parent": broker.parent,
            "children": list(broker.children),
            "inbox_depth": len(broker._inbox._items),
            "inbox_peak": broker.inbox_peak,
            "flight": broker.flight.snapshot(),
            "pending": broker.pending_census(),
            "metrics": broker.metrics_snapshot(),
        }
        kvs = broker.modules.get("kvs")
        if kvs is not None:
            entry["kvs"] = kvs.waiter_census()
        wexec = broker.modules.get("wexec")
        if wexec is not None:
            entry["wexec"] = {
                "respawns": wexec.respawns,
                "max_restarts": wexec.max_restarts,
                "jobs": sorted(str(j) for j in wexec.jobs),
                "lost_jobs": [str(j) for j in wexec.lost_jobs],
            }
        health = broker.modules.get("health")
        if health is not None and broker.parent is None:
            entry["health"] = health.cluster_view()
        brokers.append(entry)
    bundle: dict[str, Any] = {
        "meta": meta,
        "terminal_errors": list(session.terminal_errors),
        "retry_stats": session.retry_stats(),
        "plane_bytes": session.plane_bytes(),
        "brokers": brokers,
    }
    tracer = session.span_tracer
    if tracer is not None:
        bundle["error_spans"] = [s.as_dict()
                                 for s in tracer.error_spans()]
    return bundle


def write_bundle(bundle: dict, path: str) -> str:
    """Serialize ``bundle`` to ``path`` (JSON, stable key order)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bundle, fh, indent=1, sort_keys=True, default=str)
        fh.write("\n")
    return path


def load_bundle(path: str) -> dict:
    """Read a bundle back; raises ``ValueError`` on schema mismatch."""
    with open(path, "r", encoding="utf-8") as fh:
        bundle = json.load(fh)
    ver = bundle.get("meta", {}).get("bundle_version")
    if ver != BUNDLE_VERSION:
        raise ValueError(f"{path}: bundle version {ver!r}, "
                         f"expected {BUNDLE_VERSION}")
    return bundle
