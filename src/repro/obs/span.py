"""Causal spans: distributed tracing for the simulated session.

A *trace* is the full causal tree of one client API call: the root
span opens when :meth:`Handle.rpc` (or ``publish``) is invoked, and
child spans open at every hop the message takes — broker forwarding,
module dispatch, KVS flush/commit relays, retries, retransmissions —
each recording its parent's span id.  Because the whole session runs
inside one simulation, a single :class:`SpanTracer` owned by the
session collects every span; span ids come from a deterministic
counter, never from the clock or RNG, so tracing cannot perturb the
simulation.

Span identity is the triple ``(trace_id, span_id, parent_span_id)``;
messages carry ``(trace_id, span_id)`` in the fixed-size header frame
(:class:`~repro.cmb.message.Message.span`), which rides free because
header size is a constant — enabling the byte-identical guarantee.

Exports Chrome trace-event JSON (the ``ph: "X"`` complete-event form)
loadable in Perfetto / ``chrome://tracing``, and computes the critical
path of a trace: the chain of spans that determined its end time.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Optional

__all__ = ["Span", "SpanTracer"]

#: Multiplier from simulated seconds to trace-event microseconds.
_US = 1e6


class Span:
    """One timed operation inside a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "cat",
                 "rank", "t0", "t1", "args")

    def __init__(self, trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str, cat: str,
                 rank: int, t0: float):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.rank = rank
        self.t0 = t0
        self.t1: Optional[float] = None     # None while still open
        self.args: dict[str, Any] = {}

    @property
    def duration(self) -> float:
        return (self.t1 if self.t1 is not None else self.t0) - self.t0

    def as_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "cat": self.cat, "rank": self.rank,
                "t0": self.t0, "t1": self.t1, "args": self.args}


class SpanTracer:
    """Collects spans for every trace in a session.

    All methods are no-ops in terms of simulation state: they never
    create events, draw randomness, or alter message sizes.  The
    session holds at most one tracer; when it is ``None`` the
    instrumentation sites skip all work (the byte-identical path).
    """

    def __init__(self, now_fn, sample_every: int = 1,
                 span_budget: Optional[int] = None):
        self._now = now_fn
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self.spans: list[Span] = []
        self._open: dict[int, Span] = {}
        #: Head-sampling stride: trace ``i`` is kept iff
        #: ``(i - 1) % sample_every == 0``.  1 = keep everything
        #: (the default, byte-identical to the pre-sampling tracer).
        self.sample_every = max(1, int(sample_every))
        #: Soft cap on retained spans; when exceeded after a
        #: compaction, ``sample_every`` doubles (adaptive back-off).
        self.span_budget = span_budget
        self.dropped_traces = 0
        self.dropped_spans = 0
        # Unsampled traces are *recorded anyway* until their root span
        # closes: if any span in them records an ``error`` arg they are
        # kept (tail sampling — errors are always worth the bytes);
        # otherwise the trace id moves to ``_discard`` and its spans
        # are swept out by the next amortized compaction.
        self._unsampled: set[int] = set()
        self._error: set[int] = set()
        self._discard: set[int] = set()
        self._compact_at = 4096

    # -- recording ------------------------------------------------------
    def _note_args(self, span: Span, args: dict) -> None:
        span.args.update(args)
        if "error" in args:
            self._error.add(span.trace_id)
            # Tail rescue: an error arriving after the root closed
            # un-discards whatever spans of the trace still remain.
            self._discard.discard(span.trace_id)

    def start_trace(self, name: str, rank: int, **args: Any) -> Span:
        """Open the root span of a new trace (one per client call)."""
        tid = next(self._trace_ids)
        span = Span(tid, next(self._span_ids), None,
                    name, "client", rank, self._now())
        self._note_args(span, args)
        if self.sample_every > 1 and (tid - 1) % self.sample_every:
            self._unsampled.add(tid)
        self.spans.append(span)
        self._open[span.span_id] = span
        return span

    def start_span(self, parent: Optional[tuple], name: str, cat: str,
                   rank: int, **args: Any) -> Optional[Span]:
        """Open a child span under ``parent`` = ``(trace_id, span_id)``.

        Returns ``None`` when the parent is unknown (an untraced
        message), so call sites can stay unconditional.
        """
        if not parent:
            return None
        span = Span(parent[0], next(self._span_ids), parent[1],
                    name, cat, rank, self._now())
        self._note_args(span, args)
        self.spans.append(span)
        self._open[span.span_id] = span
        return span

    def finish(self, span: Optional[Span], **args: Any) -> None:
        """Close ``span`` at the current simulated time."""
        if span is None or span.t1 is not None:
            return
        span.t1 = self._now()
        self._note_args(span, args)
        self._open.pop(span.span_id, None)
        if span.parent_id is None and span.trace_id in self._unsampled:
            # Root closed: the head-sampling verdict becomes final
            # unless an error span tail-rescued (or later rescues) it.
            self._unsampled.discard(span.trace_id)
            if span.trace_id not in self._error:
                self._discard.add(span.trace_id)
                self.dropped_traces += 1
                if len(self.spans) >= self._compact_at:
                    self._compact()

    def _compact(self) -> None:
        """Sweep spans of discarded traces (amortized O(1)/span)."""
        drop = self._discard
        before = len(self.spans)
        self.spans = [s for s in self.spans if s.trace_id not in drop]
        self.dropped_spans += before - len(self.spans)
        self._compact_at = max(4096, 2 * len(self.spans))
        if (self.span_budget is not None
                and len(self.spans) > self.span_budget):
            # Still over budget after sweeping: halve the head-sample
            # rate for traces not yet started.
            self.sample_every *= 2

    def _purged_spans(self) -> list[Span]:
        """Retained spans with discarded-trace leftovers filtered out
        (late children can arrive after their trace was discarded)."""
        if not self._discard:
            return self.spans
        drop = self._discard
        return [s for s in self.spans if s.trace_id not in drop]

    def instant(self, parent: Optional[tuple], name: str, cat: str,
                rank: int, **args: Any) -> None:
        """Record a zero-duration marker (retry, drop, replay hit...)."""
        span = self.start_span(parent, name, cat, rank, **args)
        if span is not None:
            span.t1 = span.t0
            self._open.pop(span.span_id, None)

    def close_open(self) -> int:
        """Close any still-open spans (end of run); returns how many."""
        leftover = list(self._open.values())
        for span in leftover:
            span.t1 = self._now()
        self._open.clear()
        return len(leftover)

    # -- analysis -------------------------------------------------------
    def traces(self) -> dict[int, list[Span]]:
        """Spans grouped by trace id (insertion-ordered)."""
        out: dict[int, list[Span]] = {}
        for span in self._purged_spans():
            out.setdefault(span.trace_id, []).append(span)
        return out

    def validate(self) -> list[str]:
        """Structural check: every parent resolves within its trace and
        each trace has exactly one root.  Returns human-readable
        problems (empty = connected)."""
        problems: list[str] = []
        for tid, spans in self.traces().items():
            ids = {s.span_id for s in spans}
            roots = [s for s in spans if s.parent_id is None]
            if len(roots) != 1:
                problems.append(f"trace {tid}: {len(roots)} roots")
            for s in spans:
                if s.parent_id is not None and s.parent_id not in ids:
                    problems.append(f"trace {tid}: span {s.span_id} "
                                    f"({s.name}) parent {s.parent_id} "
                                    f"missing")
                if s.t1 is None:
                    problems.append(f"trace {tid}: span {s.span_id} "
                                    f"({s.name}) never finished")
        return problems

    def error_spans(self) -> list[Span]:
        """Spans belonging to traces that recorded an ``error`` arg —
        the fragments a post-mortem bundle ships regardless of
        sampling (tail-kept, see ``__init__``)."""
        if not self._error:
            return []
        keep = self._error
        return [s for s in self.spans if s.trace_id in keep]

    def critical_path(self, trace_id: int) -> list[Span]:
        """The root-to-leaf chain that determined the trace's end time.

        Walk from the root, at each step descending into the child
        whose end time is latest (ties broken by span id for
        determinism); the returned chain is where the elapsed time of
        the client call was actually spent.
        """
        spans = self.traces().get(trace_id, [])
        children: dict[Optional[int], list[Span]] = {}
        root = None
        for s in spans:
            if s.parent_id is None:
                root = s
            else:
                children.setdefault(s.parent_id, []).append(s)
        if root is None:
            return []
        path = [root]
        node = root
        while True:
            kids = children.get(node.span_id)
            if not kids:
                return path
            node = max(kids, key=lambda s: (s.t1 or s.t0, -s.span_id))
            path.append(node)

    def critical_path_report(self, trace_id: int) -> str:
        """A readable one-line-per-hop rendering of the critical path."""
        path = self.critical_path(trace_id)
        if not path:
            return f"trace {trace_id}: no spans"
        lines = [f"trace {trace_id}: {path[0].name} "
                 f"total {path[0].duration * 1e3:.3f} ms, "
                 f"{len(path)} hops on critical path"]
        for depth, s in enumerate(path):
            lines.append(f"  {'  ' * depth}{s.name} [{s.cat}] "
                         f"rank={s.rank} "
                         f"t={s.t0 * 1e3:.3f}..{(s.t1 or s.t0) * 1e3:.3f} ms"
                         f" ({s.duration * 1e3:.3f} ms)")
        return "\n".join(lines)

    # -- export ---------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON (object form), Perfetto-loadable.

        Brokers map to *processes* (pid = rank) and traces to
        *threads* (tid = trace id), so Perfetto lays each broker's
        work out in its own track while keeping trace grouping
        visible in the args.
        """
        events: list[dict] = []
        ranks: set[int] = set()
        for s in self._purged_spans():
            ranks.add(s.rank)
            events.append({
                "name": s.name, "cat": s.cat, "ph": "X",
                "ts": s.t0 * _US,
                "dur": max(0.0, (s.t1 if s.t1 is not None else s.t0)
                           - s.t0) * _US,
                "pid": s.rank, "tid": s.trace_id,
                "args": {**s.args, "span_id": s.span_id,
                         "parent_id": s.parent_id,
                         "trace_id": s.trace_id},
            })
        for rank in sorted(ranks):
            events.append({"name": "process_name", "ph": "M", "pid": rank,
                           "args": {"name": f"broker-{rank}"}})
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome_trace(), indent=indent,
                          sort_keys=True)

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=1))
