"""The generalized resource model (paper Section III).

Typed resource graphs (:mod:`.model`, :mod:`.types`), allocation
bookkeeping with consumable charging (:mod:`.pool`), and hierarchical
admission constraints such as power budgets (:mod:`.constraints`).
"""

from . import types
from .constraints import (MaxCoresPerJob, MaxNodesPerJob,
                          NodeSpreadConstraint, PowerBudget,
                          PredicateConstraint)
from .matcher import (BestFit, FirstFit, Pack, PlacementPolicy, Spread,
                      WorstFit)
from .projection import graft_allocation, project_allocation
from .model import Resource, ResourceGraph, build_cluster_graph
from .pool import (Allocation, AllocationError, AllocationRequest,
                   Constraint, ResourcePool)

__all__ = [
    "types", "MaxCoresPerJob", "MaxNodesPerJob", "NodeSpreadConstraint",
    "PowerBudget", "PredicateConstraint", "Resource", "ResourceGraph",
    "build_cluster_graph", "Allocation", "AllocationError",
    "AllocationRequest", "Constraint", "ResourcePool",
    "BestFit", "FirstFit", "Pack", "PlacementPolicy", "Spread",
    "WorstFit", "graft_allocation", "project_allocation",
]
