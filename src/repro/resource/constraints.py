"""Admission constraints — the paper's "complex, multidimensional
resource bounds at any scale, from the center-wide level down to the
level of individual processes".

Constraints attach to a :class:`~repro.resource.pool.ResourcePool`
(i.e. to one level of the instance hierarchy) and veto allocations
whose tentative plan would violate a bound.  Power capping itself is
enforced structurally by POWER consumable capacities; the classes
here add policy-level bounds on top.
"""

from __future__ import annotations

from typing import Callable, Optional

from . import types as rt
from .pool import AllocationRequest, Constraint, ResourcePool

__all__ = ["MaxCoresPerJob", "MaxNodesPerJob", "PowerBudget",
           "PredicateConstraint", "NodeSpreadConstraint"]


class MaxCoresPerJob(Constraint):
    """No single allocation may exceed ``limit`` cores."""

    def __init__(self, limit: int):
        self.limit = limit

    def check(self, pool: ResourcePool, request: AllocationRequest,
              plan: dict[int, list[int]]) -> Optional[str]:
        total = sum(len(v) for v in plan.values())
        if total > self.limit:
            return f"{total} cores exceeds per-job limit {self.limit}"
        return None


class MaxNodesPerJob(Constraint):
    """No single allocation may span more than ``limit`` nodes."""

    def __init__(self, limit: int):
        self.limit = limit

    def check(self, pool: ResourcePool, request: AllocationRequest,
              plan: dict[int, list[int]]) -> Optional[str]:
        if len(plan) > self.limit:
            return f"{len(plan)} nodes exceeds per-job limit {self.limit}"
        return None


class PowerBudget(Constraint):
    """A *policy* power budget tighter than the hardware caps.

    Rejects a plan whose projected additional draw would push the
    total draw charged against a given POWER resource above
    ``budget_watts`` — dynamic site-wide power management without
    touching the structural capacities.
    """

    def __init__(self, power_rid: int, budget_watts: float):
        self.power_rid = power_rid
        self.budget_watts = budget_watts

    def check(self, pool: ResourcePool, request: AllocationRequest,
              plan: dict[int, list[int]]) -> Optional[str]:
        extra = sum(len(v) for v in plan.values()) * request.watts_per_core
        power = pool.graph.by_id[self.power_rid]
        if power.used + extra > self.budget_watts:
            return (f"power budget: {power.used + extra:.0f} W would "
                    f"exceed {self.budget_watts:.0f} W")
        return None


class NodeSpreadConstraint(Constraint):
    """Require the plan to use at least ``min_nodes`` distinct nodes
    (e.g. for bandwidth-bound jobs that must spread I/O)."""

    def __init__(self, min_nodes: int):
        self.min_nodes = min_nodes

    def check(self, pool: ResourcePool, request: AllocationRequest,
              plan: dict[int, list[int]]) -> Optional[str]:
        if len(plan) < self.min_nodes:
            return f"plan uses {len(plan)} nodes, needs >= {self.min_nodes}"
        return None


class PredicateConstraint(Constraint):
    """Wrap an arbitrary callable as a constraint.

    ``fn(pool, request, plan)`` returns a violation string or None —
    the extensibility hook for site-specific policy.
    """

    def __init__(self, fn: Callable, label: str = "predicate"):
        self.fn = fn
        self.label = label

    def check(self, pool: ResourcePool, request: AllocationRequest,
              plan: dict[int, list[int]]) -> Optional[str]:
        return self.fn(pool, request, plan)
