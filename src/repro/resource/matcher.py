"""Node placement policies for allocation.

The generalized resource model lets schedulers "allocate resources
tailored to the disparate limiting factors of HPC applications"
(Challenge 2).  Placement is one such factor: packing minimizes
fragmentation for large jobs, spreading maximizes per-node memory and
bandwidth headroom for I/O-bound ones.

A :class:`PlacementPolicy` orders candidate nodes before the pool's
first-fit walk; it can be set pool-wide or overridden per request via
:attr:`~repro.resource.pool.AllocationRequest.node_filter` composition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from . import types as rt
from .model import Resource

if TYPE_CHECKING:  # pragma: no cover
    from .pool import ResourcePool

__all__ = ["PlacementPolicy", "FirstFit", "BestFit", "WorstFit",
           "Pack", "Spread"]


class PlacementPolicy:
    """Orders candidate nodes for the allocation walk."""

    name = "base"

    def order(self, nodes: list[Resource],
              pool: "ResourcePool") -> list[Resource]:
        """Return ``nodes`` in visit order (must not mutate input)."""
        raise NotImplementedError


class FirstFit(PlacementPolicy):
    """Graph order — deterministic, cheap, the paper-era default."""

    name = "first-fit"

    def order(self, nodes: list[Resource],
              pool: "ResourcePool") -> list[Resource]:
        return list(nodes)


class BestFit(PlacementPolicy):
    """Fewest free cores first: fills holes, keeping whole nodes free
    for large/exclusive jobs (anti-fragmentation)."""

    name = "best-fit"

    def order(self, nodes: list[Resource],
              pool: "ResourcePool") -> list[Resource]:
        return sorted(nodes,
                      key=lambda n: (len(pool.free_cores(n.rid)), n.rid))


class WorstFit(PlacementPolicy):
    """Most free cores first: balances load across nodes."""

    name = "worst-fit"

    def order(self, nodes: list[Resource],
              pool: "ResourcePool") -> list[Resource]:
        return sorted(nodes,
                      key=lambda n: (-len(pool.free_cores(n.rid)), n.rid))


class Pack(PlacementPolicy):
    """Partially used nodes first, then empty ones in graph order —
    like best-fit but keeps the stable ordering within each class."""

    name = "pack"

    def order(self, nodes: list[Resource],
              pool: "ResourcePool") -> list[Resource]:
        def klass(n: Resource) -> int:
            free = len(pool.free_cores(n.rid))
            total = pool.graph.count(rt.CORE, within=n.rid)
            if free == 0:
                return 2          # full: useless, visit last
            return 0 if free < total else 1

        return sorted(nodes, key=lambda n: (klass(n), n.rid))


class Spread(PlacementPolicy):
    """Completely idle nodes first: maximizes per-node headroom
    (memory/bandwidth-bound workloads)."""

    name = "spread"

    def order(self, nodes: list[Resource],
              pool: "ResourcePool") -> list[Resource]:
        def klass(n: Resource) -> int:
            free = len(pool.free_cores(n.rid))
            total = pool.graph.count(rt.CORE, within=n.rid)
            return 0 if free == total else 1

        return sorted(nodes, key=lambda n: (klass(n), n.rid))
