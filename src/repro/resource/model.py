"""The generalized resource graph (paper Section III).

"Flux introduces a generalized resource model that is extensible and
covers any kind of resource and its relationships.  This enables
scheduling decisions based on many types of resources."

A :class:`ResourceGraph` is a containment tree of typed
:class:`Resource` vertices (center -> cluster -> rack -> node ->
socket -> core, with consumables like memory/power/bandwidth attached
anywhere), plus non-containment edges (e.g. a filesystem *serving* a
cluster).  Consumable resources carry a ``capacity`` and track
``used``; structural resources are allocated whole.

The graph serializes to plain JSON so instances can publish their
resource view into the KVS (the ``resvc`` pattern).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator, Optional

from . import types as rt

__all__ = ["Resource", "ResourceGraph", "build_cluster_graph"]


class Resource:
    """One vertex of the resource graph.

    Attributes
    ----------
    rid:
        Unique integer id within its graph.
    rtype:
        Type string (see :mod:`repro.resource.types` for the built-in
        vocabulary; any string is legal).
    name:
        Human-readable label, unique among siblings.
    capacity:
        For consumables: total capacity in the resource's unit
        (bytes, watts, ...).  ``None`` for structural resources.
    properties:
        Free-form metadata (e.g. ``{"ghz": 2.6}``).
    """

    __slots__ = ("rid", "rtype", "name", "capacity", "used",
                 "properties", "parent_id", "children_ids", "edges",
                 "allocated_to")

    def __init__(self, rid: int, rtype: str, name: str,
                 capacity: Optional[float] = None,
                 properties: Optional[dict] = None):
        self.rid = rid
        self.rtype = rtype
        self.name = name
        self.capacity = capacity
        self.used: float = 0.0
        self.properties = dict(properties or {})
        self.parent_id: Optional[int] = None
        self.children_ids: list[int] = []
        self.edges: list[tuple[str, int]] = []  # (relation, rid)
        self.allocated_to: Optional[Any] = None  # jobid for exclusive use

    @property
    def available(self) -> float:
        """Remaining consumable capacity (0 for exhausted/structural)."""
        if self.capacity is None:
            return 0.0 if self.allocated_to is not None else 1.0
        return self.capacity - self.used

    def __repr__(self) -> str:  # pragma: no cover
        cap = f" cap={self.capacity}" if self.capacity is not None else ""
        return f"<Resource #{self.rid} {self.rtype}:{self.name}{cap}>"


class ResourceGraph:
    """A containment tree of resources with typed cross edges."""

    def __init__(self):
        self._next_id = itertools.count(0)
        self.by_id: dict[int, Resource] = {}
        self.root_id: Optional[int] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, rtype: str, name: str, *,
            parent: Optional[int] = None,
            capacity: Optional[float] = None,
            properties: Optional[dict] = None) -> Resource:
        """Create a resource; the first one added becomes the root."""
        rid = next(self._next_id)
        res = Resource(rid, rtype, name, capacity, properties)
        self.by_id[rid] = res
        if parent is None:
            if self.root_id is not None:
                raise ValueError("graph already has a root; pass parent=")
            self.root_id = rid
        else:
            parent_res = self.by_id[parent]
            res.parent_id = parent
            parent_res.children_ids.append(rid)
        return res

    def link(self, src: int, relation: str, dst: int) -> None:
        """Add a non-containment edge (e.g. filesystem ``serves``
        cluster), enabling relationship-aware scheduling."""
        self.by_id[src].edges.append((relation, dst))

    # ------------------------------------------------------------------
    # traversal / query
    # ------------------------------------------------------------------
    @property
    def root(self) -> Resource:
        """The root resource."""
        if self.root_id is None:
            raise ValueError("empty resource graph")
        return self.by_id[self.root_id]

    def children(self, rid: int) -> list[Resource]:
        """Direct children of ``rid``."""
        return [self.by_id[c] for c in self.by_id[rid].children_ids]

    def parent(self, rid: int) -> Optional[Resource]:
        """Parent resource, or None at the root."""
        pid = self.by_id[rid].parent_id
        return None if pid is None else self.by_id[pid]

    def ancestors(self, rid: int) -> Iterator[Resource]:
        """Walk from ``rid``'s parent up to the root."""
        res = self.parent(rid)
        while res is not None:
            yield res
            res = self.parent(res.rid)

    def subtree(self, rid: Optional[int] = None) -> Iterator[Resource]:
        """Preorder walk of the subtree (default: whole graph)."""
        start = self.root_id if rid is None else rid
        if start is None:
            return
        stack = [start]
        while stack:
            cur = stack.pop()
            res = self.by_id[cur]
            yield res
            stack.extend(reversed(res.children_ids))

    def find(self, rtype: Optional[str] = None,
             pred: Optional[Callable[[Resource], bool]] = None,
             within: Optional[int] = None) -> list[Resource]:
        """Resources matching a type and/or predicate, optionally
        restricted to a subtree."""
        out = []
        for res in self.subtree(within):
            if rtype is not None and res.rtype != rtype:
                continue
            if pred is not None and not pred(res):
                continue
            out.append(res)
        return out

    def count(self, rtype: str, within: Optional[int] = None) -> int:
        """Number of resources of ``rtype`` in a subtree."""
        return len(self.find(rtype, within=within))

    def path_name(self, rid: int) -> str:
        """Slash path from the root, e.g. ``center/clusterA/rack0/node3``."""
        parts = [self.by_id[rid].name]
        for anc in self.ancestors(rid):
            parts.append(anc.name)
        return "/".join(reversed(parts))

    # ------------------------------------------------------------------
    # serialization (for KVS publication)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able dump of the whole graph."""
        return {
            "root": self.root_id,
            "resources": {
                str(r.rid): {
                    "type": r.rtype, "name": r.name,
                    "capacity": r.capacity, "used": r.used,
                    "parent": r.parent_id, "children": list(r.children_ids),
                    "edges": [list(e) for e in r.edges],
                    "properties": r.properties,
                } for r in self.by_id.values()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResourceGraph":
        """Rebuild a graph from :meth:`to_dict` output."""
        graph = cls()
        graph.root_id = data["root"]
        max_id = -1
        for rid_s, rec in data["resources"].items():
            rid = int(rid_s)
            res = Resource(rid, rec["type"], rec["name"],
                           rec["capacity"], rec.get("properties"))
            res.used = rec.get("used", 0.0)
            res.parent_id = rec["parent"]
            res.children_ids = list(rec["children"])
            res.edges = [tuple(e) for e in rec.get("edges", [])]
            graph.by_id[rid] = res
            max_id = max(max_id, rid)
        graph._next_id = itertools.count(max_id + 1)
        return graph


def build_cluster_graph(name: str, n_racks: int, nodes_per_rack: int, *,
                        sockets: int = 2, cores_per_socket: int = 8,
                        memory_bytes: int = 32 * 2**30,
                        node_watts: float = 300.0,
                        rack_power_cap: Optional[float] = None,
                        cluster_power_cap: Optional[float] = None,
                        parent_graph: Optional[ResourceGraph] = None,
                        parent_id: Optional[int] = None) -> ResourceGraph:
    """Build a Zin/Cab-like compute hierarchy with power consumables.

    Each rack and the cluster get a POWER child whose ``capacity`` is
    the cap (defaulting to the worst-case draw, i.e. no throttling);
    each node gets a MEMORY child.  Pass ``parent_graph``/``parent_id``
    to graft the cluster under an existing center graph.
    """
    graph = parent_graph or ResourceGraph()
    cluster = graph.add(rt.CLUSTER, name, parent=parent_id)
    cluster_watts = (cluster_power_cap if cluster_power_cap is not None
                     else n_racks * nodes_per_rack * node_watts)
    graph.add(rt.POWER, f"{name}-power", parent=cluster.rid,
              capacity=cluster_watts)
    for rack_i in range(n_racks):
        rack = graph.add(rt.RACK, f"rack{rack_i}", parent=cluster.rid)
        rack_watts = (rack_power_cap if rack_power_cap is not None
                      else nodes_per_rack * node_watts)
        graph.add(rt.POWER, f"rack{rack_i}-power", parent=rack.rid,
                  capacity=rack_watts)
        for node_i in range(nodes_per_rack):
            node_idx = rack_i * nodes_per_rack + node_i
            node = graph.add(rt.NODE, f"node{node_idx:04d}",
                             parent=rack.rid,
                             properties={"index": node_idx})
            graph.add(rt.MEMORY, "ram", parent=node.rid,
                      capacity=float(memory_bytes))
            for s in range(sockets):
                sock = graph.add(rt.SOCKET, f"socket{s}", parent=node.rid)
                for c in range(cores_per_socket):
                    graph.add(rt.CORE, f"core{c}", parent=sock.rid)
    return graph
