"""Allocation bookkeeping over the resource graph.

A :class:`ResourcePool` turns the static :class:`ResourceGraph` into
an allocatable substrate: core-granular allocation with per-node
packing, consumable charging (memory per node, power along the
containment ancestry — how a rack/cluster power cap constrains
placement), and pluggable admission :class:`Constraint` checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from . import types as rt
from .model import Resource, ResourceGraph

__all__ = ["AllocationRequest", "Allocation", "AllocationError",
           "ResourcePool"]


class AllocationError(Exception):
    """An allocation could not be satisfied; ``reason`` says why."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class AllocationRequest:
    """What a job asks for.

    Attributes
    ----------
    ncores:
        Total cores wanted.
    cores_per_node:
        If set, cores must come in groups of exactly this many per node
        (rigid shape); otherwise nodes are packed first-fit.
    memory_per_core:
        Bytes of node memory charged per allocated core.
    watts_per_core:
        Power draw charged per allocated core to every POWER consumable
        on the node's ancestry (rack cap, cluster cap, ...).
    exclusive:
        Take whole nodes even if fewer cores are used.
    node_filter:
        Optional predicate restricting candidate nodes.
    """

    ncores: int
    cores_per_node: Optional[int] = None
    memory_per_core: float = 0.0
    watts_per_core: float = 0.0
    exclusive: bool = False
    node_filter: Optional[Callable[[Resource], bool]] = None
    #: Additional consumable reservations, e.g. shared-filesystem
    #: bandwidth: ``((resource_rid, amount), ...)`` charged atomically
    #: with the cores and refunded at release — the paper's
    #: co-scheduling of "site-wide shared resources such as file
    #: systems" with compute.
    extra_charges: tuple = ()

    def __post_init__(self):
        if self.ncores < 1:
            raise ValueError("ncores must be positive")
        if self.cores_per_node is not None and self.cores_per_node < 1:
            raise ValueError("cores_per_node must be positive")
        for item in self.extra_charges:
            if len(item) != 2 or item[1] < 0:
                raise ValueError(f"bad extra charge {item!r}")


@dataclass
class Allocation:
    """A satisfied request: which cores and consumable charges it holds."""

    jobid: Any
    request: AllocationRequest
    cores: dict[int, list[int]] = field(default_factory=dict)  # node rid -> core rids
    charges: list[tuple[int, float]] = field(default_factory=list)  # (rid, amount)

    @property
    def ncores(self) -> int:
        """Total cores held."""
        return sum(len(v) for v in self.cores.values())

    @property
    def nnodes(self) -> int:
        """Nodes touched."""
        return len(self.cores)

    def node_indices(self, graph: ResourceGraph) -> list[int]:
        """The ``index`` property of each allocated node (sorted) —
        bridges the resource graph to simulator node ids."""
        return sorted(graph.by_id[rid].properties.get("index", rid)
                      for rid in self.cores)


class Constraint:
    """Admission-control hook; subclasses veto allocations.

    :meth:`check` returns ``None`` to accept or a human-readable
    violation string to reject.  Constraints compose: a pool rejects if
    any constraint rejects (the paper's "imposing complex,
    multidimensional resource bounds at any scale").
    """

    def check(self, pool: "ResourcePool", request: AllocationRequest,
              plan: dict[int, list[int]]) -> Optional[str]:
        """Validate a tentative plan (node rid -> core rids)."""
        raise NotImplementedError


class ResourcePool:
    """Allocator over a resource graph subtree.

    Parameters
    ----------
    graph:
        The resource graph.
    within:
        Restrict the pool to the subtree rooted at this rid (how a
        child Flux instance sees only its parent-granted slice —
        the parent bounding rule).
    constraints:
        Extra admission checks applied to every allocation.
    """

    def __init__(self, graph: ResourceGraph, within: Optional[int] = None,
                 constraints: Optional[list[Constraint]] = None,
                 placement=None):
        self.graph = graph
        self.within = within if within is not None else graph.root_id
        self.constraints: list[Constraint] = list(constraints or [])
        #: Node visit order for allocations (default: graph order).
        #: See :mod:`repro.resource.matcher` for pack/spread/best-fit.
        self.placement = placement
        self.allocations: dict[Any, Allocation] = {}
        # node rid -> POWER resources on its ancestry (memoized).
        self._power_path: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def nodes(self) -> list[Resource]:
        """Candidate nodes in this pool's subtree."""
        return self.graph.find(rt.NODE, within=self.within)

    def free_cores(self, node_rid: int) -> list[Resource]:
        """Unallocated cores of a node."""
        return self.graph.find(
            rt.CORE, pred=lambda r: r.allocated_to is None,
            within=node_rid)

    def total_cores(self) -> int:
        """All cores in the pool (allocated or not)."""
        return self.graph.count(rt.CORE, within=self.within)

    def total_free_cores(self) -> int:
        """Currently unallocated cores."""
        return len(self.graph.find(
            rt.CORE, pred=lambda r: r.allocated_to is None,
            within=self.within))

    def _node_memory(self, node_rid: int) -> Optional[Resource]:
        mems = self.graph.find(rt.MEMORY, within=node_rid)
        return mems[0] if mems else None

    def _powers_above(self, node_rid: int) -> list[int]:
        path = self._power_path.get(node_rid)
        if path is None:
            path = []
            for anc in self.graph.ancestors(node_rid):
                for child in self.graph.children(anc.rid):
                    if child.rtype == rt.POWER:
                        path.append(child.rid)
            self._power_path[node_rid] = path
        return path

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def try_allocate(self, jobid: Any,
                     request: AllocationRequest) -> Optional[Allocation]:
        """Like :meth:`allocate` but returns None instead of raising."""
        try:
            return self.allocate(jobid, request)
        except AllocationError:
            return None

    def allocate(self, jobid: Any,
                 request: AllocationRequest) -> Allocation:
        """Satisfy ``request`` or raise :class:`AllocationError`.

        First-fit over nodes in graph order; consumables (memory,
        ancestral power) are charged atomically with the core grab.
        """
        if jobid in self.allocations:
            raise AllocationError(f"job {jobid!r} already holds an allocation")
        plan: dict[int, list[int]] = {}
        charges: dict[int, float] = {}
        remaining = request.ncores

        candidates = self.nodes()
        if self.placement is not None:
            candidates = self.placement.order(candidates, self)
        for node in candidates:
            if remaining <= 0:
                break
            if request.node_filter is not None and not request.node_filter(node):
                continue
            free = self.free_cores(node.rid)
            if request.exclusive and len(free) != self.graph.count(
                    rt.CORE, within=node.rid):
                continue
            if request.cores_per_node is not None:
                if len(free) < request.cores_per_node:
                    continue
                take = min(request.cores_per_node, remaining)
                if take < request.cores_per_node and remaining < request.cores_per_node:
                    take = remaining  # final partial group
            else:
                take = min(len(free), remaining)
            # Clamp to consumable headroom (memory on the node, power on
            # every ancestor cap); packing requests shrink, rigid
            # cores_per_node shapes must fit whole or skip the node.
            if take > 0 and request.memory_per_core > 0:
                mem = self._node_memory(node.rid)
                avail = ((mem.available - charges.get(mem.rid, 0.0))
                         if mem is not None else 0.0)
                fit = int(avail // request.memory_per_core)
                if request.cores_per_node is not None and fit < take:
                    continue
                take = min(take, fit)
            if take > 0 and request.watts_per_core > 0:
                headroom = min(
                    (self.graph.by_id[p].available - charges.get(p, 0.0)
                     for p in self._powers_above(node.rid)),
                    default=float("inf"))
                fit = int(headroom // request.watts_per_core)
                if request.cores_per_node is not None and fit < take:
                    continue
                take = min(take, fit)
            if take <= 0:
                continue
            mem_need = take * request.memory_per_core
            mem = self._node_memory(node.rid) if mem_need > 0 else None
            watts = take * request.watts_per_core
            # Tentatively take.
            plan[node.rid] = [c.rid for c in free[:take]]
            if mem_need > 0 and mem is not None:
                charges[mem.rid] = charges.get(mem.rid, 0.0) + mem_need
            if watts > 0:
                for prid in self._powers_above(node.rid):
                    charges[prid] = charges.get(prid, 0.0) + watts
            remaining -= take

        if remaining > 0:
            raise AllocationError(
                f"insufficient resources: {remaining} of "
                f"{request.ncores} cores unplaced")
        for rid, amount in request.extra_charges:
            res = self.graph.by_id[rid]
            if res.available - charges.get(rid, 0.0) < amount:
                raise AllocationError(
                    f"shared resource {res.name!r}: {amount:g} exceeds "
                    f"available {res.available:g}")
            charges[rid] = charges.get(rid, 0.0) + amount
        for constraint in self.constraints:
            violation = constraint.check(self, request, plan)
            if violation is not None:
                raise AllocationError(f"constraint violated: {violation}")

        alloc = Allocation(jobid, request)
        for node_rid, core_rids in plan.items():
            for crid in core_rids:
                self.graph.by_id[crid].allocated_to = jobid
            alloc.cores[node_rid] = list(core_rids)
        for rid, amount in charges.items():
            self.graph.by_id[rid].used += amount
            alloc.charges.append((rid, amount))
        self.allocations[jobid] = alloc
        return alloc

    def release(self, jobid: Any) -> Allocation:
        """Free a job's cores and refund its consumable charges."""
        alloc = self.allocations.pop(jobid, None)
        if alloc is None:
            raise AllocationError(f"no allocation for job {jobid!r}")
        for core_rids in alloc.cores.values():
            for crid in core_rids:
                self.graph.by_id[crid].allocated_to = None
        for rid, amount in alloc.charges:
            self.graph.by_id[rid].used -= amount
        return alloc

    # ------------------------------------------------------------------
    def grow(self, jobid: Any, extra_cores: int) -> int:
        """Add up to ``extra_cores`` to an existing allocation (the
        elasticity model's grow); returns cores actually added."""
        alloc = self.allocations.get(jobid)
        if alloc is None:
            raise AllocationError(f"no allocation for job {jobid!r}")
        grown = 0
        req = alloc.request
        for node in self.nodes():
            if grown >= extra_cores:
                break
            free = self.free_cores(node.rid)
            take = min(len(free), extra_cores - grown)
            if take > 0 and req.watts_per_core > 0:
                # Clamp to the power headroom along the ancestry: a grow
                # may be partially granted.
                headroom = min(
                    (self.graph.by_id[p].available
                     for p in self._powers_above(node.rid)),
                    default=float("inf"))
                take = min(take, int(headroom // req.watts_per_core))
            if take > 0 and req.memory_per_core > 0:
                mem = self._node_memory(node.rid)
                avail = mem.available if mem is not None else 0.0
                take = min(take, int(avail // req.memory_per_core))
            if take <= 0:
                continue
            watts = take * req.watts_per_core
            mem_need = take * req.memory_per_core
            mem = self._node_memory(node.rid) if mem_need > 0 else None
            for core in free[:take]:
                core.allocated_to = jobid
            alloc.cores.setdefault(node.rid, []).extend(
                c.rid for c in free[:take])
            if watts > 0:
                for prid in self._powers_above(node.rid):
                    self.graph.by_id[prid].used += watts
                    alloc.charges.append((prid, watts))
            if mem_need > 0 and mem is not None:
                mem.used += mem_need
                alloc.charges.append((mem.rid, mem_need))
            grown += take
        return grown

    def shrink(self, jobid: Any, drop_cores: int) -> int:
        """Give back up to ``drop_cores`` cores; returns cores freed."""
        alloc = self.allocations.get(jobid)
        if alloc is None:
            raise AllocationError(f"no allocation for job {jobid!r}")
        req = alloc.request
        freed = 0
        for node_rid in list(alloc.cores):
            mem = (self._node_memory(node_rid)
                   if req.memory_per_core > 0 else None)
            while alloc.cores[node_rid] and freed < drop_cores:
                crid = alloc.cores[node_rid].pop()
                self.graph.by_id[crid].allocated_to = None
                freed += 1
                watts = req.watts_per_core
                if watts > 0:
                    for prid in self._powers_above(node_rid):
                        self.graph.by_id[prid].used -= watts
                        alloc.charges.append((prid, -watts))
                if mem is not None:
                    mem.used -= req.memory_per_core
                    alloc.charges.append((mem.rid, -req.memory_per_core))
            if not alloc.cores[node_rid]:
                del alloc.cores[node_rid]
            if freed >= drop_cores:
                break
        return freed
