"""Projection of an allocation into a child instance's resource graph.

The job hierarchy's *parent bounding rule* says "the parent job grants
and confines the resource allocation of all of its children", and the
*child empowerment rule* delegates ownership of that slice.  We realize
this by *projecting* a parent-pool allocation into a brand-new
:class:`~repro.resource.model.ResourceGraph` containing only the
granted nodes/cores (plus proportional consumable shares).  The child
instance schedules against its own graph and physically cannot exceed
the grant.

:func:`graft_allocation` extends an existing projection when the
parent grants a *grow* (the elasticity model).
"""

from __future__ import annotations

from typing import Optional

from . import types as rt
from .model import Resource, ResourceGraph
from .pool import Allocation

__all__ = ["project_allocation", "graft_allocation"]


def project_allocation(graph: ResourceGraph, alloc: Allocation,
                       name: str = "grant",
                       power_cap: Optional[float] = None) -> ResourceGraph:
    """Build the child-instance view of ``alloc``.

    The projection is rooted at a CLUSTER named ``name`` holding one
    POWER consumable (capped at ``power_cap`` or the grant's estimated
    worst-case draw) and a copy of every granted node with exactly the
    granted cores.  Node memory capacity is scaled by the granted
    fraction of the node's cores.  The ``index`` property is preserved,
    so the child can still map nodes to simulator/cluster ids.
    """
    child = ResourceGraph()
    root = child.add(rt.CLUSTER, name)
    ncores = alloc.ncores
    watts = alloc.request.watts_per_core * ncores
    child.add(rt.POWER, f"{name}-power", parent=root.rid,
              capacity=power_cap if power_cap is not None else max(watts, 1.0))
    for node_rid in sorted(alloc.cores):
        _copy_node(graph, child, root.rid, node_rid, alloc.cores[node_rid])
    return child


def graft_allocation(graph: ResourceGraph, child: ResourceGraph,
                     new_cores: dict[int, list[int]]) -> int:
    """Graft additional granted cores into an existing projection.

    ``new_cores`` maps parent node rids to newly granted core rids;
    nodes already present in the child gain cores, new nodes are
    copied in.  Returns the number of cores added.
    """
    root_id = child.root_id
    assert root_id is not None
    added = 0
    by_index = {res.properties.get("index"): res
                for res in child.find(rt.NODE)}
    for node_rid, core_rids in new_cores.items():
        parent_node = graph.by_id[node_rid]
        index = parent_node.properties.get("index", node_rid)
        existing = by_index.get(index)
        if existing is None:
            _copy_node(graph, child, root_id, node_rid, core_rids)
            added += len(core_rids)
        else:
            sockets = child.find(rt.SOCKET, within=existing.rid)
            target = sockets[0].rid if sockets else existing.rid
            for i, _crid in enumerate(core_rids):
                child.add(rt.CORE, f"grown{existing.rid}-{i}", parent=target)
                added += 1
    return added


def _copy_node(graph: ResourceGraph, child: ResourceGraph, root_id: int,
               node_rid: int, core_rids: list[int]) -> None:
    node = graph.by_id[node_rid]
    total_cores = graph.count(rt.CORE, within=node_rid)
    frac = len(core_rids) / max(total_cores, 1)
    new_node = child.add(rt.NODE, node.name, parent=root_id,
                         properties=dict(node.properties))
    mems = graph.find(rt.MEMORY, within=node_rid)
    if mems:
        child.add(rt.MEMORY, "ram", parent=new_node.rid,
                  capacity=mems[0].capacity * frac
                  if mems[0].capacity else None)
    # Group granted cores under the sockets they came from, when known.
    by_socket: dict[Optional[int], list[int]] = {}
    for crid in core_rids:
        core = graph.by_id[crid]
        by_socket.setdefault(core.parent_id, []).append(crid)
    for s_i, (sock_rid, crids) in enumerate(sorted(
            by_socket.items(), key=lambda kv: (kv[0] is None, kv[0]))):
        sock_name = (graph.by_id[sock_rid].name
                     if sock_rid is not None and
                     graph.by_id[sock_rid].rtype == rt.SOCKET
                     else f"socket{s_i}")
        new_sock = child.add(rt.SOCKET, sock_name, parent=new_node.rid)
        for crid in crids:
            child.add(rt.CORE, graph.by_id[crid].name, parent=new_sock.rid)
