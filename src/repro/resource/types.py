"""Resource type vocabulary for the generalized resource model.

The paper's resource model "is extensible and covers any kind of
resource and its relationships", beyond the traditional flat node
list: compute hierarchy (cluster/rack/node/socket/core), consumables
(memory, power, bandwidth), and site-wide shared services (parallel
file systems).  Types are plain strings so user code can introduce new
kinds without touching this module; the constants below are the
vocabulary the built-in builders and schedulers use.
"""

from __future__ import annotations

__all__ = [
    "CLUSTER", "RACK", "NODE", "SOCKET", "CORE", "MEMORY", "GPU",
    "POWER", "FILESYSTEM", "BANDWIDTH", "SWITCH", "CENTER",
    "STRUCTURAL_TYPES", "CONSUMABLE_TYPES",
]

CENTER = "center"            #: an entire HPC facility (Flux's purview)
CLUSTER = "cluster"          #: one machine/partition
RACK = "rack"                #: a rack of nodes (power-capping level)
NODE = "node"                #: a host
SOCKET = "socket"            #: a CPU package
CORE = "core"                #: one schedulable core
GPU = "gpu"                  #: an accelerator
SWITCH = "switch"            #: a network switch

MEMORY = "memory"            #: bytes of RAM (consumable)
POWER = "power"              #: watts (consumable, hierarchical caps)
FILESYSTEM = "filesystem"    #: a shared parallel file system
BANDWIDTH = "bandwidth"      #: I/O or network bandwidth (consumable)

#: Types that form the containment hierarchy.
STRUCTURAL_TYPES = frozenset(
    {CENTER, CLUSTER, RACK, NODE, SOCKET, CORE, GPU, SWITCH, FILESYSTEM})

#: Types whose capacity is divisibly consumed by allocations.
CONSUMABLE_TYPES = frozenset({MEMORY, POWER, BANDWIDTH})
