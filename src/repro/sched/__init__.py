"""Hierarchical, policy-pluggable scheduling (paper Sections II-III).

Queues (:mod:`.queue`), policies — FCFS, SJF, EASY backfill —
(:mod:`.policy`) and scheduler decision-cost models that make the
scheduler-parallelism trade-off measurable (:mod:`.overhead`).
The execution engine lives in :mod:`repro.core.instance`.
"""

from .gantt import gantt, utilization_sparkline
from .metrics import ScheduleReport, bounded_slowdown, report
from .overhead import AffineCostModel, SchedCostModel, ZeroCostModel
from .policy import (EasyBackfillPolicy, FcfsPolicy, SchedulerPolicy,
                     SjfPolicy, admit_cores)
from .queue import JobQueue
from .workload import (batch_mix, burst_waves, ensemble_burst, merge,
                       replay)

__all__ = [
    "gantt", "utilization_sparkline",
    "ScheduleReport", "bounded_slowdown", "report",
    "AffineCostModel", "SchedCostModel", "ZeroCostModel",
    "EasyBackfillPolicy", "FcfsPolicy", "SchedulerPolicy", "SjfPolicy",
    "admit_cores", "JobQueue",
    "batch_mix", "burst_waves", "ensemble_burst", "merge", "replay",
]
