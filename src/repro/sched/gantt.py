"""Text Gantt charts for instance schedules.

Renders a finished (or in-flight) Flux instance's job timeline as
aligned ASCII — wait time as dots, runtime as bars — so examples and
debugging sessions can *see* backfill holes, elasticity resizes, and
hierarchy effects without plotting dependencies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..core.instance import FluxInstance
    from ..core.job import Job

__all__ = ["gantt", "utilization_sparkline"]

#: Glyphs: queued wait, running, the submit marker.
_WAIT, _RUN, _SUBMIT = ".", "#", "|"


def gantt(instance: "FluxInstance", *, width: int = 72,
          max_jobs: int = 40,
          name_width: int = 12,
          horizon: Optional[float] = None) -> str:
    """Render the instance's jobs as an ASCII Gantt chart.

    One row per job (submission order, truncated to ``max_jobs``):
    ``|`` marks submission, ``.`` the queued wait, ``#`` the runtime.
    The time axis spans ``[0, horizon]`` (default: the makespan).
    """
    jobs = sorted(instance.jobs.values(), key=lambda j: j.submit_time)
    if not jobs:
        return "(no jobs)"
    end = horizon if horizon is not None else max(
        instance.makespan(), instance.sim.now, 1e-9)
    scale = width / end

    def col(t: float) -> int:
        return max(0, min(width - 1, int(t * scale)))

    lines = [f"{'job':<{name_width}} 0{'':{width - 2}}{end:.6g}s"]
    shown = jobs[:max_jobs]
    for job in shown:
        row = [" "] * width
        sub = col(job.submit_time)
        start = job.start_time
        stop = job.end_time if job.end_time is not None \
            else instance.sim.now
        if start is not None:
            for c in range(col(job.submit_time), col(start)):
                row[c] = _WAIT
            for c in range(col(start), col(stop) + 1):
                row[c] = _RUN
        else:
            for c in range(sub, width):
                row[c] = _WAIT
        row[sub] = _SUBMIT
        label = (job.spec.name or f"job{job.jobid}")[:name_width]
        lines.append(f"{label:<{name_width}} {''.join(row)}")
    if len(jobs) > max_jobs:
        lines.append(f"... {len(jobs) - max_jobs} more jobs not shown")
    lines.append(f"{'':{name_width}} |=submit  .=queued  #=running")
    return "\n".join(lines)


def utilization_sparkline(instance: "FluxInstance", *, width: int = 72,
                          horizon: Optional[float] = None) -> str:
    """A one-line core-utilization profile over time.

    Reconstructs busy cores from job start/end records and renders
    eight-level block characters; resizes (malleability) appear only
    as their start/end average, since per-resize history is not kept.
    """
    jobs = [j for j in instance.jobs.values() if j.start_time is not None]
    end = horizon if horizon is not None else max(
        instance.makespan(), instance.sim.now, 1e-9)
    total = instance.pool.total_cores()
    levels = " ▁▂▃▄▅▆▇█"
    cells = []
    for i in range(width):
        t = (i + 0.5) * end / width
        busy = sum(j.spec.ncores for j in jobs
                   if j.start_time <= t
                   and (j.end_time is None or t < j.end_time))
        frac = min(busy / total, 1.0) if total else 0.0
        cells.append(levels[round(frac * (len(levels) - 1))])
    return "".join(cells)
