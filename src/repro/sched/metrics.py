"""Schedule quality metrics.

Computes the standard RJMS evaluation quantities over a (finished)
Flux instance: makespan, waits, **bounded slowdown** (the canonical
fairness-to-short-jobs metric), utilization, and throughput — plus
per-name-prefix breakdowns so mixed workloads (batch vs. burst vs.
ensemble traffic) can be reported separately, as the paper's diverse-
workload discussion requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..core.instance import FluxInstance
    from ..core.job import Job

__all__ = ["ScheduleReport", "report", "bounded_slowdown"]

#: Bounded-slowdown runtime floor (seconds), per Feitelson's convention:
#: prevents near-zero-runtime jobs from dominating the metric.
BSLD_TAU = 10.0


def bounded_slowdown(job: "Job", tau: float = BSLD_TAU) -> Optional[float]:
    """``max(1, (wait + run) / max(run, tau))`` for a finished job."""
    if job.wait_time is None or job.run_time is None:
        return None
    denom = max(job.run_time, tau)
    return max(1.0, (job.wait_time + job.run_time) / denom)


@dataclass(frozen=True)
class ScheduleReport:
    """Aggregate schedule quality for one set of jobs."""

    njobs: int
    completed: int
    failed: int
    makespan: float
    mean_wait: float
    max_wait: float
    mean_bsld: float
    p95_bsld: float
    utilization: float
    throughput: float  # completed jobs per second of makespan

    def row(self) -> str:
        """One aligned text row (benchmark tables)."""
        return (f"{self.njobs:>6} {self.makespan:>10.2f} "
                f"{self.mean_wait:>10.2f} {self.mean_bsld:>10.2f} "
                f"{self.utilization:>10.2%} {self.throughput:>9.2f}")

    @staticmethod
    def header() -> str:
        """Column headers matching :meth:`row`."""
        return (f"{'jobs':>6} {'makespan':>10} {'meanwait':>10} "
                f"{'meanbsld':>10} {'util':>10} {'jobs/s':>9}")


def report(instance: "FluxInstance",
           name_prefix: Optional[str] = None,
           tau: float = BSLD_TAU) -> ScheduleReport:
    """Build a :class:`ScheduleReport` over an instance's jobs.

    ``name_prefix`` restricts the job population (e.g. ``"wave"`` for
    only the burst traffic); makespan/utilization always describe the
    whole instance.
    """
    jobs = [j for j in instance.jobs.values()
            if name_prefix is None or j.spec.name.startswith(name_prefix)]
    waits = [j.wait_time for j in jobs if j.wait_time is not None]
    bslds = [b for j in jobs
             if (b := bounded_slowdown(j, tau)) is not None]
    completed = sum(1 for j in jobs if j.state.value == "complete")
    failed = sum(1 for j in jobs if j.state.value == "failed")
    makespan = instance.makespan()
    return ScheduleReport(
        njobs=len(jobs),
        completed=completed,
        failed=failed,
        makespan=makespan,
        mean_wait=float(np.mean(waits)) if waits else 0.0,
        max_wait=float(np.max(waits)) if waits else 0.0,
        mean_bsld=float(np.mean(bslds)) if bslds else 1.0,
        p95_bsld=float(np.percentile(bslds, 95)) if bslds else 1.0,
        utilization=instance.utilization(),
        throughput=completed / makespan if makespan > 0 else 0.0,
    )
