"""Scheduler decision-cost models.

The paper's case for hierarchical scheduling rests on *scheduler
parallelism*: one monolithic scheduler serializes every placement
decision for the whole center, while sibling instances decide
concurrently over their own subsets.  To make that trade-off visible
in simulation, every scheduling pass charges simulated time — the
models here say how much.

The default is affine in the work examined: a fixed pass cost plus a
per-considered-job term scaled by pool size (matching how real
schedulers' matching loops scale with queue depth x resource count).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SchedCostModel", "AffineCostModel", "ZeroCostModel"]


class SchedCostModel:
    """Base: cost in seconds of one scheduling pass."""

    def pass_cost(self, njobs_considered: int, pool_nodes: int) -> float:
        """Simulated seconds consumed by a pass that examined
        ``njobs_considered`` queued jobs over ``pool_nodes`` nodes."""
        raise NotImplementedError


@dataclass(frozen=True)
class AffineCostModel(SchedCostModel):
    """``base + per_job * jobs * (1 + node_factor * nodes)`` seconds.

    Defaults approximate a production scheduler: ~1 ms fixed pass cost
    and ~100 us per job examined on a 64-node pool.
    """

    base: float = 1e-3
    per_job: float = 5e-5
    node_factor: float = 1 / 64

    def pass_cost(self, njobs_considered: int, pool_nodes: int) -> float:
        return (self.base + self.per_job * njobs_considered
                * (1.0 + self.node_factor * pool_nodes))


class ZeroCostModel(SchedCostModel):
    """Free scheduling — isolates pure queueing effects in tests."""

    def pass_cost(self, njobs_considered: int, pool_nodes: int) -> float:
        return 0.0
