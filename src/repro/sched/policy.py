"""Scheduling policies.

A policy answers one question per scheduling pass: *which pending jobs
should be started right now, in what order?*  The Flux instance
(:mod:`repro.core.instance`) owns execution; policies only decide.
This is the paper's per-level specialization hook — every instance in
the job hierarchy can run a different policy over its own resource
subset.

Implemented: FCFS (head-of-line blocking), shortest-job-first, and
EASY backfill (head job gets a shadow-time reservation; later jobs may
jump ahead only if they cannot delay it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.instance import FluxInstance
    from ..core.job import Job

__all__ = ["SchedulerPolicy", "FcfsPolicy", "SjfPolicy",
           "EasyBackfillPolicy", "admit_cores"]


def admit_cores(job: "Job") -> int:
    """Cores a policy must find before selecting ``job``: the minimum
    feasible size for moldable jobs, the full request otherwise."""
    spec = job.spec
    if spec.is_moldable and spec.min_cores is not None:
        return spec.min_cores
    return spec.ncores


class SchedulerPolicy:
    """Base policy: override :meth:`select`."""

    #: Human-readable policy name (benchmark tables).
    name = "base"

    def select(self, instance: "FluxInstance",
               pending: list["Job"]) -> list["Job"]:
        """Jobs to attempt to start now, in order.

        The instance tries each in order; a failed allocation for a
        selected job simply skips it this pass (the policy's ordering
        already encodes any blocking semantics).
        """
        raise NotImplementedError


class FcfsPolicy(SchedulerPolicy):
    """First-come first-served with head-of-line blocking: start queue
    prefixes only — if a job doesn't fit, nothing behind it starts."""

    name = "fcfs"

    def select(self, instance: "FluxInstance",
               pending: list["Job"]) -> list["Job"]:
        out = []
        free = instance.pool.total_free_cores()
        for job in pending:
            if admit_cores(job) > free:
                break
            out.append(job)
            free -= admit_cores(job)
        return out


class SjfPolicy(SchedulerPolicy):
    """Shortest (estimated) job first — no blocking, pure greed.

    Starvation-prone on purpose; useful as a baseline in the ablation
    benches.
    """

    name = "sjf"

    def select(self, instance: "FluxInstance",
               pending: list["Job"]) -> list["Job"]:
        order = sorted(pending, key=lambda j: j.spec.walltime)
        out = []
        free = instance.pool.total_free_cores()
        for job in order:
            if admit_cores(job) <= free:
                out.append(job)
                free -= admit_cores(job)
        return out


class EasyBackfillPolicy(SchedulerPolicy):
    """EASY (aggressive) backfill.

    The head job gets a reservation at the *shadow time* — the earliest
    instant enough cores free up given running jobs' walltime
    estimates.  A later job may start now only if it fits in the
    currently free cores **and** either finishes before the shadow time
    or uses only cores beyond the head job's need ("extra" cores).
    """

    name = "easy"

    def select(self, instance: "FluxInstance",
               pending: list["Job"]) -> list["Job"]:
        queue = list(pending)
        out: list["Job"] = []
        now = instance.sim.now
        free = instance.pool.total_free_cores()
        releases = [(job.estimated_end, job.spec.ncores)
                    for job in instance.running_jobs()]

        # Phase 1: start the longest queue prefix that fits, tracking
        # the virtual release schedule of everything we start.
        while queue and admit_cores(queue[0]) <= free:
            job = queue.pop(0)
            out.append(job)
            free -= admit_cores(job)
            releases.append((now + (job.spec.walltime or 0.0),
                             admit_cores(job)))
        if not queue:
            return out

        # Phase 2: the head is blocked — compute its reservation.
        head = queue.pop(0)
        shadow, extra = self._shadow(head, free, releases)
        if shadow == float("inf"):
            # Nothing ever frees enough cores under current estimates:
            # the head can never be reserved, so refuse to backfill
            # rather than starve it indefinitely.
            return out

        # Phase 3: backfill anything that cannot delay the reservation.
        avail = free
        for job in queue:
            need = admit_cores(job)
            if need > avail:
                continue
            fits_time = now + (job.spec.walltime or 0.0) <= shadow
            fits_extra = need <= extra
            if fits_time or fits_extra:
                out.append(job)
                avail -= need
                if fits_extra and not fits_time:
                    extra -= need
        return out

    @staticmethod
    def _shadow(head: "Job", free: int,
                releases: list[tuple[float, int]]) -> tuple[float, int]:
        """(shadow time, extra cores at shadow time) for the head job."""
        avail = free
        for end, ncores in sorted(releases):
            avail += ncores
            if avail >= head.spec.ncores:
                return end, avail - head.spec.ncores
        return float("inf"), 0
