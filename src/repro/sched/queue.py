"""Job queues for instance schedulers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..core.job import Job

__all__ = ["JobQueue"]


class JobQueue:
    """An ordered queue of pending jobs.

    Insertion order is FIFO; an optional ``priority_fn`` re-sorts on
    every snapshot (stable, so equal priorities stay submission-
    ordered).  Policies receive snapshots and pick what to start.
    """

    def __init__(self, priority_fn: Optional[Callable[["Job"], float]] = None):
        self._jobs: list["Job"] = []
        self.priority_fn = priority_fn

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator["Job"]:
        return iter(self.snapshot())

    def push(self, job: "Job") -> None:
        """Enqueue a pending job."""
        self._jobs.append(job)

    def remove(self, job: "Job") -> None:
        """Drop a job (started or cancelled)."""
        self._jobs.remove(job)

    def snapshot(self) -> list["Job"]:
        """Current queue order (priority-sorted when configured)."""
        if self.priority_fn is None:
            return list(self._jobs)
        return sorted(self._jobs, key=self.priority_fn)

    def head(self) -> Optional["Job"]:
        """The job a blocking policy would start next."""
        snap = self.snapshot()
        return snap[0] if snap else None
