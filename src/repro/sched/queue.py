"""Job queues for instance schedulers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..core.job import Job

__all__ = ["JobQueue"]


class JobQueue:
    """An ordered queue of pending jobs.

    Insertion order is FIFO; an optional ``priority_fn`` re-sorts on
    every snapshot (stable, so equal priorities stay submission-
    ordered).  Policies receive snapshots and pick what to start.
    """

    def __init__(self, priority_fn: Optional[Callable[["Job"], float]] = None,
                 limit: Optional[int] = None):
        self._jobs: list["Job"] = []
        self.priority_fn = priority_fn
        #: Optional admission bound: ``push`` refuses once this many
        #: jobs are pending (``None`` keeps the queue unbounded).
        self.limit = limit

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator["Job"]:
        return iter(self.snapshot())

    @property
    def full(self) -> bool:
        """True when a bounded queue is at its admission limit."""
        return self.limit is not None and len(self._jobs) >= self.limit

    def push(self, job: "Job") -> None:
        """Enqueue a pending job (refused when the queue is full)."""
        if self.full:
            raise RuntimeError(
                f"pending queue full ({self.limit} jobs)")
        self._jobs.append(job)

    def remove(self, job: "Job") -> None:
        """Drop a job (started or cancelled)."""
        self._jobs.remove(job)

    def snapshot(self) -> list["Job"]:
        """Current queue order (priority-sorted when configured)."""
        if self.priority_fn is None:
            return list(self._jobs)
        return sorted(self._jobs, key=self.priority_fn)

    def head(self) -> Optional["Job"]:
        """The job a blocking policy would start next."""
        snap = self.snapshot()
        return snap[0] if snap else None
