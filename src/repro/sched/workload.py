"""Synthetic workload generation.

Section II motivates Flux with workloads that are "diverse, dynamic,
and large ... moving away from individual monolithic jobs" toward
ensembles.  This module generates the corresponding job streams for
the scheduler benches and examples:

- classic batch mixes (power-of-two sizes, heavy-tailed runtimes,
  Poisson arrivals),
- UQ-style ensembles (many small identical members, arriving together),
- burst patterns (waves of short jobs on top of a base load).

All generators take an explicit ``random.Random`` (or seed) so
workloads are reproducible, and return ``(arrival_time, JobSpec)``
pairs sorted by arrival.  :func:`replay` feeds such a stream into a
:class:`~repro.core.instance.FluxInstance` at the right simulated
times.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Union

from ..core.job import JobKind, JobSpec
from ..sim.kernel import Simulation

__all__ = ["batch_mix", "ensemble_burst", "burst_waves", "merge",
           "replay", "Arrival"]

#: One workload element: (arrival time in seconds, spec).
Arrival = tuple[float, JobSpec]


def _rng(seed_or_rng: Union[int, random.Random]) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def batch_mix(njobs: int, *, seed: Union[int, random.Random] = 0,
              mean_interarrival: float = 2.0,
              sizes: Iterable[int] = (1, 2, 4, 8, 16, 32, 64),
              min_duration: float = 1.0,
              max_duration: float = 600.0,
              walltime_slack: float = 2.0,
              name_prefix: str = "batch") -> list[Arrival]:
    """A classic HPC batch stream.

    Poisson arrivals; power-of-two core counts (small sizes more
    likely, weight 1/size); log-uniform runtimes; walltime estimates
    padded by up to ``walltime_slack``x (users over-estimate) — the
    over-estimation is what makes EASY backfill interesting.
    """
    import math
    rng = _rng(seed)
    sizes = list(sizes)
    weights = [1.0 / s for s in sizes]
    out: list[Arrival] = []
    t = 0.0
    for i in range(njobs):
        t += rng.expovariate(1.0 / mean_interarrival)
        ncores = rng.choices(sizes, weights=weights)[0]
        duration = math.exp(rng.uniform(math.log(min_duration),
                                        math.log(max_duration)))
        walltime = duration * rng.uniform(1.0, walltime_slack)
        out.append((t, JobSpec(ncores=ncores, duration=duration,
                               walltime=walltime,
                               name=f"{name_prefix}{i}")))
    return out


def ensemble_burst(nmembers: int, *, at: float = 0.0,
                   seed: Union[int, random.Random] = 0,
                   member_cores: int = 8,
                   min_duration: float = 2.0,
                   max_duration: float = 10.0,
                   as_instance: Optional[int] = None,
                   name_prefix: str = "uq") -> list[Arrival]:
    """A UQ-style ensemble: ``nmembers`` near-identical small jobs
    arriving at once.

    With ``as_instance=<ncores>`` the ensemble is wrapped into a single
    nested-instance job of that size (the unified-job-model shape);
    otherwise members are submitted individually.
    """
    rng = _rng(seed)
    members = [JobSpec(ncores=member_cores,
                       duration=rng.uniform(min_duration, max_duration),
                       name=f"{name_prefix}{i}")
               for i in range(nmembers)]
    if as_instance is None:
        return [(at, m) for m in members]
    wrapper = JobSpec(ncores=as_instance, kind=JobKind.INSTANCE,
                      subjobs=members, name=f"{name_prefix}-ensemble",
                      walltime=sum(m.duration for m in members))
    return [(at, wrapper)]


def burst_waves(nwaves: int, jobs_per_wave: int, *,
                seed: Union[int, random.Random] = 0,
                first_at: float = 0.0, spacing: float = 30.0,
                jitter: float = 1.0, ncores: int = 4,
                min_duration: float = 0.5, max_duration: float = 2.0,
                name_prefix: str = "wave") -> list[Arrival]:
    """Waves of short small jobs (interactive/debug traffic)."""
    rng = _rng(seed)
    out: list[Arrival] = []
    for w in range(nwaves):
        base = first_at + w * spacing
        for j in range(jobs_per_wave):
            out.append((base + rng.uniform(0, jitter),
                        JobSpec(ncores=ncores,
                                duration=rng.uniform(min_duration,
                                                     max_duration),
                                name=f"{name_prefix}{w}.{j}")))
    return sorted(out, key=lambda a: a[0])


def merge(*streams: list[Arrival]) -> list[Arrival]:
    """Interleave workload streams by arrival time (stable)."""
    out: list[Arrival] = []
    for stream in streams:
        out.extend(stream)
    return sorted(out, key=lambda a: a[0])


def replay(sim: Simulation, instance, workload: list[Arrival]):
    """Submit ``workload`` into ``instance`` at the right times.

    Returns the submitter Process; the list of created Jobs (in
    arrival order) is the process's value when it completes.
    """
    ordered = sorted(workload, key=lambda a: a[0])

    def submitter():
        jobs = []
        last = sim.now
        for at, spec in ordered:
            if at > last:
                yield sim.timeout(at - last)
                last = at
            jobs.append(instance.submit(spec))
        return jobs

    return sim.spawn(submitter(), name="workload-replay")
