"""Discrete-event simulation substrate.

Stands in for the paper's physical testbed (LLNL's Zin/Cab clusters):
a deterministic event loop (:mod:`.kernel`), a LogGP-style network cost
model (:mod:`.network`), node/cluster construction (:mod:`.node`,
:mod:`.cluster`) and statistics collection (:mod:`.trace`).
"""

from .faults import FaultPlan, LinkFaults
from .kernel import (AllOf, AnyOf, Channel, Event, Interrupt, Process,
                     Simulation, SimulationError, Timeout)
from .network import Network, NetworkParams, Nic
from .node import Node, NodeSpec
from .cluster import Cluster, make_cluster, zin_like_params
from .shard import ShardedSimulation, shard_map_from_topology
from .sharedres import (Flow, SharedResource, max_min_rates,
                        proportional_rates)
from .trace import StatSeries, Summary, Tracer

__all__ = [
    "AllOf", "AnyOf", "Channel", "Event", "Interrupt", "Process",
    "Simulation", "SimulationError", "Timeout",
    "FaultPlan", "LinkFaults",
    "Network", "NetworkParams", "Nic",
    "Node", "NodeSpec",
    "Cluster", "make_cluster", "zin_like_params",
    "ShardedSimulation", "shard_map_from_topology",
    "Flow", "SharedResource", "max_min_rates",
    "proportional_rates",
    "StatSeries", "Summary", "Tracer",
]
