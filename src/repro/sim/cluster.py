"""Cluster construction helpers.

Bundles a :class:`~repro.sim.kernel.Simulation`, a
:class:`~repro.sim.network.Network`, and a set of
:class:`~repro.sim.node.Node` objects into one handle, with presets for
the paper's testbed (Zin/Cab: 16-core nodes on QDR InfiniBand).
"""

from __future__ import annotations

from typing import Optional

from .kernel import Simulation
from .network import Network, NetworkParams
from .node import Node, NodeSpec

__all__ = ["Cluster", "make_cluster", "zin_like_params"]


def zin_like_params() -> NetworkParams:
    """Fabric parameters approximating a QLogic QDR IB interconnect."""
    return NetworkParams(
        latency=1.3e-6,
        bandwidth=3.2e9,
        ipc_latency=2.0e-6,
        ipc_bandwidth=6.0e9,
        per_message_overhead=2.0e-6,
    )


class Cluster:
    """A simulated cluster: simulation clock + fabric + nodes.

    Node ids are dense integers ``0 .. n-1`` which double as CMB ranks
    when a comms session spans the whole cluster.
    """

    def __init__(self, sim: Simulation, network: Network,
                 nodes: list[Node]):
        self.sim = sim
        self.network = network
        self.nodes = nodes
        for node in nodes:
            network.register(node.node_id)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        """Node object for ``node_id``."""
        return self.nodes[node_id]

    def fail_node(self, node_id: int) -> None:
        """Kill a node: stops its traffic and marks it down."""
        self.nodes[node_id].alive = False
        self.network.fail_node(node_id)

    def revive_node(self, node_id: int) -> None:
        """Bring a failed node back up."""
        self.nodes[node_id].alive = True
        self.network.revive_node(node_id)

    def alive_ids(self) -> list[int]:
        """Ids of nodes currently up."""
        return [n.node_id for n in self.nodes if n.alive]


def make_cluster(n_nodes: int, *, seed: int = 0,
                 node_spec: Optional[NodeSpec] = None,
                 net_params: Optional[NetworkParams] = None,
                 strict: bool = True,
                 sim: Optional[Simulation] = None) -> Cluster:
    """Build an ``n_nodes`` cluster with Zin/Cab-like defaults.

    Parameters
    ----------
    n_nodes:
        Number of hosts (the paper sweeps 64, 128, 256, 512).
    seed:
        Simulation RNG seed; identical seeds give identical traces.
    node_spec / net_params:
        Hardware overrides; defaults are 16-core/32 GB nodes on a
        QDR-like fabric.
    strict:
        Propagate process exceptions out of ``run`` (on for tests).
    sim:
        Pre-built kernel to run on (e.g. a
        :class:`~repro.sim.shard.ShardedSimulation`); ``seed`` and
        ``strict`` are ignored when supplied.
    """
    if n_nodes <= 0:
        raise ValueError("cluster needs at least one node")
    if sim is None:
        sim = Simulation(seed=seed, strict=strict)
    network = Network(sim, net_params or zin_like_params())
    spec = node_spec or NodeSpec()
    nodes = [Node(i, spec) for i in range(n_nodes)]
    return Cluster(sim, network, nodes)
