"""Seeded fault injection for the simulated fabric.

A :class:`FaultPlan` attaches to a :class:`~repro.sim.network.Network`
(``network.fault_plan = plan``) and perturbs every inter-node send:

- **drop** — the message is lost on the wire (the sender's NIC is still
  charged: the bytes left the host before the fabric ate them);
- **duplicate** — the message is delivered twice, modelling ambiguous
  retransmission at a lower layer;
- **delay** — extra latency is added before delivery.

Faults are *per-link* (``(src node, dst node)``): global default rates
can be overridden for individual links with :meth:`set_link`, and
targeted one-shot faults (:meth:`drop_next`) deterministically kill the
next ``count`` messages on a link — the tool chaos tests use to break a
specific protocol exchange.

Two properties keep chaos runs reproducible and honest:

- the plan owns a *private* ``random.Random(seed)``, so installing a
  plan never perturbs the simulation's own RNG stream — a run with all
  rates at zero is bit-identical to a run with no plan at all;
- injected delays are FIFO-clamped per link: a delayed message never
  overtakes a later message on the same link, preserving the fabric's
  in-order-per-link contract that the event plane's total-order
  property relies on.  (Drops and duplicates do break the reliable
  half of the contract — that is the point.)

Injected drops are reported through the network's ``drop_hook`` and
counted both in :attr:`Network.dropped` and in the plan's own
:meth:`stats` (which sessions record into traces as ``net.faults``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultPlan", "LinkFaults"]


@dataclass
class LinkFaults:
    """Fault rates for one directed link (or the global defaults).

    Attributes
    ----------
    drop_rate:
        Probability a message is lost in transit.
    dup_rate:
        Probability a message is delivered twice.
    delay_rate:
        Probability a message is held back ``delay_extra`` seconds.
    delay_extra:
        Extra latency applied to delayed messages (seconds).
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_extra: float = 1e-4


class FaultPlan:
    """A seeded schedule of message-level faults for chaos testing.

    Parameters
    ----------
    seed:
        Seed of the plan's private RNG; same seed + same traffic =
        same faults.
    drop_rate / dup_rate / delay_rate / delay_extra:
        Default per-message fault rates applied to every inter-node
        link (loopback/IPC traffic is never faulted).
    """

    def __init__(self, seed: int = 0, *, drop_rate: float = 0.0,
                 dup_rate: float = 0.0, delay_rate: float = 0.0,
                 delay_extra: float = 1e-4):
        self.rng = random.Random(seed)
        self.default = LinkFaults(drop_rate, dup_rate, delay_rate,
                                  delay_extra)
        self._links: dict[tuple[int, int], LinkFaults] = {}
        self._one_shot_drops: dict[tuple[int, int], int] = {}
        # Per-link FIFO clamp: latest scheduled delivery time.
        self._last_delivery: dict[tuple[int, int], float] = {}
        # Statistics.
        self.drops = 0
        self.forced_drops = 0
        self.dups = 0
        self.delays = 0
        self.messages_seen = 0

    # -- configuration --------------------------------------------------
    def set_link(self, src: int, dst: int, *,
                 drop_rate: Optional[float] = None,
                 dup_rate: Optional[float] = None,
                 delay_rate: Optional[float] = None,
                 delay_extra: Optional[float] = None) -> None:
        """Override fault rates on the directed link ``src -> dst``
        (node ids); unspecified rates keep the plan defaults."""
        base = self._links.get((src, dst), self.default)
        self._links[(src, dst)] = LinkFaults(
            base.drop_rate if drop_rate is None else drop_rate,
            base.dup_rate if dup_rate is None else dup_rate,
            base.delay_rate if delay_rate is None else delay_rate,
            base.delay_extra if delay_extra is None else delay_extra)

    def drop_next(self, src: int, dst: int, count: int = 1) -> None:
        """Deterministically drop the next ``count`` messages sent on
        the link ``src -> dst`` (targeted one-shot faults)."""
        self._one_shot_drops[(src, dst)] = (
            self._one_shot_drops.get((src, dst), 0) + count)

    # -- decision -------------------------------------------------------
    def decide(self, src: int, dst: int) -> tuple[bool, int, float]:
        """Roll this message's fate: ``(dropped, duplicates, extra_delay)``.

        Called once per inter-node send by :meth:`Network.send`.  The
        private RNG is always advanced the same number of times per
        message regardless of outcome, keeping fault schedules stable
        when unrelated rates change.
        """
        self.messages_seen += 1
        link = self._links.get((src, dst), self.default)
        remaining = self._one_shot_drops.get((src, dst), 0)
        if remaining > 0:
            if remaining == 1:
                del self._one_shot_drops[(src, dst)]
            else:
                self._one_shot_drops[(src, dst)] = remaining - 1
            self.forced_drops += 1
            self.drops += 1
            return True, 0, 0.0
        roll_drop = self.rng.random()
        roll_dup = self.rng.random()
        roll_delay = self.rng.random()
        if link.drop_rate > 0.0 and roll_drop < link.drop_rate:
            self.drops += 1
            return True, 0, 0.0
        dups = 1 if (link.dup_rate > 0.0 and roll_dup < link.dup_rate) else 0
        extra = 0.0
        if link.delay_rate > 0.0 and roll_delay < link.delay_rate:
            extra = link.delay_extra
            self.delays += 1
        if dups:
            self.dups += 1
        return False, dups, extra

    def fifo_clamp(self, src: int, dst: int, deliver_at: float) -> float:
        """Clamp a delivery time so it never precedes an already
        scheduled delivery on the same link (per-link FIFO)."""
        last = self._last_delivery.get((src, dst), 0.0)
        deliver_at = max(deliver_at, last)
        self._last_delivery[(src, dst)] = deliver_at
        return deliver_at

    # -- stats ----------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counters of every fault injected so far."""
        return {
            "messages_seen": self.messages_seen,
            "drops": self.drops,
            "forced_drops": self.forced_drops,
            "dups": self.dups,
            "delays": self.delays,
        }

    def __repr__(self) -> str:  # pragma: no cover
        d = self.default
        return (f"<FaultPlan drop={d.drop_rate} dup={d.dup_rate} "
                f"delay={d.delay_rate} stats={self.stats()}>")
