"""Deterministic discrete-event simulation kernel.

This module is the foundation of the reproduction: every Flux run-time
component (CMB brokers, KVS masters/slaves, KAP tester processes, jobs)
runs as a coroutine *process* on top of this kernel, and all latencies
reported by the benchmark harness are simulated-time measurements taken
here.

The design is a small, self-contained SimPy-style engine:

- :class:`Event` — a one-shot occurrence that processes can wait on.
- :class:`Timeout` — an event that fires after a simulated delay.
- :class:`Process` — a generator-based coroutine; yielding an event
  suspends the process until the event fires.  A process is itself an
  event that fires when the generator returns, so processes can join
  each other.
- :class:`Simulation` — the event loop.  Time is a float (seconds).

Determinism: the ready queue is a heap ordered by ``(time, priority,
sequence)`` where ``sequence`` is a monotonically increasing insertion
counter, so simultaneous events always run in the order they were
scheduled.  Combined with a single seeded RNG (:attr:`Simulation.rng`)
a run is exactly reproducible.

Hot-path engineering (see DESIGN.md "Performance engineering"): event
names are built lazily — constructors store a ``(fmt, *args)`` tuple
and the :attr:`Event.name` property renders it only when someone
actually reads the name (a repr, a trace, a replay fingerprint).  The
rendered string is byte-identical to the old eager f-string, so
SAN105 fingerprints are unchanged.  Events also keep their first
callback in a dedicated slot (``_cb1``), deferring the waiter-list
allocation to the rare multi-waiter case.
"""

from __future__ import annotations

import gc
import random
from collections import deque
from contextlib import contextmanager
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Channel",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Simulation",
    "paused_gc",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
]


@contextmanager
def paused_gc():
    """Suspend the cyclic garbage collector for a bounded drain.

    The event loop allocates at a rate that trips gen-2 collections
    constantly once the simulated state (KVS stores, pending tables)
    grows large, and each collection scans the *whole* object graph —
    per-event cost then grows with cluster size even though the work
    per event is constant.  Collecting once up front, freezing the
    survivors out of the collector's view and disabling it for the
    drain keeps per-event cost flat (reference counting still reclaims
    all acyclic garbage, which is everything the hot path creates).
    Collector state is restored on exit, and a final collection sweeps
    whatever cycles accumulated.  Reentrant: a nested use under an
    already-disabled collector leaves it disabled.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.collect()
        gc.freeze()
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.unfreeze()
            gc.collect()

#: Scheduling priorities for events that fire at the same instant.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(SimulationError):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A one-shot occurrence that coroutine processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    schedules it, after which all registered callbacks run at the
    trigger time.  Waiting processes resume with the event's value (or
    have the failure exception thrown into them).

    Callback storage is two-tier: the overwhelmingly common single
    waiter lives in ``_cb1``; only a second waiter allocates the
    ``callbacks`` overflow list.  ``_cb1`` always runs first, so the
    run order matches the old single-list behaviour exactly.
    """

    __slots__ = ("sim", "_cb1", "callbacks", "_value", "_exc", "_state",
                 "_name", "_dead")

    PENDING = 0
    TRIGGERED = 1  # scheduled, callbacks not yet run
    PROCESSED = 2  # callbacks have run

    def __init__(self, sim: "Simulation", name: Any = ""):
        self.sim = sim
        self._name = name
        self._cb1: Optional[Callable[["Event"], None]] = None
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._state = Event.PENDING
        self._dead = False

    # -- inspection ---------------------------------------------------
    @property
    def name(self) -> str:
        """The event's display name, rendered on first access.

        Constructors store either a plain string or a lazy
        ``("fmt %s", arg, ...)`` tuple; rendering via ``%`` yields the
        exact byte string the old eager f-strings produced, which the
        replay fingerprint (SAN105) depends on.
        """
        n = self._name
        if type(n) is tuple:
            n = self._name = n[0] % n[1:]
        return n

    @name.setter
    def name(self, value: Any) -> None:
        self._name = value

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != Event.PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (valid once triggered)."""
        return self._state != Event.PENDING and self._exc is None

    @property
    def value(self) -> Any:
        """The value the event fired with.

        Raises :class:`SimulationError` if the event is still pending.
        """
        if self._state == Event.PENDING:
            raise SimulationError(f"value of untriggered event {self!r}")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ---------------------------------------------------
    def succeed(self, value: Any = None, *, delay: float = 0.0,
                priority: int = PRIORITY_NORMAL) -> "Event":
        """Fire the event successfully with ``value`` after ``delay``."""
        if self._state != Event.PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._state = Event.TRIGGERED
        # Inlined Simulation._schedule (hottest trigger path).
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now + delay, priority, seq, self))
        return self

    def fail(self, exc: BaseException, *, delay: float = 0.0,
             priority: int = PRIORITY_NORMAL) -> "Event":
        """Fire the event as a failure: ``exc`` is thrown into waiters."""
        if self._state != Event.PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exc = exc
        self._state = Event.TRIGGERED
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now + delay, priority, seq, self))
        return self

    def abandon(self) -> None:
        """Discard a scheduled event: its callbacks never run and the
        clock does not advance to its firing time (the loop skips dead
        heap entries without touching ``now``).  Used to cancel the
        loser of an any_of race — e.g. a duration job's superseded
        completion timeout after a malleable resize."""
        if self._dead:
            return
        self._dead = True
        self._cb1 = None
        self.callbacks = None
        if self._state == Event.TRIGGERED:
            # The entry is still sitting in the heap; let the loop
            # compact once dead entries dominate (heap hygiene).
            self.sim._note_dead()

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires (immediately if done)."""
        if self._state == Event.PROCESSED:
            fn(self)
        elif self._cb1 is None and self.callbacks is None:
            if self._dead:
                raise SimulationError(
                    f"callback registered on abandoned event {self!r}")
            self._cb1 = fn
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)

    def _discard_callback(self, fn: Callable[["Event"], None]) -> None:
        """Detach a previously registered callback (no-op if absent or
        already run).  Uses ``==`` so re-created bound methods match."""
        if self._cb1 == fn:
            self._cb1 = None
            return
        cbs = self.callbacks
        if cbs is not None:
            try:
                cbs.remove(fn)
            except ValueError:
                pass

    def _run_callbacks(self) -> None:
        self._state = Event.PROCESSED
        cb1, self._cb1 = self._cb1, None
        callbacks, self.callbacks = self.callbacks, None
        if cb1 is not None:
            cb1(self)
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        # Inlined Event.__init__ (timeouts are the single hottest event
        # constructor); the name renders as f"timeout({delay:g})".
        self.sim = sim
        self._name = ("timeout(%g)", delay)
        self._cb1 = None
        self.callbacks = None
        self._value = value
        self._exc = None
        self._state = Event.TRIGGERED
        self._dead = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now + delay, PRIORITY_NORMAL, seq, self))


class Process(Event):
    """A coroutine driven by the simulation.

    Wraps a generator that yields :class:`Event` objects.  Each yield
    suspends the process until the yielded event fires; the event's
    value becomes the result of the ``yield`` expression.  When the
    generator returns, the process — which is itself an event — fires
    with the generator's return value, so other processes can wait for
    (join) it.
    """

    __slots__ = ("gen", "_waiting_on", "contain")

    def __init__(self, sim: "Simulation", gen: Generator, name: str = "",
                 *, contain: bool = False):
        super().__init__(sim, name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self.contain = contain
        self._waiting_on: Optional[Event] = None
        # Bootstrap: start executing at the current time.
        boot = Event(sim, ("start:%s", self._name))
        boot._state = Event.TRIGGERED
        boot._cb1 = self._resume
        sim._schedule(boot, delay=0.0, priority=PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A process waiting on an event is detached from it (the event
        still fires, but no longer resumes this process).  Interrupting
        a finished process is an error.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        target = self._waiting_on
        if target is not None:
            target._discard_callback(self._resume)
        self._waiting_on = None
        kick = Event(self.sim, ("interrupt:%s", self._name))
        kick._exc = Interrupt(cause)
        kick._state = Event.TRIGGERED
        kick._cb1 = self._resume
        self.sim._schedule(kick, delay=0.0, priority=PRIORITY_URGENT)

    # -- engine -------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if trigger._exc is not None:
                nxt = self.gen.throw(trigger._exc)
            else:
                nxt = self.gen.send(trigger._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as clean termination.
            self.sim._active_process = None
            self.succeed(None)
            return
        except Exception as exc:
            self.sim._active_process = None
            if self.sim.strict and not self.contain:
                raise
            self.fail(exc)
            return
        self.sim._active_process = None
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {nxt!r}")
        if nxt.sim is not self.sim:
            raise SimulationError("yielded event belongs to another simulation")
        self._waiting_on = nxt
        nxt.add_callback(self._resume)


class Channel:
    """An unbounded FIFO message queue connecting processes.

    ``put`` is immediate; :meth:`get` returns an event that fires with
    the oldest item as soon as one is available.  Items are handed to
    getters strictly in FIFO order; concurrent getters are served in
    the order they asked.
    """

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: "Simulation", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any.

        Getters that were triggered by something else in the meantime
        (e.g. a timeout racing the get) are skipped in place — FIFO
        order among the still-pending getters is preserved.
        """
        getters = self._getters
        if getters:
            getter = getters.popleft()
            while getter._state != Event.PENDING:  # skip cancelled getters
                if not getters:
                    self._items.append(item)
                    return
                getter = getters.popleft()
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.sim, ("get:%s", self.name))
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (for inspection/testing)."""
        return list(self._items)


class AllOf(Event):
    """Fires once every event in ``events`` has fired successfully.

    The value is the list of the constituent values, in input order.
    If any constituent fails, this event fails with the same exception
    (the first failure wins).
    """

    __slots__ = ("_pending", "_results")

    def __init__(self, sim: "Simulation", events: Iterable[Event]):
        super().__init__(sim, "all_of")
        events = list(events)
        self._results: list[Any] = [None] * len(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        for i, ev in enumerate(events):
            ev.add_callback(lambda e, i=i: self._on_child(i, e))

    def _on_child(self, i: int, ev: Event) -> None:
        if self._state != Event.PENDING:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
            return
        self._results[i] = ev._value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._results)


class AnyOf(Event):
    """Fires as soon as the first of ``events`` fires.

    The value is a ``(index, value)`` tuple identifying which event won.
    Once the race is decided, the watcher callbacks registered on the
    losing events are detached, so long-lived losers (e.g. an inbox
    get racing a shutdown event) don't accumulate dead callbacks.
    """

    __slots__ = ("_watch",)

    def __init__(self, sim: "Simulation", events: Iterable[Event]):
        super().__init__(sim, "any_of")
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self._watch: tuple = ()
        watch = []
        for i, ev in enumerate(events):
            cb = (lambda e, i=i: self._on_child(i, e))
            watch.append((ev, cb))
            ev.add_callback(cb)
            if self._state != Event.PENDING:
                break  # an already-processed input decided the race
        if self._state == Event.PENDING:
            self._watch = tuple(watch)
        else:
            for other, cb in watch:
                if other._state != Event.PROCESSED:
                    other._discard_callback(cb)

    def _on_child(self, i: int, ev: Event) -> None:
        if self._state != Event.PENDING:
            return
        watch, self._watch = self._watch, ()
        for j, (other, cb) in enumerate(watch):
            if j != i and other._state != Event.PROCESSED:
                other._discard_callback(cb)
        if ev._exc is not None:
            self.fail(ev._exc)
        else:
            self.succeed((i, ev._value))


class Simulation:
    """The discrete-event loop: simulated clock plus a scheduled-event heap.

    Parameters
    ----------
    seed:
        Seed for :attr:`rng`, the single RNG all stochastic decisions in
        a run must draw from (this is what makes runs reproducible).
    strict:
        When True (the default), an exception escaping a process
        propagates out of :meth:`run` immediately instead of being
        recorded as a process failure — the right behaviour for tests.
    """

    def __init__(self, seed: int = 0, *, strict: bool = True):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self.strict = strict
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._ndead = 0
        self._active_process: Optional[Process] = None
        self._nevents = 0
        #: Optional observer called as ``event_hook(t, priority, ev)``
        #: for every event processed, *before* its callbacks run.  Used
        #: by the replay-divergence sanitizer to fingerprint the event
        #: stream; observers must not schedule events or draw from
        #: :attr:`rng`, so installing one cannot perturb the run.
        self.event_hook: Optional[Callable[[float, int, Event], None]] = None

    # -- event creation helpers ----------------------------------------
    def event(self, name: Any = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def deliver_timeout(self, node_id: int, delay: float) -> Timeout:
        """Create the delivery timeout for a message arriving at
        ``node_id`` in ``delay`` seconds.  Identical to :meth:`timeout`
        here; the sharded kernel overrides it to home the event in the
        destination node's shard (the only scheduling operation that
        may cross shards — everything else an event's callbacks
        schedule stays in the shard that ran them)."""
        return Timeout(self, delay)

    def channel(self, name: str = "") -> Channel:
        """Create an unbounded FIFO :class:`Channel`."""
        return Channel(self, name=name)

    def spawn(self, gen: Generator, name: str = "",
              *, contain: bool = False) -> Process:
        """Start a new process running ``gen``; returns its Process event.

        ``contain=True`` confines an exception escaping the generator to
        a failed Process event (thrown into joiners) even under
        ``strict`` — used for sandboxing launched task bodies.
        """
        return Process(self, gen, name=name, contain=contain)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling / main loop ----------------------------------------
    def _schedule(self, ev: Event, *, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        self._seq += 1
        heappush(self._heap, (self.now + delay, priority, self._seq, ev))

    def _note_dead(self) -> None:
        """Account one abandoned in-heap entry; compact the heap once
        dead entries dominate.  Re-heapifying the surviving entries
        cannot change processing order — the ``(time, priority, seq)``
        key is a total order — so compaction is invisible to a run.
        Compaction mutates the heap list *in place*: the run loops keep
        a local alias to it, and rebinding ``self._heap`` mid-run would
        strand newly scheduled events in a list the loop never sees."""
        self._ndead += 1
        heap = self._heap
        if self._ndead > 512 and self._ndead * 2 > len(heap):
            heap[:] = [e for e in heap if not e[3]._dead]
            heapify(heap)
            self._ndead = 0

    def _step(self, max_events: Optional[int] = None) -> bool:
        """Pop and process the next live event.

        The single loop body shared by :meth:`run` and
        :meth:`run_until_complete`: dead-entry skipping, the event
        budget, and the observer hook live here so the two drivers
        cannot drift apart.  Returns False when the heap is drained.
        """
        heap = self._heap
        while heap:
            entry = heappop(heap)
            ev = entry[3]
            if ev._dead:
                if self._ndead > 0:
                    self._ndead -= 1
                continue
            t = entry[0]
            self.now = t
            self._nevents += 1
            if max_events is not None and self._nevents > max_events:
                raise SimulationError(
                    f"event budget {max_events} exhausted at t={self.now:g}")
            if self.event_hook is not None:
                self.event_hook(t, entry[1], ev)
            ev._run_callbacks()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the heap drains, ``until`` is reached, or the event
        budget ``max_events`` is exhausted.  Returns the final clock.
        """
        if until is None:
            if max_events is None and self.event_hook is None:
                # Tight loop for the common full-drain run: no budget
                # or hook checks per event, callback dispatch inlined
                # (byte-for-byte the logic of _run_callbacks, so the
                # processing order — and hence any fingerprint taken
                # with the hook installed — is unchanged).
                heap = self._heap
                while heap:
                    entry = heappop(heap)
                    ev = entry[3]
                    if ev._dead:
                        if self._ndead > 0:
                            self._ndead -= 1
                        continue
                    self.now = entry[0]
                    self._nevents += 1
                    ev._state = 2  # Event.PROCESSED
                    cb1 = ev._cb1
                    callbacks = ev.callbacks
                    ev._cb1 = None
                    ev.callbacks = None
                    if cb1 is not None:
                        cb1(ev)
                    if callbacks:
                        for fn in callbacks:
                            fn(ev)
                return self.now
            while self._step(max_events):
                pass
            return self.now
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3]._dead:
                heappop(heap)
                if self._ndead > 0:
                    self._ndead -= 1
                continue
            if head[0] > until:
                self.now = until
                return self.now
            self._step(max_events)
        if until > self.now:
            self.now = until
        return self.now

    def run_until_complete(self, proc: Process,
                           max_events: Optional[int] = None) -> Any:
        """Run until ``proc`` finishes and return its value."""
        while not proc.triggered:
            if not self._step(max_events):
                raise SimulationError(
                    f"deadlock: process {proc.name!r} never completed")
        return proc.value

    @property
    def event_count(self) -> int:
        """Number of events processed so far (a determinism fingerprint)."""
        return self._nevents
